"""Relational schemas.

A :class:`Schema` is an ordered list of named, typed attributes.  Schemas are
immutable value objects: all combinators (:meth:`Schema.project`,
:meth:`Schema.join`, :meth:`Schema.rename`) return new instances.

Attribute names are qualified as ``relation.attribute`` whenever the schema is
attached to a named relation, which keeps join outputs unambiguous when both
inputs expose an attribute with the same base name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import SchemaError

#: Logical attribute types supported by the storage layer.  The values are the
#: estimated per-value footprint in bytes, used for memory accounting.
TYPE_SIZES = {
    "int": 8,
    "float": 8,
    "str": 32,
    "date": 8,
    "bool": 1,
}

#: Per-value footprint in *columnar* storage for the types the column layer
#: actually packs (``array('q')``/``array('d')`` — 8 bytes, no per-value
#: object; must mirror ``columns.NUMERIC_TYPECODES``).  Every other type —
#: including ``date`` and ``bool``, which live in object lists — charges its
#: estimated payload plus one column-slot pointer.
COLUMNAR_VALUE_SIZES = {
    "int": 8,
    "float": 8,
}

#: Per-value footprint for attribute types that *dictionary-encode* in the
#: encoded columnar layer: one ``array('q')`` code per row.  Dictionary
#: entries themselves are charged separately (actual value bytes plus a slot
#: pointer, once per distinct value) by the containers that own them.
ENCODED_VALUE_SIZES = {
    "str": 8,
}

#: Bytes charged per row for the parallel arrival-stamp column.
ARRIVAL_STAMP_BYTES = 8

#: Pointer overhead per value for columns stored as object lists.
COLUMN_SLOT_BYTES = 8


@dataclass(frozen=True)
class Attribute:
    """A single named, typed column.

    Parameters
    ----------
    name:
        Attribute name, optionally qualified (``"orders.o_orderkey"``).
    type_name:
        One of :data:`TYPE_SIZES` keys.
    avg_size:
        Estimated per-value size in bytes; defaults to the type's size.
    """

    name: str
    type_name: str = "str"
    avg_size: int = 0

    def __post_init__(self) -> None:
        if self.type_name not in TYPE_SIZES:
            raise SchemaError(
                f"unknown attribute type {self.type_name!r} for {self.name!r}; "
                f"expected one of {sorted(TYPE_SIZES)}"
            )
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.avg_size <= 0:
            object.__setattr__(self, "avg_size", TYPE_SIZES[self.type_name])

    @property
    def base_name(self) -> str:
        """Attribute name without any relation qualifier."""
        return self.name.rsplit(".", 1)[-1]

    @property
    def qualifier(self) -> str | None:
        """Relation qualifier, or ``None`` for unqualified attributes."""
        if "." in self.name:
            return self.name.rsplit(".", 1)[0]
        return None

    def qualified(self, relation_name: str) -> "Attribute":
        """Return a copy qualified with ``relation_name`` (replacing any prior one)."""
        return Attribute(f"{relation_name}.{self.base_name}", self.type_name, self.avg_size)

    @property
    def column_size(self) -> int:
        """Estimated per-value bytes in columnar (struct-of-arrays) storage."""
        fixed = COLUMNAR_VALUE_SIZES.get(self.type_name)
        if fixed is not None:
            return fixed
        return self.avg_size + COLUMN_SLOT_BYTES

    @property
    def encoded_column_size(self) -> int:
        """Estimated per-value bytes in *encoded* columnar storage.

        Dict-encodable attributes charge one code slot per row; everything
        else charges the plain columnar estimate.  Dictionary entries are
        charged separately by their owners (once per distinct value), so
        this is the per-row marginal cost.
        """
        fixed = ENCODED_VALUE_SIZES.get(self.type_name)
        if fixed is not None:
            return fixed
        return self.column_size

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy with a different (possibly qualified) name."""
        return Attribute(new_name, self.type_name, self.avg_size)


@dataclass(frozen=True)
class Schema:
    """An ordered, immutable collection of :class:`Attribute`.

    Lookup by name accepts either the fully qualified name or the base name,
    provided the base name is unambiguous.
    """

    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names in schema: {dupes}")
        # Lazy per-instance caches (the dataclass is frozen, hence the
        # object.__setattr__): name-resolution and tuple-size lookups sit on
        # the engine's per-row hot paths, and a schema never changes after
        # construction.  Neither cache participates in equality or hashing.
        object.__setattr__(self, "_index_cache", {})
        object.__setattr__(self, "_tuple_size", None)
        object.__setattr__(self, "_columnar_row_size", None)
        object.__setattr__(self, "_encoded_row_size", None)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, *specs: str | Attribute | tuple[str, str]) -> "Schema":
        """Build a schema from a mix of specs.

        Each spec may be an :class:`Attribute`, a bare name (typed ``str``),
        a ``"name:type"`` string, or a ``(name, type)`` tuple.
        """
        attrs: list[Attribute] = []
        for spec in specs:
            if isinstance(spec, Attribute):
                attrs.append(spec)
            elif isinstance(spec, tuple):
                name, type_name = spec
                attrs.append(Attribute(name, type_name))
            elif ":" in spec:
                name, _, type_name = spec.partition(":")
                attrs.append(Attribute(name, type_name))
            else:
                attrs.append(Attribute(spec))
        return cls(tuple(attrs))

    # -- dunder protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: str) -> bool:
        try:
            self.index_of(name)
        except SchemaError:
            return False
        return True

    # -- lookup ----------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Fully qualified attribute names, in order."""
        return tuple(a.name for a in self.attributes)

    def index_of(self, name: str) -> int:
        """Return the position of ``name`` (qualified or base name).

        Raises
        ------
        SchemaError
            If the name is absent or a base name is ambiguous.
        """
        cached = self._index_cache.get(name)
        if cached is None:
            cached = self._resolve_index(name)
            self._index_cache[name] = cached
        if isinstance(cached, int):
            return cached
        raise SchemaError(cached)

    def _resolve_index(self, name: str) -> int | str:
        """Uncached lookup; returns the index or the error message to raise."""
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        matches = [i for i, attr in enumerate(self.attributes) if attr.base_name == name]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            return f"attribute name {name!r} is ambiguous in {self.names}"
        return f"attribute {name!r} not found in schema {self.names}"

    def attribute(self, name: str) -> Attribute:
        """Return the attribute named ``name`` (qualified or base name)."""
        return self.attributes[self.index_of(name)]

    # -- combinators -----------------------------------------------------------

    def qualified(self, relation_name: str) -> "Schema":
        """Qualify every attribute with ``relation_name``."""
        return Schema(tuple(a.qualified(relation_name) for a in self.attributes))

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names`` in the given order."""
        return Schema(tuple(self.attributes[self.index_of(n)] for n in names))

    def join(self, other: "Schema") -> "Schema":
        """Concatenation of two schemas (as produced by a join)."""
        return Schema(self.attributes + other.attributes)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Rename attributes according to ``mapping`` (old name -> new name)."""
        renamed = []
        for attr in self.attributes:
            if attr.name in mapping:
                renamed.append(attr.renamed(mapping[attr.name]))
            elif attr.base_name in mapping:
                renamed.append(attr.renamed(mapping[attr.base_name]))
            else:
                renamed.append(attr)
        return Schema(tuple(renamed))

    # -- sizing ----------------------------------------------------------------

    @property
    def tuple_size(self) -> int:
        """Estimated size in bytes of one tuple with this schema."""
        # A small per-tuple overhead models Python object headers / pointers in
        # the original engine's slotted pages.
        size = self._tuple_size
        if size is None:
            overhead = 16
            size = overhead + sum(a.avg_size for a in self.attributes)
            object.__setattr__(self, "_tuple_size", size)
        return size

    @property
    def columnar_row_size(self) -> int:
        """Estimated bytes one row occupies in columnar storage.

        The sum of the per-column value footprints plus the parallel arrival
        stamp; there is no per-tuple object header because columnar storage
        holds no per-row objects.  This is the unit the memory budgets and
        the spill files charge — hash tables and overflow files store columns,
        so their accounting must match what columns actually cost.
        """
        size = self._columnar_row_size
        if size is None:
            size = ARRIVAL_STAMP_BYTES + sum(a.column_size for a in self.attributes)
            object.__setattr__(self, "_columnar_row_size", size)
        return size

    @property
    def encoded_row_size(self) -> int:
        """Estimated bytes one row occupies in *encoded* columnar storage.

        Like :attr:`columnar_row_size`, but dict-encodable attributes charge
        one 8-byte code per row (their dictionary entries are charged once
        per distinct value by the hash table or spill file that owns the
        dictionary).  The arrival stamp charges its full per-row footprint
        here — the resident worst case; run-length compression is credited
        at spill time, where runs are known exactly.  This is the unit the
        memory budgets and spill files charge when encoding is enabled, so
        an optimizer allotment stated in it *is* the runtime overflow
        threshold.
        """
        size = self._encoded_row_size
        if size is None:
            size = ARRIVAL_STAMP_BYTES + sum(a.encoded_column_size for a in self.attributes)
            object.__setattr__(self, "_encoded_row_size", size)
        return size

    def row_size_for(self, encoded: bool) -> int:
        """Per-row byte charge for the chosen column encoding mode."""
        return self.encoded_row_size if encoded else self.columnar_row_size

    def compatible_with(self, other: "Schema") -> bool:
        """True when both schemas have the same arity and attribute types."""
        if len(self) != len(other):
            return False
        return all(
            a.type_name == b.type_name for a, b in zip(self.attributes, other.attributes)
        )


def merge_union_schema(left: Schema, right: Schema) -> Schema:
    """Schema for a union: keeps the left names, validates compatibility."""
    if not left.compatible_with(right):
        raise SchemaError(
            f"union inputs are not compatible: {left.names} vs {right.names}"
        )
    return left
