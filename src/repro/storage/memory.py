"""Memory budgets, per-query pools, and the broker lease protocol.

Tukwila's optimizer assigns each operator a memory allotment (Section 3.1.1)
and the execution engine raises an ``out of memory`` event when an operator
exceeds it.  :class:`MemoryPool` is the per-query pool, and
:class:`MemoryBudget` is the slice granted to one operator.  Budgets are
byte-accounted: hash tables reserve the estimated tuple footprint for every
inserted row and release it when buckets are flushed to disk.

In the multi-query server, a pool can be backed by a server-wide *broker*
(:class:`repro.server.broker.MemoryBroker`): every bounded grant becomes a
lease negotiated with the broker, usage propagates upward so the broker's
``used_bytes`` is the live server-wide total, and the broker may *revoke*
(shrink) a lease under cross-query pressure.  A revocation that leaves the
budget over its new limit invokes the owner's ``on_revoke`` handler, which is
how the Section 4.2 overflow-resolution machinery (bucket flush to the
columnar spill path) is triggered mid-build by another query's admission.
The broker is duck-typed here (``lease`` / ``release_lease`` /
``resize_lease`` / ``note_reserve`` / ``note_release``) so the storage layer
stays import-free of the server package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import MemoryBudgetError

MB = 1024 * 1024


@dataclass
class MemoryStats:
    """High-water-mark statistics for a budget or pool."""

    reserved: int = 0
    peak: int = 0
    overflow_events: int = 0

    def reserve(self, nbytes: int) -> None:
        self.reserved += nbytes
        if self.reserved > self.peak:
            self.peak = self.reserved

    def release(self, nbytes: int) -> None:
        self.reserved = max(0, self.reserved - nbytes)


class MemoryBudget:
    """A byte-accounted allotment for a single operator.

    ``try_reserve`` returns ``False`` instead of raising when the allotment
    would be exceeded, which lets adaptive operators trigger their overflow
    strategy; ``reserve`` raises :class:`MemoryBudgetError` for operators with
    no overflow path.

    When carved from a :class:`MemoryPool`, every reserve/release is also
    reported to the pool (and, transitively, to a backing broker), so the
    ``budget.used == sum(resident_bytes)`` invariant that the spill tests
    assert per operator composes into a live server-wide total.
    """

    def __init__(
        self,
        limit_bytes: int | None,
        name: str = "operator",
        on_overflow: Callable[["MemoryBudget"], None] | None = None,
        pool: "MemoryPool | None" = None,
    ) -> None:
        if limit_bytes is not None and limit_bytes <= 0:
            raise MemoryBudgetError(f"memory limit must be positive, got {limit_bytes}")
        self.limit_bytes = limit_bytes
        self.name = name
        self.stats = MemoryStats()
        self.pool = pool
        self._on_overflow = on_overflow
        #: Revocation hook: called as ``on_revoke(budget)`` after the broker
        #: shrinks this budget's lease *below its current usage*.  Operators
        #: with an overflow strategy point this at their Section 4.2
        #: resolution so revocation frees real memory immediately; without a
        #: handler the shrunken limit simply makes the next ``try_reserve``
        #: fail, deferring resolution to the owner's next insert.
        self.on_revoke: Callable[["MemoryBudget"], None] | None = None
        #: Revocations applied to this budget (for stats/rule conditions).
        self.revocations = 0

    @property
    def unlimited(self) -> bool:
        return self.limit_bytes is None

    @property
    def used_bytes(self) -> int:
        return self.stats.reserved

    @property
    def available_bytes(self) -> int | None:
        if self.limit_bytes is None:
            return None
        return max(0, self.limit_bytes - self.stats.reserved)

    def would_overflow(self, nbytes: int) -> bool:
        """True when reserving ``nbytes`` more would exceed the limit."""
        if self.limit_bytes is None:
            return False
        return self.stats.reserved + nbytes > self.limit_bytes

    def try_reserve(self, nbytes: int) -> bool:
        """Reserve ``nbytes`` if possible; on failure notify and return False."""
        if self.would_overflow(nbytes):
            self.stats.overflow_events += 1
            if self._on_overflow is not None:
                self._on_overflow(self)
            return False
        self.stats.reserve(nbytes)
        if self.pool is not None:
            self.pool._note_reserve(nbytes)
        return True

    def reserve(self, nbytes: int) -> None:
        """Reserve ``nbytes`` or raise :class:`MemoryBudgetError`."""
        if not self.try_reserve(nbytes):
            raise MemoryBudgetError(
                f"{self.name}: cannot reserve {nbytes} bytes "
                f"(used {self.stats.reserved} of {self.limit_bytes})"
            )

    def force_reserve(self, nbytes: int) -> None:
        """Reserve ``nbytes`` unconditionally, even past the limit.

        Used for metadata that cannot be refused row by row — dictionary
        entries of encoded columns, dedup key sets — so the budget's usage
        stays an honest total.  Pushing usage past the limit simply makes
        the next ``try_reserve`` fail, which is exactly the overflow signal
        the owning operator's spill strategy reacts to.
        """
        self.stats.reserve(nbytes)
        if self.pool is not None:
            self.pool._note_reserve(nbytes)

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget."""
        actual = min(nbytes, self.stats.reserved)
        self.stats.release(nbytes)
        if self.pool is not None and actual > 0:
            self.pool._note_release(actual)

    def resize(self, new_limit_bytes: int | None) -> None:
        """Change the allotment (the ``alter memory allotment`` rule action).

        On a broker-leased budget the resize is a lease renegotiation: growth
        may be granted only partially (the broker revokes other leases before
        refusing), shrinkage returns bytes to the server immediately.
        """
        if new_limit_bytes is not None and new_limit_bytes <= 0:
            raise MemoryBudgetError(f"memory limit must be positive, got {new_limit_bytes}")
        if (
            self.pool is not None
            and self.pool.broker is not None
            and self.limit_bytes is not None
            and new_limit_bytes is not None
        ):
            new_limit_bytes = self.pool._resize_lease(self, new_limit_bytes)
        self.limit_bytes = new_limit_bytes

    def revoke_to(self, new_limit_bytes: int) -> None:
        """Shrink the allotment in place (the broker's revocation path).

        Unlike :meth:`resize` this never renegotiates — the broker has
        already decided — and it *actively* resolves the resulting pressure:
        if usage now exceeds the limit and the owner registered
        :attr:`on_revoke`, the handler runs immediately (flushing buckets,
        spilling key sets) so the reclaimed bytes are real, not promised.
        """
        if new_limit_bytes < 0:
            raise MemoryBudgetError(f"memory limit must be >= 0, got {new_limit_bytes}")
        # Zero is legal here (unlike resize): a speculative lease has no
        # floor and revocation may strip it entirely.
        self.limit_bytes = new_limit_bytes
        self.revocations += 1
        if self.on_revoke is not None and self.stats.reserved > new_limit_bytes:
            self.on_revoke(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limit = "unbounded" if self.limit_bytes is None else f"{self.limit_bytes}B"
        return f"MemoryBudget({self.name!r}, used={self.stats.reserved}B, limit={limit})"


class MemoryPool:
    """Per-query memory pool from which operator budgets are carved.

    The pool enforces that the sum of carved budgets does not exceed the pool
    size, mirroring the optimizer's memory allocation step.  With ``broker``
    set (the multi-query server), every bounded grant is first negotiated as
    a broker lease — the broker may grant less than requested after revoking
    what it can from other queries — and reserve/release traffic is
    propagated so the broker's usage total stays live.
    """

    def __init__(
        self,
        total_bytes: int | None = None,
        name: str = "query",
        broker=None,
    ) -> None:
        if total_bytes is not None and total_bytes <= 0:
            raise MemoryBudgetError(f"pool size must be positive, got {total_bytes}")
        self.total_bytes = total_bytes
        self.name = name
        self.broker = broker
        self._granted = 0
        self._used = 0
        self._budgets: dict[str, MemoryBudget] = {}
        if broker is not None:
            broker.register_pool(self)

    @property
    def granted_bytes(self) -> int:
        return self._granted

    @property
    def used_bytes(self) -> int:
        """Live bytes reserved across every budget carved from this pool."""
        return self._used

    @property
    def remaining_bytes(self) -> int | None:
        if self.total_bytes is None:
            return None
        return max(0, self.total_bytes - self._granted)

    # -- usage propagation (budgets report in; the broker listens) ---------------------

    def _note_reserve(self, nbytes: int) -> None:
        self._used += nbytes
        if self.broker is not None:
            self.broker.note_reserve(nbytes)

    def _note_release(self, nbytes: int) -> None:
        self._used = max(0, self._used - nbytes)
        if self.broker is not None:
            self.broker.note_release(nbytes)

    def _resize_lease(self, budget: MemoryBudget, new_limit_bytes: int) -> int:
        """Renegotiate one budget's lease with the broker; returns the new size."""
        assert self.broker is not None
        granted = self.broker.resize_lease(budget, new_limit_bytes)
        self._granted = max(0, self._granted - (budget.limit_bytes or 0)) + granted
        return granted

    # -- grants ------------------------------------------------------------------------

    def grant(
        self,
        operator_name: str,
        nbytes: int | None,
        on_overflow: Callable[[MemoryBudget], None] | None = None,
        budget_class: type[MemoryBudget] = MemoryBudget,
        speculative: bool = False,
    ) -> MemoryBudget:
        """Carve a budget of ``nbytes`` (or unbounded) for ``operator_name``.

        Broker-backed pools lease the bytes from the server: the grant that
        comes back may be smaller than requested when the server is under
        pressure (the broker revokes other queries' leases down to their
        floors before shrinking this request).  Unbounded grants are never
        leased — their usage still propagates, but capacity enforcement is
        only meaningful for bounded allotments.

        ``budget_class`` lets the process exchange backend grant *mirror*
        budgets — :class:`MemoryBudget` subclasses that relay revocations to
        the worker process holding the real allotment — while keeping every
        grant/lease/capacity rule identical to a plain grant.

        ``speculative`` marks the lease as prefetch-backed: granted only
        from free broker capacity (possibly zero bytes) and revoked ahead of
        every query lease.
        """
        budget = budget_class(nbytes, name=operator_name, on_overflow=on_overflow, pool=self)
        if nbytes is not None:
            if self.broker is not None:
                # The pool-exceeded raise below releases the lease first; the
                # unpaired raise path would need the broker to turn None right
                # after a broker lease, which cannot happen.
                # repro: allow[lease-lifecycle] infeasible branch-correlated path
                granted = self.broker.lease(budget, nbytes, speculative=speculative)
                budget.limit_bytes = granted
                nbytes = granted
            if self.total_bytes is not None and self._granted + nbytes > self.total_bytes:
                if self.broker is not None:
                    self.broker.release_lease(budget)
                raise MemoryBudgetError(
                    f"pool {self.name!r}: cannot grant {nbytes} bytes to "
                    f"{operator_name!r}; {self.remaining_bytes} bytes remain"
                )
            self._granted += nbytes
        self._budgets[operator_name] = budget
        return budget

    def revoke(self, operator_name: str) -> None:
        """Return an operator's allotment to the pool (and its lease to the broker)."""
        budget = self._budgets.pop(operator_name, None)
        if budget is not None:
            if budget.limit_bytes is not None:
                self._granted = max(0, self._granted - budget.limit_bytes)
            if self.broker is not None:
                self.broker.release_lease(budget)

    def budget(self, operator_name: str) -> MemoryBudget:
        """Look up a previously granted budget."""
        try:
            return self._budgets[operator_name]
        except KeyError:
            raise MemoryBudgetError(
                f"no budget granted to operator {operator_name!r}"
            ) from None

    @property
    def budgets(self) -> dict[str, MemoryBudget]:
        return dict(self._budgets)
