"""Memory budgets and the memory manager.

Tukwila's optimizer assigns each operator a memory allotment (Section 3.1.1)
and the execution engine raises an ``out of memory`` event when an operator
exceeds it.  :class:`MemoryPool` is the per-query pool, and
:class:`MemoryBudget` is the slice granted to one operator.  Budgets are
byte-accounted: hash tables reserve the estimated tuple footprint for every
inserted row and release it when buckets are flushed to disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import MemoryBudgetError

MB = 1024 * 1024


@dataclass
class MemoryStats:
    """High-water-mark statistics for a budget or pool."""

    reserved: int = 0
    peak: int = 0
    overflow_events: int = 0

    def reserve(self, nbytes: int) -> None:
        self.reserved += nbytes
        if self.reserved > self.peak:
            self.peak = self.reserved

    def release(self, nbytes: int) -> None:
        self.reserved = max(0, self.reserved - nbytes)


class MemoryBudget:
    """A byte-accounted allotment for a single operator.

    ``try_reserve`` returns ``False`` instead of raising when the allotment
    would be exceeded, which lets adaptive operators trigger their overflow
    strategy; ``reserve`` raises :class:`MemoryBudgetError` for operators with
    no overflow path.
    """

    def __init__(
        self,
        limit_bytes: int | None,
        name: str = "operator",
        on_overflow: Callable[["MemoryBudget"], None] | None = None,
    ) -> None:
        if limit_bytes is not None and limit_bytes <= 0:
            raise MemoryBudgetError(f"memory limit must be positive, got {limit_bytes}")
        self.limit_bytes = limit_bytes
        self.name = name
        self.stats = MemoryStats()
        self._on_overflow = on_overflow

    @property
    def unlimited(self) -> bool:
        return self.limit_bytes is None

    @property
    def used_bytes(self) -> int:
        return self.stats.reserved

    @property
    def available_bytes(self) -> int | None:
        if self.limit_bytes is None:
            return None
        return max(0, self.limit_bytes - self.stats.reserved)

    def would_overflow(self, nbytes: int) -> bool:
        """True when reserving ``nbytes`` more would exceed the limit."""
        if self.limit_bytes is None:
            return False
        return self.stats.reserved + nbytes > self.limit_bytes

    def try_reserve(self, nbytes: int) -> bool:
        """Reserve ``nbytes`` if possible; on failure notify and return False."""
        if self.would_overflow(nbytes):
            self.stats.overflow_events += 1
            if self._on_overflow is not None:
                self._on_overflow(self)
            return False
        self.stats.reserve(nbytes)
        return True

    def reserve(self, nbytes: int) -> None:
        """Reserve ``nbytes`` or raise :class:`MemoryBudgetError`."""
        if not self.try_reserve(nbytes):
            raise MemoryBudgetError(
                f"{self.name}: cannot reserve {nbytes} bytes "
                f"(used {self.stats.reserved} of {self.limit_bytes})"
            )

    def force_reserve(self, nbytes: int) -> None:
        """Reserve ``nbytes`` unconditionally, even past the limit.

        Used for metadata that cannot be refused row by row — dictionary
        entries of encoded columns, dedup key sets — so the budget's usage
        stays an honest total.  Pushing usage past the limit simply makes
        the next ``try_reserve`` fail, which is exactly the overflow signal
        the owning operator's spill strategy reacts to.
        """
        self.stats.reserve(nbytes)

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget."""
        self.stats.release(nbytes)

    def resize(self, new_limit_bytes: int | None) -> None:
        """Change the allotment (the ``alter memory allotment`` rule action)."""
        if new_limit_bytes is not None and new_limit_bytes <= 0:
            raise MemoryBudgetError(f"memory limit must be positive, got {new_limit_bytes}")
        self.limit_bytes = new_limit_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limit = "unbounded" if self.limit_bytes is None else f"{self.limit_bytes}B"
        return f"MemoryBudget({self.name!r}, used={self.stats.reserved}B, limit={limit})"


class MemoryPool:
    """Per-query memory pool from which operator budgets are carved.

    The pool enforces that the sum of carved budgets does not exceed the pool
    size, mirroring the optimizer's memory allocation step.
    """

    def __init__(self, total_bytes: int | None = None, name: str = "query") -> None:
        if total_bytes is not None and total_bytes <= 0:
            raise MemoryBudgetError(f"pool size must be positive, got {total_bytes}")
        self.total_bytes = total_bytes
        self.name = name
        self._granted = 0
        self._budgets: dict[str, MemoryBudget] = {}

    @property
    def granted_bytes(self) -> int:
        return self._granted

    @property
    def remaining_bytes(self) -> int | None:
        if self.total_bytes is None:
            return None
        return max(0, self.total_bytes - self._granted)

    def grant(
        self,
        operator_name: str,
        nbytes: int | None,
        on_overflow: Callable[[MemoryBudget], None] | None = None,
    ) -> MemoryBudget:
        """Carve a budget of ``nbytes`` (or unbounded) for ``operator_name``."""
        if nbytes is not None:
            if self.total_bytes is not None and self._granted + nbytes > self.total_bytes:
                raise MemoryBudgetError(
                    f"pool {self.name!r}: cannot grant {nbytes} bytes to "
                    f"{operator_name!r}; {self.remaining_bytes} bytes remain"
                )
            self._granted += nbytes
        budget = MemoryBudget(nbytes, name=operator_name, on_overflow=on_overflow)
        self._budgets[operator_name] = budget
        return budget

    def revoke(self, operator_name: str) -> None:
        """Return an operator's allotment to the pool."""
        budget = self._budgets.pop(operator_name, None)
        if budget is not None and budget.limit_bytes is not None:
            self._granted = max(0, self._granted - budget.limit_bytes)

    def budget(self, operator_name: str) -> MemoryBudget:
        """Look up a previously granted budget."""
        try:
            return self._budgets[operator_name]
        except KeyError:
            raise MemoryBudgetError(
                f"no budget granted to operator {operator_name!r}"
            ) from None

    @property
    def budgets(self) -> dict[str, MemoryBudget]:
        return dict(self._budgets)
