"""Relational storage substrate: schemas, tuples, relations, hash tables.

This package provides the storage primitives the Tukwila engine is built on:

* :class:`~repro.storage.schema.Schema` / :class:`~repro.storage.schema.Attribute`
* :class:`~repro.storage.tuples.Row`
* :class:`~repro.storage.batch.Batch` — columnar (struct-of-arrays) batches
* :class:`~repro.storage.relation.Relation`
* :class:`~repro.storage.hash_table.BucketedHashTable` with spill-to-disk
* :class:`~repro.storage.disk.SimulatedDisk` with tuple/page I/O accounting
* :class:`~repro.storage.memory.MemoryPool` / :class:`~repro.storage.memory.MemoryBudget`
* :class:`~repro.storage.table_store.LocalStore` for fragment materialization
"""

from repro.storage.batch import (
    Batch,
    BatchCursor,
    gather_join,
    gather_join_columns,
    transpose_rows,
    typed_transpose,
)
from repro.storage.columns import ColumnarPartition, build_columns, empty_columns
from repro.storage.disk import (
    DiskStats,
    OverflowFile,
    SimulatedDisk,
    SpillChunk,
    PAGE_SIZE_BYTES,
)
from repro.storage.hash_table import BucketedHashTable, Bucket, DEFAULT_BUCKET_COUNT
from repro.storage.memory import MB, MemoryBudget, MemoryPool, MemoryStats
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, Schema, TYPE_SIZES, merge_union_schema
from repro.storage.table_store import LocalStore, MaterializationInfo
from repro.storage.tuples import Row, counting_row_constructions, rows_from_dicts

__all__ = [
    "Attribute",
    "Batch",
    "BatchCursor",
    "Bucket",
    "BucketedHashTable",
    "ColumnarPartition",
    "DEFAULT_BUCKET_COUNT",
    "DiskStats",
    "LocalStore",
    "MB",
    "MaterializationInfo",
    "MemoryBudget",
    "MemoryPool",
    "MemoryStats",
    "OverflowFile",
    "PAGE_SIZE_BYTES",
    "Relation",
    "Row",
    "Schema",
    "SimulatedDisk",
    "SpillChunk",
    "TYPE_SIZES",
    "build_columns",
    "counting_row_constructions",
    "empty_columns",
    "gather_join",
    "gather_join_columns",
    "merge_union_schema",
    "rows_from_dicts",
    "transpose_rows",
    "typed_transpose",
]
