"""The local store: named relations materialized at fragment boundaries.

When a plan fragment completes, its result is materialized into the local
store so that (a) later fragments can scan it cheaply and (b) the optimizer
can be re-invoked with the *actual* cardinality of the intermediate result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import StorageError
from repro.storage.relation import Relation
from repro.storage.tuples import Row


@dataclass(frozen=True)
class MaterializationInfo:
    """Metadata recorded when a relation is materialized."""

    name: str
    cardinality: int
    size_bytes: int
    materialized_at: float


class LocalStore:
    """A dictionary of materialized relations with materialization metadata."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._info: dict[str, MaterializationInfo] = {}

    def materialize(self, relation: Relation, at_time: float = 0.0) -> MaterializationInfo:
        """Store ``relation`` under its name, replacing any previous version."""
        info = MaterializationInfo(
            name=relation.name,
            cardinality=relation.cardinality,
            size_bytes=relation.size_bytes,
            materialized_at=at_time,
        )
        self._relations[relation.name] = relation
        self._info[relation.name] = info
        return info

    def get(self, name: str) -> Relation:
        """Fetch a materialized relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise StorageError(f"no materialized relation named {name!r}") from None

    def row_block(self, name: str, start: int, max_rows: int) -> list[Row]:
        """Batch read: a slice of a stored relation's rows (batch scan support)."""
        return self.get(name).rows[start : start + max_rows]

    def column_block(self, name: str, start: int, max_rows: int):
        """Columnar batch read: ``(columns, count)`` without boxing rows.

        Serves straight from a relation still held as buffered columnar
        batches (see :meth:`Relation.column_block`), so a fragment result
        materialized columnar can be scanned columnar by a later fragment.
        """
        return self.get(name).column_block(start, max_rows)

    def info(self, name: str) -> MaterializationInfo:
        """Materialization metadata for ``name``."""
        try:
            return self._info[name]
        except KeyError:
            raise StorageError(f"no materialized relation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        return sorted(self._relations)

    def drop(self, name: str) -> None:
        """Remove a materialized relation (no error if absent)."""
        self._relations.pop(name, None)
        self._info.pop(name, None)

    def clear(self) -> None:
        self._relations.clear()
        self._info.clear()

    @property
    def total_bytes(self) -> int:
        """Total estimated size of everything materialized."""
        return sum(rel.size_bytes for rel in self._relations.values())
