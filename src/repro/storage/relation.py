"""In-memory relations (base tables and materialized intermediate results)."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SchemaError, StorageError
from repro.storage.batch import Batch, transpose_rows
from repro.storage.schema import Schema
from repro.storage.tuples import Row, rows_from_dicts


class Relation:
    """A named bag of rows sharing one schema.

    Relations are the substrate behind simulated data sources, the local
    store, and materialization points between plan fragments.  They support
    the small relational algebra needed by tests and by the reference
    (non-adaptive) evaluator used to cross-check operator results.

    Columnar batches appended via :meth:`extend_batch` are kept in their
    struct-of-arrays form and only converted into :class:`Row` objects when
    something actually reads rows — callers that just need the cardinality
    (benchmark drivers, materialization metadata) never pay for boxing.
    Pending batches always sit logically *after* ``_rows``; every row-level
    accessor and mutator materializes them first to preserve order.
    """

    def __init__(self, name: str, schema: Schema, rows: Iterable[Row] = ()) -> None:
        self.name = name
        self.schema = schema
        self._rows: list[Row] = []
        self._pending: list[Batch] = []
        self._pending_count = 0
        if rows:
            self.extend(rows)

    def _materialize_pending(self) -> None:
        """Convert any buffered columnar batches into rows (order-preserving)."""
        if self._pending:
            for batch in self._pending:
                self._rows.extend(batch.rows())
            self._pending = []
            self._pending_count = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_dicts(
        cls, name: str, schema: Schema, records: Sequence[dict[str, Any]]
    ) -> "Relation":
        """Build a relation from dict records keyed by attribute name."""
        return cls(name, schema, rows_from_dicts(schema, records))

    @classmethod
    def from_values(
        cls, name: str, schema: Schema, values: Sequence[Sequence[Any]]
    ) -> "Relation":
        """Build a relation from positional value vectors."""
        return cls(name, schema, (Row(schema, tuple(v)) for v in values))

    def qualified(self) -> "Relation":
        """Copy with every attribute qualified by the relation name."""
        schema = self.schema.qualified(self.name)
        make = Row.make
        relation = Relation(self.name, schema)
        # Qualification renames attributes 1:1, so the rows transfer as-is.
        self._materialize_pending()
        relation._rows = [make(schema, r.values, r.arrival) for r in self._rows]
        return relation

    # -- mutation ---------------------------------------------------------------

    def append(self, row: Row) -> None:
        """Append one row; its schema must match this relation's schema arity/types."""
        if len(row.values) != len(self.schema):
            raise SchemaError(
                f"row arity {len(row.values)} does not match relation "
                f"{self.name!r} arity {len(self.schema)}"
            )
        self._materialize_pending()
        self._rows.append(row)

    def extend(self, rows: Iterable[Row]) -> None:
        """Append many rows (validated in bulk)."""
        rows = rows if isinstance(rows, list) else list(rows)
        arity = len(self.schema)
        for row in rows:
            if len(row.values) != arity:
                raise SchemaError(
                    f"row arity {len(row.values)} does not match relation "
                    f"{self.name!r} arity {arity}"
                )
        self._materialize_pending()
        self._rows.extend(rows)

    def extend_batch(self, batch: Batch) -> None:
        """Append a whole batch; columnar batches are buffered without boxing."""
        if len(batch.schema) != len(self.schema):
            raise SchemaError(
                f"batch arity {len(batch.schema)} does not match relation "
                f"{self.name!r} arity {len(self.schema)}"
            )
        if batch.is_columnar:
            self._pending.append(batch)
            self._pending_count += len(batch)
        else:
            self._materialize_pending()
            self._rows.extend(batch.rows())

    # -- access -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows) + self._pending_count

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> Row:
        return self.rows[index]

    @property
    def rows(self) -> list[Row]:
        """The row list (not a copy; treat as read-only)."""
        self._materialize_pending()
        return self._rows

    @property
    def cardinality(self) -> int:
        """Number of rows."""
        return len(self)

    @property
    def size_bytes(self) -> int:
        """Estimated total size, used to express scale factors in bytes."""
        return self.schema.tuple_size * len(self)

    def column_block(self, start: int, max_rows: int) -> tuple[list[list[Any]], int]:
        """Columnar block read: ``(columns, count)`` for rows ``[start, start+max_rows)``.

        When the relation still holds only buffered columnar batches (a
        fragment result that nothing has read row-wise yet), the block is
        sliced straight from their column lists — no :class:`Row` objects are
        created.  Otherwise the row list is transposed, which materializes
        pending batches first.
        """
        if self._pending and not self._rows:
            columns: list[list[Any]] = [[] for _ in range(len(self.schema))]
            count = 0
            offset = 0
            end = start + max_rows
            for batch in self._pending:
                batch_start = offset
                offset += len(batch)
                if offset <= start:
                    continue
                if batch_start >= end:
                    break
                lo = max(start, batch_start) - batch_start
                hi = min(end, offset) - batch_start
                for acc, column in zip(columns, batch.columns):
                    acc.extend(column[lo:hi])
                count += hi - lo
            return columns, count
        block = self.rows[start : start + max_rows]
        if not block:
            return [[] for _ in range(len(self.schema))], 0
        return transpose_rows(block), len(block)

    def column(self, name: str) -> list[Any]:
        """All values of attribute ``name``, in row order."""
        idx = self.schema.index_of(name)
        if not self._rows and self._pending:
            # Fast path: serve straight from the buffered column lists.
            out: list[Any] = []
            for batch in self._pending:
                out.extend(batch.column(idx))
            return out
        return [row.values[idx] for row in self.rows]

    def distinct_count(self, name: str) -> int:
        """Number of distinct values of attribute ``name``."""
        return len(set(self.column(name)))

    # -- reference relational algebra (used by tests and the catalog) -----------

    def select(self, predicate: Callable[[Row], bool], name: str | None = None) -> "Relation":
        """Rows satisfying ``predicate``."""
        out = Relation(name or self.name, self.schema)
        out.extend(row for row in self.rows if predicate(row))
        return out

    def project(self, names: Sequence[str], name: str | None = None) -> "Relation":
        """Projection onto ``names`` (a bag projection: duplicates retained)."""
        schema = self.schema.project(names)
        out = Relation(name or self.name, schema)
        out.extend(row.project(names, schema) for row in self.rows)
        return out

    def join(
        self,
        other: "Relation",
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        name: str | None = None,
    ) -> "Relation":
        """Reference hash equi-join used to validate the engine's join operators."""
        if len(left_keys) != len(right_keys):
            raise StorageError("join key lists must have equal length")
        schema = self.schema.join(other.schema)
        out = Relation(name or f"{self.name}_join_{other.name}", schema)
        index: dict[tuple[Any, ...], list[Row]] = {}
        for row in other:
            index.setdefault(row.key(right_keys), []).append(row)
        for row in self:
            for match in index.get(row.key(left_keys), ()):
                out.append(row.concat(match, schema))
        return out

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Bag union with ``other`` (schemas must be type-compatible)."""
        if not self.schema.compatible_with(other.schema):
            raise SchemaError(
                f"cannot union {self.name!r} and {other.name!r}: incompatible schemas"
            )
        out = Relation(name or f"{self.name}_union_{other.name}", self.schema)
        out.extend(self.rows)
        out.extend(Row(self.schema, r.values, r.arrival) for r in other)
        return out

    def distinct(self, name: str | None = None) -> "Relation":
        """Set-semantics copy (first occurrence of each value vector kept)."""
        seen: set[tuple[Any, ...]] = set()
        out = Relation(name or self.name, self.schema)
        for row in self.rows:
            if row.values not in seen:
                seen.add(row.values)
                out.append(row)
        return out

    def multiset(self) -> dict[tuple[Any, ...], int]:
        """Value-vector multiset, for order-insensitive result comparison."""
        counts: dict[tuple[Any, ...], int] = {}
        for row in self.rows:
            counts[row.values] = counts.get(row.values, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, {len(self)} rows, {self.schema.names})"
