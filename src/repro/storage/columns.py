"""Typed and encoded column storage: the struct-of-arrays substrate.

Columns holding ``int`` or ``float`` attributes are stored in compact
``array('q')`` / ``array('d')`` buffers (8 bytes per value, no per-value
Python object retained by the container); in *encoded* mode, ``str``
attributes are stored as :class:`DictColumn` — an ``array('q')`` of codes
plus a shared, append-only :class:`Dictionary` — and every other type (and
any column that turns out to hold mixed, out-of-range, or excessively
distinct values) falls back to a plain object list.  The helpers here keep
that triple representation invisible to the rest of the engine: appends and
bulk extends degrade a typed or dict-encoded column to a list the first time
a value does not fit, gathers and slices preserve the storage class, and
byte accounting (:meth:`Schema.columnar_row_size` /
:meth:`Schema.encoded_row_size`) matches what the chosen representation
actually costs.

Dictionary encoding gives three wins on string-heavy workloads:

* resident rows charge 8 bytes per string value (the code) plus each
  distinct value once, so hash tables overflow later;
* spill chunks move codes instead of string objects, so overflow files are
  smaller and their page-count I/O cost lower;
* every occurrence of a value decodes to the *same* canonical string
  object, so downstream key hashing hits the cached-hash/pointer-equality
  fast path — the practical equivalent of comparing codes — and extending a
  dict column with another that shares its dictionary moves raw codes with
  no per-value work at all.

:class:`RunLengthArrivals` is the arrival-stamp twin: scans stamp whole
blocks with one arrival, so the parallel arrival list collapses to
``(value, run_length)`` pairs; it degrades internally to a plain list when
the stream does not compress (network stamps are strictly increasing), so
random access never pays more than one indirection.

:class:`ColumnarPartition` is the shared "columnar bag of rows with a key
index" used by hash-table buckets and the nested-loops inner: one typed or
encoded column per attribute, a parallel arrival column, and a ``key -> row
positions`` map, so join operators can insert from batch columns and
assemble output with per-column gathers without ever materializing
:class:`~repro.storage.tuples.Row` objects.
"""

# repro: module-role[hot-path] -- per-row work here multiplies by the dataset size

from __future__ import annotations

from array import array
from bisect import bisect_right
from itertools import islice
from operator import ne
from typing import Any, Iterator, Sequence

from repro.storage.schema import Schema
from repro.storage.tuples import Row

#: array typecodes for the attribute types stored packed.
NUMERIC_TYPECODES = {"int": "q", "float": "d"}

#: Attribute types that dictionary-encode in encoded mode.
DICT_ENCODED_TYPES = {"str"}

#: Bytes one dictionary code occupies (an ``array('q')`` slot).
DICT_CODE_BYTES = 8

#: Pointer overhead charged per dictionary entry (the value-list slot).
DICT_SLOT_BYTES = 8

#: A dictionary refusing to grow past this many distinct entries degrades
#: the column to an object list (the high-cardinality misfit path).
DICT_MAX_ENTRIES = 1 << 20

#: Exceptions that signal "this value does not fit the typed buffer".
_DEGRADE_ERRORS = (TypeError, ValueError, OverflowError)


class Dictionary:
    """An append-only value dictionary shared by :class:`DictColumn` columns.

    Codes are assigned densely in first-seen order and never change, so any
    number of columns (and any number of spill chunks referencing their
    columns) can share one dictionary.  ``bytes_used`` accumulates the
    estimated footprint of the entries (actual string length plus the
    value-list slot), which is what hash tables charge their budgets for
    dictionary growth.
    """

    __slots__ = ("values", "codes", "bytes_used", "on_grow", "frozen")

    def __init__(self) -> None:
        self.values: list[str] = []
        self.codes: dict[str, int] = {}
        self.bytes_used = 0
        #: Optional growth hook: called with the byte footprint of every new
        #: entry.  Hash tables attach their budget charge here, so steady
        #: state (all values already coded) pays nothing for accounting.
        self.on_grow = None
        #: A frozen dictionary admits no new entries: encoding an unknown
        #: value raises the degrade signal instead.  Long-lived shared
        #: dictionaries (a source's translation cache) freeze so that
        #: downstream consumers mixing in foreign values degrade their own
        #: column rather than permanently polluting the shared cache.
        self.frozen = False

    def __len__(self) -> int:
        return len(self.values)

    def freeze(self) -> "Dictionary":
        self.frozen = True
        return self

    def encode(self, value: str) -> int:
        """Code for ``value``, adding a new entry when first seen.

        Raises
        ------
        TypeError
            If ``value`` is not a string (the misfit degrade signal).
        ValueError
            If the dictionary is frozen or adding the entry would exceed
            :data:`DICT_MAX_ENTRIES` (the degrade signals).
        """
        code = self.codes.get(value)
        if code is not None:
            return code
        if type(value) is not str:
            raise TypeError(f"dictionary columns hold str values, got {type(value).__name__}")
        if self.frozen:
            raise ValueError("dictionary is frozen; degrading column")
        if len(self.values) >= DICT_MAX_ENTRIES:
            raise ValueError("dictionary exceeded DICT_MAX_ENTRIES; degrading column")
        code = len(self.values)
        self.values.append(value)
        self.codes[value] = code
        nbytes = len(value) + DICT_SLOT_BYTES
        self.bytes_used += nbytes
        if self.on_grow is not None:
            self.on_grow(nbytes)
        return code

    def entry_bytes(self, code: int) -> int:
        """Estimated footprint of one entry (used by spill accounting)."""
        return len(self.values[code]) + DICT_SLOT_BYTES

    # -- wire-format deltas (process exchange backend) -------------------------

    def entries_since(self, base: int) -> list[str]:
        """Entries added after the first ``base`` (the wire delta unit).

        Codes are dense and never change, so ``values[base:]`` is exactly
        what a receiver holding ``base`` entries needs to catch up: each
        distinct string crosses a process boundary once, codes ever after.
        """
        return self.values[base:]

    def adopt_entries(self, entries: Sequence[str], base: int) -> None:
        """Append a shipped delta, verifying code alignment with the sender.

        Raises
        ------
        ValueError
            If this dictionary does not hold exactly ``base`` entries — the
            sender computed the delta against a different watermark, so
            adopting it would assign different codes than the shipped code
            vectors use.
        """
        if len(self.values) != base:
            raise ValueError(
                f"dictionary delta expects {base} existing entries, have {len(self.values)}"
            )
        frozen, self.frozen = self.frozen, False
        try:
            for value in entries:
                self.encode(value)
        finally:
            self.frozen = frozen


class DictColumn:
    """A string column stored as ``array('q')`` codes plus a :class:`Dictionary`.

    Sequence-compatible with the plain-list column it replaces: indexing and
    iteration decode to the dictionary's canonical string objects (no string
    is ever constructed per row), slicing and gathering return new
    :class:`DictColumn` views sharing the same dictionary, and ``append`` /
    ``extend`` encode incoming values — raising the standard degrade errors
    on misfits so :func:`append_value` / :func:`extend_column` repair the
    column to an object list exactly like a typed numeric column.
    """

    __slots__ = ("codes", "dictionary")

    def __init__(self, dictionary: Dictionary | None = None, codes: array | None = None) -> None:
        self.dictionary = dictionary if dictionary is not None else Dictionary()
        self.codes = codes if codes is not None else array("q")

    # -- sizing / access -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return DictColumn(self.dictionary, self.codes[index])
        return self.dictionary.values[self.codes[index]]

    def __delitem__(self, index) -> None:
        del self.codes[index]

    def __iter__(self) -> Iterator[str]:
        return map(self.dictionary.values.__getitem__, self.codes)

    def __eq__(self, other) -> bool:
        if isinstance(other, DictColumn):
            if other.dictionary is self.dictionary:
                return other.codes == self.codes
            return list(self) == list(other)
        if isinstance(other, (list, tuple)):
            return len(other) == len(self.codes) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    __hash__ = None  # mutable container

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DictColumn({len(self.codes)} codes, {len(self.dictionary)} entries)"

    # -- mutation ---------------------------------------------------------------

    def append(self, value: str) -> None:
        # Inlined common case (value already coded) to keep the per-row
        # insert path at one dict probe; encode() handles new entries.
        dictionary = self.dictionary
        code = dictionary.codes.get(value)
        if code is None:
            code = dictionary.encode(value)
        self.codes.append(code)

    def extend(self, values) -> None:
        """Extend with ``values``; same-dictionary extends move raw codes.

        A :class:`DictColumn` sharing this column's dictionary extends as a
        single ``array.extend`` of codes (the code-vs-code fast path); a
        foreign :class:`DictColumn` is merged by translating codes through
        this dictionary; anything else is encoded value by value, raising
        the degrade errors on a misfit (partial extends are repaired by
        :func:`extend_column`).
        """
        if isinstance(values, DictColumn):
            if values.dictionary is self.dictionary:
                self.codes.extend(values.codes)
                return
            encode = self.dictionary.encode
            foreign = values.dictionary.values
            self.codes.extend(encode(foreign[code]) for code in values.codes)
            return
        # Bulk encode: one C-level map over the codes table resolves every
        # already-seen value; only genuinely new (or misfit) values take the
        # per-value Python path.  TypeError from an unhashable value
        # propagates as the standard degrade signal.
        if not isinstance(values, (list, tuple)):
            values = list(values)
        codes = list(map(self.dictionary.codes.get, values))
        if None in codes:
            encode = self.dictionary.encode
            for i, code in enumerate(codes):
                if code is None:
                    codes[i] = encode(values[i])
        self.codes.extend(codes)

    def gather(self, indices: Sequence[int]) -> "DictColumn":
        """Codes at ``indices`` as a new column sharing the dictionary."""
        codes = self.codes
        return DictColumn(self.dictionary, array("q", [codes[i] for i in indices]))


class RunLengthArrivals:
    """Arrival stamps stored as ``(value, run_length)`` pairs.

    Scans stamp whole blocks with one arrival, so batches built from local
    blocks carry a single run instead of one float per row.  The container
    is sequence-compatible (indexing via bisect over cumulative run ends,
    iteration run by run) and *self-degrading*: when appends stop merging —
    network arrival stamps are strictly increasing — it switches to an
    internal plain list so random access costs one indirection, never a
    bisect over per-row runs.
    """

    __slots__ = ("_values", "_ends", "_plain")

    #: Once this many runs accumulate without compressing (runs > rows/2),
    #: the container degrades to its internal plain-list form.
    _DEGRADE_CHECK = 64

    def __init__(self, values: Sequence[float] = ()) -> None:
        self._values: list[float] = []
        self._ends: list[int] = []
        self._plain: list[float] | None = None
        if values:
            self.extend(values)

    @classmethod
    def constant(cls, value: float, count: int) -> "RunLengthArrivals":
        """A single run: ``count`` rows all stamped ``value``."""
        out = cls()
        if count:
            out._values.append(value)
            out._ends.append(count)
        return out

    # -- sizing / access ---------------------------------------------------------

    def __len__(self) -> int:
        if self._plain is not None:
            return len(self._plain)
        return self._ends[-1] if self._ends else 0

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def run_count(self) -> int:
        """Number of stored runs (``len`` when degraded to the plain form)."""
        if self._plain is not None:
            return len(self._plain)
        return len(self._values)

    @property
    def last(self) -> float | None:
        if self._plain is not None:
            return self._plain[-1] if self._plain else None
        return self._values[-1] if self._values else None

    def __getitem__(self, index):
        if self._plain is not None:
            if isinstance(index, slice):
                return RunLengthArrivals(self._plain[index])
            return self._plain[index]
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                return RunLengthArrivals([self[i] for i in range(start, stop, step)])
            out = RunLengthArrivals()
            position = 0
            for value, end in zip(self._values, self._ends):
                lo = max(start, position)
                hi = min(stop, end)
                if hi > lo:
                    out._push_run(value, hi - lo)
                position = end
                if position >= stop:
                    break
            return out
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("arrival index out of range")
        return self._values[bisect_right(self._ends, index)]

    def __iter__(self) -> Iterator[float]:
        if self._plain is not None:
            return iter(self._plain)

        def runs():
            previous = 0
            for value, end in zip(self._values, self._ends):
                for _ in range(end - previous):
                    yield value
                previous = end

        return runs()

    def __eq__(self, other) -> bool:
        if isinstance(other, RunLengthArrivals):
            return len(self) == len(other) and all(a == b for a, b in zip(self, other))
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(a == b for a, b in zip(self, other))
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        form = "plain" if self._plain is not None else f"{self.run_count} runs"
        return f"RunLengthArrivals({len(self)} stamps, {form})"

    def to_list(self) -> list[float]:
        return list(self)

    def wire_runs(self) -> tuple[list[float], list[int]] | None:
        """``(values, cumulative_ends)`` run pairs, or ``None`` when degraded.

        The process exchange backend ships compressed arrivals as runs; a
        degraded container (runs stopped compressing) ships its plain list
        instead, so the receiver reconstructs the *same* internal form and
        downstream behavior (degrade checks, slicing) matches bit for bit.
        """
        if self._plain is not None:
            return None
        return self._values, self._ends

    @classmethod
    def from_wire_runs(cls, values: Sequence[float], ends: Sequence[int]) -> "RunLengthArrivals":
        """Rebuild from shipped run pairs without re-running degrade checks."""
        out = cls()
        out._values = list(values)
        out._ends = list(ends)
        return out

    # -- mutation -----------------------------------------------------------------

    def _push_run(self, value: float, count: int) -> None:
        if self._values and self._values[-1] == value:
            self._ends[-1] += count
        else:
            self._values.append(value)
            self._ends.append((self._ends[-1] if self._ends else 0) + count)

    def _maybe_degrade(self) -> None:
        runs = len(self._values)
        if runs >= self._DEGRADE_CHECK and runs * 2 > self._ends[-1]:
            self._plain = list(self)
            self._values = []
            self._ends = []

    def append(self, value: float) -> None:
        if self._plain is not None:
            self._plain.append(value)
            return
        self._push_run(value, 1)
        self._maybe_degrade()

    def extend(self, values) -> None:
        if self._plain is not None:
            self._plain.extend(values)
            return
        if isinstance(values, RunLengthArrivals) and values._plain is None:
            previous = 0
            for value, end in zip(values._values, values._ends):
                self._push_run(value, end - previous)
                previous = end
        else:
            for value in values:
                self._push_run(value, 1)
        if self._values:
            self._maybe_degrade()

    def gather(self, indices: Sequence[int]) -> "RunLengthArrivals":
        """Stamps at ``indices`` (run-compressed again on the way out)."""
        out = RunLengthArrivals()
        out.extend(self[i] for i in indices)
        return out


def arrival_run_count(arrivals: Sequence[float]) -> int:
    """Number of equal-value runs in ``arrivals`` (the RLE spill unit)."""
    if isinstance(arrivals, RunLengthArrivals):
        if arrivals._plain is None:
            return arrivals.run_count
        arrivals = arrivals._plain
    n = len(arrivals)
    if not n:
        return 0
    # One C-level pass: a run starts wherever a stamp differs from its
    # predecessor.
    return 1 + sum(map(ne, arrivals, islice(arrivals, 1, None)))


def compress_arrivals(arrivals) -> "RunLengthArrivals | list[float]":
    """RLE form of ``arrivals`` when it compresses, the original otherwise."""
    if isinstance(arrivals, RunLengthArrivals):
        return arrivals
    n = len(arrivals)
    if n and arrival_run_count(arrivals) * 2 <= n:
        return RunLengthArrivals(arrivals)
    return arrivals


def make_dictionaries(schema: Schema) -> list:
    """One fresh :class:`Dictionary` per dict-encodable attribute (else None)."""
    return [
        Dictionary() if attribute.type_name in DICT_ENCODED_TYPES else None
        for attribute in schema
    ]


def empty_column(type_name: str, encoded: bool = False, dictionary: Dictionary | None = None):
    """A fresh, empty column for one attribute type.

    Numeric attributes get packed arrays; in encoded mode, dict-encodable
    attributes get a :class:`DictColumn` (over ``dictionary`` when given).
    """
    code = NUMERIC_TYPECODES.get(type_name)
    if code:
        return array(code)
    if encoded and type_name in DICT_ENCODED_TYPES:
        return DictColumn(dictionary)
    return []


def empty_columns(schema: Schema, encoded: bool = False, dictionaries: Sequence | None = None) -> list:
    """One fresh empty column per attribute of ``schema``."""
    if dictionaries is None:
        return [empty_column(a.type_name, encoded) for a in schema]
    return [
        empty_column(a.type_name, encoded, dictionary)
        for a, dictionary in zip(schema, dictionaries)
    ]


def empty_like(column) -> "array | list | DictColumn":
    """A fresh, empty column with the same storage class as ``column``.

    A dict-encoded column's twin shares its dictionary, so values moved
    between the two stay code-compatible (the encoding-stable concat path).
    """
    if type(column) is array:
        return array(column.typecode)
    if type(column) is DictColumn:
        return DictColumn(column.dictionary)
    return []


def build_column(
    type_name: str,
    values: Sequence[Any],
    encoded: bool = False,
    dictionary: Dictionary | None = None,
):
    """A column over ``values``; object-list fallback on mixed/unfit values."""
    code = NUMERIC_TYPECODES.get(type_name)
    if code is not None:
        try:
            return array(code, values)
        except _DEGRADE_ERRORS:
            return list(values)
    if encoded and type_name in DICT_ENCODED_TYPES:
        column = DictColumn(dictionary)
        try:
            column.extend(values)
        except _DEGRADE_ERRORS:
            return list(values)
        return column
    return list(values)


def build_columns(
    schema: Schema,
    columns: Sequence[Sequence[Any]],
    encoded: bool = False,
    dictionaries: Sequence | None = None,
) -> list:
    """Typed/encoded copies of ``columns`` as dictated by ``schema``."""
    if dictionaries is None:
        return [
            build_column(attribute.type_name, column, encoded)
            for attribute, column in zip(schema, columns)
        ]
    return [
        build_column(attribute.type_name, column, encoded, dictionary)
        for attribute, column, dictionary in zip(schema, columns, dictionaries)
    ]


def gather(column, indices: Sequence[int]):
    """Values of ``column`` at ``indices``, preserving the storage class."""
    if type(column) is array:
        return array(column.typecode, [column[i] for i in indices])
    if type(column) is DictColumn:
        return column.gather(indices)
    return [column[i] for i in indices]


def as_values(column) -> Sequence[Any]:
    """``column`` as a random-access value sequence with C-speed indexing.

    Dict-encoded columns decode once (one C-level ``map`` over the codes,
    yielding the dictionary's canonical strings — no string construction);
    everything else is returned as-is.  Bulk consumers that will index a
    column many times (the overflow-resolution joins) call this once per
    chunk instead of paying a Python-level ``__getitem__`` per access.
    """
    if type(column) is DictColumn:
        return list(column)
    if type(column) is RunLengthArrivals:
        return column.to_list()
    return column


def extend_column(columns: list, position: int, values, base_length: int) -> None:
    """Extend ``columns[position]`` with ``values``, degrading to a list on misfit.

    ``base_length`` is the column's length before the extend; a typed or
    dict-encoded buffer that rejects a value mid-extend may have been
    partially extended, so the repair truncates back to ``base_length``
    before re-running on a list.
    """
    column = columns[position]
    try:
        column.extend(values)
    except _DEGRADE_ERRORS:
        del column[base_length:]
        column = list(column)
        column.extend(values)
        columns[position] = column


def append_value(columns: list, position: int, value) -> None:
    """Append one value to ``columns[position]``, degrading to a list on misfit."""
    try:
        columns[position].append(value)
    except _DEGRADE_ERRORS:
        column = list(columns[position])
        column.append(value)
        columns[position] = column


class ColumnarPartition:
    """A columnar row store with a ``key -> row positions`` index.

    The unit of storage inside hash-table buckets (one partition per bucket)
    and the nested-loops join's inner buffer.  Rows live as per-attribute
    column entries plus an arrival stamp; the positions index maps each join
    key to the row positions holding it, in insertion order, so probes return
    gather indices instead of row objects.

    In encoded mode string columns dictionary-encode (over the supplied
    shared ``dictionaries``, so all partitions of one hash table produce
    code-compatible spill chunks).  The arrival column stays a plain list —
    resident stamps come from network scans, which stamp every tuple
    uniquely, so run-length compressing them in place never pays; runs are
    counted (and credited) at spill time, where block-stamped builds do
    collapse.
    """

    __slots__ = ("schema", "columns", "arrivals", "positions", "encoded", "dictionaries")

    def __init__(
        self,
        schema: Schema,
        encoded: bool = False,
        dictionaries: Sequence | None = None,
    ) -> None:
        self.schema = schema
        self.encoded = encoded
        if encoded and dictionaries is None:
            dictionaries = make_dictionaries(schema)
        self.dictionaries = dictionaries
        self.columns = empty_columns(schema, encoded, dictionaries)
        self.arrivals: list[float] = []
        self.positions: dict[tuple[Any, ...], list[int]] = {}

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def count(self) -> int:
        return len(self.arrivals)

    # -- insertion ------------------------------------------------------------

    def append_values(self, key: tuple[Any, ...], values: Sequence[Any], arrival: float) -> None:
        """Insert one row given as a value vector (the tuple-at-a-time path)."""
        columns = self.columns
        for j, value in enumerate(values):
            append_value(columns, j, value)
        position = len(self.arrivals)
        self.arrivals.append(arrival)
        found = self.positions.get(key)
        if found is None:
            self.positions[key] = [position]
        else:
            found.append(position)

    def append_position(
        self,
        key: tuple[Any, ...],
        source_columns: Sequence[Sequence[Any]],
        index: int,
        arrival: float,
    ) -> None:
        """Insert one row by position from another column set — no row boxing.

        Dict-encoded pairs take inlined paths: a source sharing the target's
        dictionary moves the raw code; a foreign dict source decodes and
        re-encodes with direct ``codes`` lookups (one C-level dict probe in
        the common already-seen case, no per-value Python call).  Unencoded
        partitions keep the original branch-free loop.
        """
        columns = self.columns
        if not self.encoded:
            for j, source in enumerate(source_columns):
                append_value(columns, j, source[index])
            position = len(self.arrivals)
            self.arrivals.append(arrival)
            found = self.positions.get(key)
            if found is None:
                self.positions[key] = [position]
            else:
                found.append(position)
            return
        for j, source in enumerate(source_columns):
            column = columns[j]
            if type(column) is DictColumn and type(source) is DictColumn:
                dictionary = column.dictionary
                if dictionary is source.dictionary:
                    column.codes.append(source.codes[index])
                    continue
                value = source.dictionary.values[source.codes[index]]
                code = dictionary.codes.get(value)
                if code is None:
                    try:
                        code = dictionary.encode(value)
                    except _DEGRADE_ERRORS:
                        append_value(columns, j, value)
                        continue
                column.codes.append(code)
                continue
            append_value(columns, j, source[index])
        position = len(self.arrivals)
        self.arrivals.append(arrival)
        found = self.positions.get(key)
        if found is None:
            self.positions[key] = [position]
        else:
            found.append(position)

    def extend_gather(
        self,
        source_columns: Sequence[Sequence[Any]],
        source_arrivals: Sequence[float],
        keys: Sequence[tuple[Any, ...]],
        indices: Sequence[int],
    ) -> None:
        """Bulk-insert the rows of ``source_columns`` at ``indices``.

        Column payloads move as per-column gathers (one slice-style pass per
        attribute; dict-encoded sources gather codes); only the key index is
        maintained per row.
        """
        if type(source_arrivals) is RunLengthArrivals:
            source_arrivals = source_arrivals.to_list()
        base = len(self.arrivals)
        columns = self.columns
        for j in range(len(columns)):
            extend_column(columns, j, gather(source_columns[j], indices), base)
        arrivals = self.arrivals
        positions = self.positions
        for offset, i in enumerate(indices):
            arrivals.append(source_arrivals[i])
            key = keys[i]
            found = positions.get(key)
            if found is None:
                positions[key] = [base + offset]
            else:
                found.append(base + offset)

    # -- lookup ----------------------------------------------------------------

    def match(self, key: tuple[Any, ...]) -> list[int] | None:
        """Row positions holding ``key`` (insertion order), or ``None``."""
        return self.positions.get(key)

    def gather_matches(
        self, keys: Sequence[tuple[Any, ...]]
    ) -> tuple[list[int], list[list[Any]], list[float], bool] | None:
        """Bulk probe against this partition: gathered match columns.

        Returns ``(take, match_columns, match_arrivals, aligned)`` — the
        contract shared with ``BucketedHashTable.gather_matches`` and
        consumed by :func:`repro.storage.batch.gather_join_columns`:
        ``take[i]`` is the probed position whose key produced match ``i``,
        matches arrive as already-gathered column lists, and ``aligned`` is
        true only when every key matched exactly once.  ``None`` when
        nothing matched.
        """
        width = len(self.columns)
        columns = self.columns
        arrivals = self.arrivals
        positions_by_key = self.positions
        take: list[int] = []
        match_columns: list[list[Any]] = [[] for _ in range(width)]
        match_arrivals: list[float] = []
        aligned = True
        for position, key in enumerate(keys):
            found = positions_by_key.get(key)
            if not found:
                aligned = False
                continue
            if len(found) == 1:
                take.append(position)
            else:
                aligned = False
                take.extend([position] * len(found))
            for j in range(width):
                source = columns[j]
                acc = match_columns[j]
                if type(source) is DictColumn:
                    # Hoisted decode: two C-level subscripts per match, no
                    # per-value Python call; values are canonical strings.
                    dvalues = source.dictionary.values
                    dcodes = source.codes
                    for p in found:
                        acc.append(dvalues[dcodes[p]])
                else:
                    for p in found:
                        acc.append(source[p])
            for p in found:
                match_arrivals.append(arrivals[p])
        if not take:
            return None
        return take, match_columns, match_arrivals, aligned

    def value_tuple(self, index: int) -> tuple[Any, ...]:
        """The value vector of one row (boxes a tuple, not a Row)."""
        return tuple(column[index] for column in self.columns)

    def row_at(self, index: int) -> Row:
        """One row boxed as a :class:`Row` (compatibility/tuple-path accessor)."""
        # repro: allow[hot-path-row] declared tuple-path boundary accessor
        return Row.make(self.schema, self.value_tuple(index), self.arrivals[index])

    def rows(self) -> list[Row]:
        """All rows boxed (compatibility/tuple-path accessor)."""
        schema = self.schema
        make = Row.make  # repro: allow[hot-path-row] declared tuple-path boundary
        if not len(self.arrivals):
            return []
        return [
            make(schema, values, arrival)
            for values, arrival in zip(zip(*self.columns), self.arrivals)
        ]

    # -- teardown ----------------------------------------------------------------

    def take_data(self) -> tuple[list, list[float]]:
        """Remove and return ``(columns, arrivals)``, resetting the partition.

        The counters, columns, and key index all reset in one step *before*
        the data is handed to the caller, so an interrupted consumer (a spill
        write that raises) can never observe — or double-release — a
        half-drained partition.
        """
        columns, arrivals = self.columns, self.arrivals
        self.columns = empty_columns(self.schema, self.encoded, self.dictionaries)
        self.arrivals = []
        self.positions = {}
        return columns, arrivals

    def clear(self) -> None:
        """Drop all rows."""
        self.take_data()
