"""Typed column storage: the struct-of-arrays substrate under batches and buckets.

Columns holding ``int`` or ``float`` attributes are stored in compact
``array('q')`` / ``array('d')`` buffers (8 bytes per value, no per-value
Python object retained by the container); every other type — and any column
that turns out to hold mixed or out-of-range values — falls back to a plain
object list.  The helpers here keep that dual representation invisible to
the rest of the engine: appends and bulk extends degrade a typed column to a
list the first time a value does not fit, gathers and slices preserve the
storage class, and byte accounting (:meth:`Schema.columnar_row_size`) matches
what the chosen representation actually costs.

:class:`ColumnarPartition` is the shared "columnar bag of rows with a key
index" used by hash-table buckets and the nested-loops inner: one typed
column per attribute, a parallel arrival list, and a ``key -> row positions``
map, so join operators can insert from batch columns and assemble output with
per-column gathers without ever materializing :class:`~repro.storage.tuples.Row`
objects.
"""

from __future__ import annotations

from array import array
from typing import Any, Sequence

from repro.storage.schema import Schema
from repro.storage.tuples import Row

#: array typecodes for the attribute types stored packed.
NUMERIC_TYPECODES = {"int": "q", "float": "d"}

#: Exceptions that signal "this value does not fit the typed buffer".
_DEGRADE_ERRORS = (TypeError, ValueError, OverflowError)


def empty_column(type_name: str) -> "array | list":
    """A fresh, empty column for one attribute type (typed when numeric)."""
    code = NUMERIC_TYPECODES.get(type_name)
    return array(code) if code else []


def empty_columns(schema: Schema) -> list:
    """One fresh empty column per attribute of ``schema``."""
    return [empty_column(attribute.type_name) for attribute in schema]


def empty_like(column) -> "array | list":
    """A fresh, empty column with the same storage class as ``column``."""
    if type(column) is array:
        return array(column.typecode)
    return []


def build_column(type_name: str, values: Sequence[Any]) -> "array | list":
    """A column over ``values``; object-list fallback on mixed/unfit values."""
    code = NUMERIC_TYPECODES.get(type_name)
    if code is not None:
        try:
            return array(code, values)
        except _DEGRADE_ERRORS:
            pass
    return list(values)


def build_columns(schema: Schema, columns: Sequence[Sequence[Any]]) -> list:
    """Typed copies of ``columns`` as dictated by ``schema`` (see module docs)."""
    return [
        build_column(attribute.type_name, column)
        for attribute, column in zip(schema, columns)
    ]


def gather(column, indices: Sequence[int]):
    """Values of ``column`` at ``indices``, preserving the storage class."""
    if type(column) is array:
        return array(column.typecode, [column[i] for i in indices])
    return [column[i] for i in indices]


def extend_column(columns: list, position: int, values, base_length: int) -> None:
    """Extend ``columns[position]`` with ``values``, degrading to a list on misfit.

    ``base_length`` is the column's length before the extend; a typed buffer
    that rejects a value mid-extend may have been partially extended, so the
    repair truncates back to ``base_length`` before re-running on a list.
    """
    column = columns[position]
    try:
        column.extend(values)
    except _DEGRADE_ERRORS:
        del column[base_length:]
        column = list(column)
        column.extend(values)
        columns[position] = column


def append_value(columns: list, position: int, value) -> None:
    """Append one value to ``columns[position]``, degrading to a list on misfit."""
    try:
        columns[position].append(value)
    except _DEGRADE_ERRORS:
        column = list(columns[position])
        column.append(value)
        columns[position] = column


class ColumnarPartition:
    """A columnar row store with a ``key -> row positions`` index.

    The unit of storage inside hash-table buckets (one partition per bucket)
    and the nested-loops join's inner buffer.  Rows live as per-attribute
    column entries plus an arrival stamp; the positions index maps each join
    key to the row positions holding it, in insertion order, so probes return
    gather indices instead of row objects.
    """

    __slots__ = ("schema", "columns", "arrivals", "positions")

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.columns = empty_columns(schema)
        self.arrivals: list[float] = []
        self.positions: dict[tuple[Any, ...], list[int]] = {}

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def count(self) -> int:
        return len(self.arrivals)

    # -- insertion ------------------------------------------------------------

    def append_values(self, key: tuple[Any, ...], values: Sequence[Any], arrival: float) -> None:
        """Insert one row given as a value vector (the tuple-at-a-time path)."""
        columns = self.columns
        for j, value in enumerate(values):
            append_value(columns, j, value)
        position = len(self.arrivals)
        self.arrivals.append(arrival)
        found = self.positions.get(key)
        if found is None:
            self.positions[key] = [position]
        else:
            found.append(position)

    def append_position(
        self,
        key: tuple[Any, ...],
        source_columns: Sequence[Sequence[Any]],
        index: int,
        arrival: float,
    ) -> None:
        """Insert one row by position from another column set — no row boxing."""
        columns = self.columns
        for j, source in enumerate(source_columns):
            append_value(columns, j, source[index])
        position = len(self.arrivals)
        self.arrivals.append(arrival)
        found = self.positions.get(key)
        if found is None:
            self.positions[key] = [position]
        else:
            found.append(position)

    def extend_gather(
        self,
        source_columns: Sequence[Sequence[Any]],
        source_arrivals: Sequence[float],
        keys: Sequence[tuple[Any, ...]],
        indices: Sequence[int],
    ) -> None:
        """Bulk-insert the rows of ``source_columns`` at ``indices``.

        Column payloads move as per-column gathers (one slice-style pass per
        attribute); only the key index is maintained per row.
        """
        base = len(self.arrivals)
        columns = self.columns
        for j in range(len(columns)):
            source = source_columns[j]
            extend_column(columns, j, [source[i] for i in indices], base)
        arrivals = self.arrivals
        positions = self.positions
        for offset, i in enumerate(indices):
            arrivals.append(source_arrivals[i])
            key = keys[i]
            found = positions.get(key)
            if found is None:
                positions[key] = [base + offset]
            else:
                found.append(base + offset)

    # -- lookup ----------------------------------------------------------------

    def match(self, key: tuple[Any, ...]) -> list[int] | None:
        """Row positions holding ``key`` (insertion order), or ``None``."""
        return self.positions.get(key)

    def gather_matches(
        self, keys: Sequence[tuple[Any, ...]]
    ) -> tuple[list[int], list[list[Any]], list[float], bool] | None:
        """Bulk probe against this partition: gathered match columns.

        Returns ``(take, match_columns, match_arrivals, aligned)`` — the
        contract shared with ``BucketedHashTable.gather_matches`` and
        consumed by :func:`repro.storage.batch.gather_join_columns`:
        ``take[i]`` is the probed position whose key produced match ``i``,
        matches arrive as already-gathered column lists, and ``aligned`` is
        true only when every key matched exactly once.  ``None`` when
        nothing matched.
        """
        width = len(self.columns)
        columns = self.columns
        arrivals = self.arrivals
        positions_by_key = self.positions
        take: list[int] = []
        match_columns: list[list[Any]] = [[] for _ in range(width)]
        match_arrivals: list[float] = []
        aligned = True
        for position, key in enumerate(keys):
            found = positions_by_key.get(key)
            if not found:
                aligned = False
                continue
            if len(found) == 1:
                take.append(position)
            else:
                aligned = False
                take.extend([position] * len(found))
            for j in range(width):
                source = columns[j]
                acc = match_columns[j]
                for p in found:
                    acc.append(source[p])
            for p in found:
                match_arrivals.append(arrivals[p])
        if not take:
            return None
        return take, match_columns, match_arrivals, aligned

    def value_tuple(self, index: int) -> tuple[Any, ...]:
        """The value vector of one row (boxes a tuple, not a Row)."""
        return tuple(column[index] for column in self.columns)

    def row_at(self, index: int) -> Row:
        """One row boxed as a :class:`Row` (compatibility/tuple-path accessor)."""
        return Row.make(self.schema, self.value_tuple(index), self.arrivals[index])

    def rows(self) -> list[Row]:
        """All rows boxed (compatibility/tuple-path accessor)."""
        schema = self.schema
        make = Row.make
        if not self.arrivals:
            return []
        return [
            make(schema, values, arrival)
            for values, arrival in zip(zip(*self.columns), self.arrivals)
        ]

    # -- teardown ----------------------------------------------------------------

    def take_data(self) -> tuple[list, list[float]]:
        """Remove and return ``(columns, arrivals)``, resetting the partition.

        The counters, columns, and key index all reset in one step *before*
        the data is handed to the caller, so an interrupted consumer (a spill
        write that raises) can never observe — or double-release — a
        half-drained partition.
        """
        columns, arrivals = self.columns, self.arrivals
        self.columns = empty_columns(self.schema)
        self.arrivals = []
        self.positions = {}
        return columns, arrivals

    def clear(self) -> None:
        """Drop all rows."""
        self.take_data()
