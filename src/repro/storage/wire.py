"""Columnar wire format: how batches cross the lane process boundary.

The process exchange backend ships routed batches to lane workers (and lane
outputs back) without giving up the storage layer's compact representations:

* typed ``array('q')`` / ``array('d')`` columns ship as raw buffers via
  pickle protocol 5's out-of-band :class:`pickle.PickleBuffer` path — no
  per-value boxing, one memcpy per column;
* :class:`~repro.storage.columns.DictColumn` ships its ``array('q')`` code
  buffer plus a dictionary *delta*: the sender tracks how many entries each
  dictionary had at last ship, so each distinct string crosses the boundary
  once per peer, codes ever after.  The receiver adopts deltas into a
  mirror dictionary keyed by the sender's dictionary identity, so columns
  that shared a dictionary on one side share its mirror on the other
  (the code-vs-code fast paths keep working);
* non-degraded :class:`~repro.storage.columns.RunLengthArrivals` ship as
  ``(value, run)`` pairs; degraded ones ship their plain list, so the
  receiver reconstructs the identical internal form;
* row-backed batches ship as value tuples and are rebuilt row-backed —
  operators branch on :attr:`~repro.storage.batch.Batch.is_columnar`, so
  the representation must survive the crossing.

One :class:`WireEncoder` / :class:`WireDecoder` pair serves one direction of
one (parent, lane) link for the query's lifetime; the encoder's byte and
dictionary-entry counters feed the benchmark's bounded-shipping assertion.

Framing (:func:`pack` / :func:`unpack`) length-prefixes the pickle payload
and its out-of-band buffers into one ``bytes`` so a message travels as a
single ``Connection.send_bytes`` call.
"""

from __future__ import annotations

import pickle
import struct
from array import array
from typing import Any

from repro.errors import StorageError
from repro.storage.batch import Batch
from repro.storage.columns import DictColumn, Dictionary, RunLengthArrivals
from repro.storage.schema import Schema
from repro.storage.tuples import Row


class WireFormatError(StorageError):
    """A shipped batch could not be decoded against the receiver's state."""


def pack(message: Any) -> bytes:
    """Serialize ``message`` (protocol 5) with out-of-band buffers, framed."""
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(message, protocol=5, buffer_callback=buffers.append)
    parts: list[Any] = [payload]
    parts.extend(buffer.raw() for buffer in buffers)
    header = [struct.pack("<I", len(parts))]
    header.extend(struct.pack("<Q", memoryview(part).nbytes) for part in parts)
    return b"".join(header) + b"".join(bytes(p) if not isinstance(p, bytes) else p for p in parts)


def unpack(blob: bytes) -> Any:
    """Inverse of :func:`pack`; buffers are zero-copy views into ``blob``."""
    view = memoryview(blob)
    (count,) = struct.unpack_from("<I", view, 0)
    offset = 4 + 8 * count
    sizes = struct.unpack_from(f"<{count}Q", view, 4)
    parts = []
    for size in sizes:
        parts.append(view[offset : offset + size])
        offset += size
    return pickle.loads(parts[0], buffers=parts[1:])


class WireEncoder:
    """Stateful batch encoder for one direction of one inter-process link.

    Tracks per-dictionary ship watermarks (for deltas) and per-schema ship
    state (a schema object crosses once, a small integer ref ever after).
    Counters accumulate for the benchmark's shipping report.
    """

    def __init__(self) -> None:
        #: id(dictionary) -> (wire_id, dictionary) — the reference keeps the
        #: dictionary alive so the id cannot be recycled.
        self._dictionaries: dict[int, tuple[int, Dictionary]] = {}
        #: wire_id -> number of entries already shipped.
        self._shipped: dict[int, int] = {}
        self._schemas: dict[int, tuple[int, Schema]] = {}
        self.payload_bytes = 0
        self.batches = 0
        self.dict_entries_shipped = 0
        self.dict_bytes_shipped = 0

    # -- registries -------------------------------------------------------------

    def _schema_ref(self, schema: Schema) -> tuple[int, Schema | None]:
        known = self._schemas.get(id(schema))
        if known is not None:
            return known[0], None
        ref = len(self._schemas)
        self._schemas[id(schema)] = (ref, schema)
        return ref, schema

    def _dictionary_delta(self, dictionary: Dictionary) -> tuple[int, int, list[str], bool]:
        known = self._dictionaries.get(id(dictionary))
        if known is None:
            wire_id = len(self._dictionaries)
            self._dictionaries[id(dictionary)] = (wire_id, dictionary)
            self._shipped[wire_id] = 0
        else:
            wire_id = known[0]
        base = self._shipped[wire_id]
        delta = dictionary.entries_since(base)
        self._shipped[wire_id] = base + len(delta)
        if delta:
            self.dict_entries_shipped += len(delta)
            self.dict_bytes_shipped += sum(len(value) for value in delta)
        return wire_id, base, delta, dictionary.frozen

    # -- encoding ---------------------------------------------------------------

    def _encode_column(self, column) -> tuple:
        if type(column) is array:
            return ("arr", column.typecode, pickle.PickleBuffer(column))
        if type(column) is DictColumn:
            wire_id, base, delta, frozen = self._dictionary_delta(column.dictionary)
            return ("dict", wire_id, base, delta, frozen, pickle.PickleBuffer(column.codes))
        return ("obj", list(column))

    def _encode_arrivals(self, arrivals) -> tuple:
        if type(arrivals) is RunLengthArrivals:
            runs = arrivals.wire_runs()
            if runs is None:
                return ("rle-plain", arrivals.to_list())
            values, ends = runs
            return (
                "rle",
                pickle.PickleBuffer(array("d", values)),
                pickle.PickleBuffer(array("q", ends)),
            )
        return ("plain", list(arrivals))

    def encode_batch(self, batch: Batch) -> tuple:
        """One batch as a picklable wire structure (pair with :func:`pack`)."""
        columns, rows, arrivals = batch.wire_parts()
        schema_ref = self._schema_ref(batch.schema)
        self.batches += 1
        if columns is None:
            values = [row.values for row in rows]
            return ("rows", schema_ref, values, [row.arrival for row in rows])
        return (
            "cols",
            schema_ref,
            [self._encode_column(column) for column in columns],
            self._encode_arrivals(arrivals),
        )

    def report(self) -> dict:
        """Shipping counters (consumed by the multicore benchmark)."""
        return {
            "batches": self.batches,
            "payload_bytes": self.payload_bytes,
            "dictionaries": len(self._dictionaries),
            "dict_entries_shipped": self.dict_entries_shipped,
            "dict_bytes_shipped": self.dict_bytes_shipped,
        }


class WireDecoder:
    """Receiving twin of :class:`WireEncoder`: rebuilds batches and mirrors.

    Dictionary mirrors persist across batches (keyed by the sender's wire
    id) so successive ships extend, never re-ship; schema refs resolve to
    the one schema object shipped first, preserving object identity across
    all decoded batches of a stream.
    """

    def __init__(self) -> None:
        self._dictionaries: dict[int, Dictionary] = {}
        self._schemas: dict[int, Schema] = {}

    def _resolve_schema(self, schema_ref: tuple[int, Schema | None]) -> Schema:
        ref, shipped = schema_ref
        if shipped is not None:
            self._schemas[ref] = shipped
        try:
            return self._schemas[ref]
        except KeyError:
            raise WireFormatError(f"unknown schema ref {ref} (out-of-order decode?)") from None

    def _decode_column(self, encoded: tuple):
        kind = encoded[0]
        if kind == "arr":
            column = array(encoded[1])
            column.frombytes(encoded[2])
            return column
        if kind == "dict":
            _, wire_id, base, delta, frozen, code_bytes = encoded
            dictionary = self._dictionaries.get(wire_id)
            if dictionary is None:
                dictionary = self._dictionaries[wire_id] = Dictionary()
            try:
                dictionary.adopt_entries(delta, base)
            except ValueError as exc:
                raise WireFormatError(str(exc)) from None
            dictionary.frozen = frozen
            codes = array("q")
            codes.frombytes(code_bytes)
            return DictColumn(dictionary, codes)
        if kind == "obj":
            return encoded[1]
        raise WireFormatError(f"unknown column encoding {kind!r}")

    def _decode_arrivals(self, encoded: tuple):
        kind = encoded[0]
        if kind == "plain":
            return encoded[1]
        if kind == "rle":
            values = array("d")
            values.frombytes(encoded[1])
            ends = array("q")
            ends.frombytes(encoded[2])
            return RunLengthArrivals.from_wire_runs(values.tolist(), ends.tolist())
        if kind == "rle-plain":
            out = RunLengthArrivals()
            out._plain = list(encoded[1])
            return out
        raise WireFormatError(f"unknown arrival encoding {kind!r}")

    def decode_batch(self, encoded: tuple) -> Batch:
        """Rebuild one batch; representation (columns vs rows) is preserved."""
        kind = encoded[0]
        schema = self._resolve_schema(encoded[1])
        if kind == "rows":
            _, _, values, arrivals = encoded
            rows = [
                Row.make(schema, row_values, arrival)
                for row_values, arrival in zip(values, arrivals)
            ]
            return Batch.from_rows(schema, rows)
        if kind == "cols":
            columns = [self._decode_column(column) for column in encoded[2]]
            return Batch.from_columns(schema, columns, self._decode_arrivals(encoded[3]))
        raise WireFormatError(f"unknown batch encoding {kind!r}")
