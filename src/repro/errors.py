"""Exception hierarchy shared across the Tukwila reproduction.

Every error raised by the library derives from :class:`TukwilaError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class TukwilaError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(TukwilaError):
    """A schema is malformed or two schemas are incompatible."""


class StorageError(TukwilaError):
    """A storage-layer operation failed (relation, hash table, disk)."""


class MemoryBudgetError(StorageError):
    """An operator attempted to reserve more memory than its budget allows."""


class CatalogError(TukwilaError):
    """The data source catalog is missing or holds inconsistent metadata."""


class QueryError(TukwilaError):
    """A query is syntactically or semantically invalid."""


class ReformulationError(QueryError):
    """The reformulator could not rewrite a mediated query over the sources."""


class PlanError(TukwilaError):
    """A query execution plan is malformed."""


class RuleError(PlanError):
    """An event-condition-action rule is malformed or violates restrictions."""


class PlanValidationError(PlanError):
    """A plan failed static validation before execution.

    Carries the individual :class:`~repro.analysis.plan_check.PlanCheckFinding`
    records in ``findings`` so callers can report every violation, not just
    the first.
    """

    def __init__(self, message: str, findings: list | None = None) -> None:
        super().__init__(message)
        self.findings = list(findings or [])


class OptimizationError(TukwilaError):
    """The optimizer failed to produce a plan."""


class ExecutionError(TukwilaError):
    """The execution engine hit an unrecoverable runtime failure."""


class SourceUnavailableError(ExecutionError):
    """A data source could not be contacted or failed mid-transfer."""


class SourceTimeoutError(SourceUnavailableError):
    """A data source did not respond within its timeout."""


class MemoryOverflowError(ExecutionError):
    """An operator ran out of memory and no overflow strategy was configured."""


class QueryExecutionError(ExecutionError):
    """A query failed for reasons outside its own operator tree.

    Raised by the process exchange backend when a lane worker dies (killed,
    crashed at import, lost its pipe) rather than failing cleanly: the
    original operator-level exception, if any, is chained; otherwise the
    worker's traceback text is embedded in the message."""
