"""Speculative source layer: partial-extent streaming + plan-aware prefetch.

The workload the speculative layer exists for: eight query sessions over
overlapping slow sources, the later ones arriving *mid-stream* — after the
early sessions' scans started but before any extent completed.  Under
completion-based admission (the ``speculative_sources=False`` baseline) a
late session either queues for one of the source's bounded connection slots
or waits for a completed cache entry; with the speculative layer it attaches
to the in-progress extent as a follower — prefix at local CPU speed, live
tail shared with the publisher — and the plan-aware prefetcher has usually
started that extent before the first session even stepped.

Four things are asserted:

* **Time-to-first-tuple bar** — averaged over the late arrivals, the
  speculative run's time from admission to first output tuple must be at
  least 2x better than the completion-based baseline's.
* **Correctness** — every session's result multiset is identical between
  the two runs: speculation changes *when*, never *what*.
* **Waste cap** — bytes the prefetcher fetched for sources that never
  served a hit stay within :data:`WASTE_CAP_FRACTION` of everything it
  fetched.
* **Broker invariant + revocation order** — after every revocation,
  ``broker.used_bytes`` equals the residency recomputed from live hash
  tables *plus* the prefetcher's cached bytes, and no query lease is ever
  revoked while the speculative lease still holds bytes (speculative leases
  are victimized first).

Each run appends a record to ``BENCH_prefetch.json`` at the repo root (the
accumulating perf-history artifact, uploaded by CI).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import format_table
from repro.engine.context import EngineConfig
from repro.network.profiles import wide_area
from repro.plan.physical import join, wrapper_scan
from repro.server import QueryServer

from bench_support import run_once, scale_mb

N_SESSIONS = 8

#: Simultaneous streams one source serves; extra connections queue on the
#: shared timeline.
SOURCE_MAX_CONCURRENT = 2

#: Broker capacity as a multiple of one session's join-memory request: room
#: for the two head sessions plus the speculative lease, but low enough that
#: the mid-stream arrivals revoke — and must drain the speculative lease
#: before touching any query lease.
CAPACITY_SESSIONS = 3.5

#: Virtual acceptance bar: late-session time-to-first-tuple at least this
#: much better than completion-based admission.
TTFT_BAR = 2.0

#: At most this fraction of prefetched bytes may go unused.
WASTE_CAP_FRACTION = 0.25

TABLES = ["part", "partsupp", "supplier"]

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_prefetch.json"


def make_deployment():
    """Fresh deployment per mode: connection-slot state must not leak."""
    deployment = build_deployment(scale_mb(1.0), TABLES, profile=wide_area(), seed=42)
    for source in deployment.sources.values():
        source.max_concurrent = SOURCE_MAX_CONCURRENT
    return deployment


def session_spec(index: int, memory_bytes: int):
    """Session ``index``'s plan: a DPJ join sharing ``partsupp`` with everyone."""
    prefix = f"s{index}"
    if index % 2 == 0:
        left, right, lkey, rkey = "part", "partsupp", "part.p_partkey", "partsupp.ps_partkey"
    else:
        left, right, lkey, rkey = "supplier", "partsupp", "supplier.s_suppkey", "partsupp.ps_suppkey"
    return join(
        wrapper_scan(left, operator_id=f"{prefix}_scan_{left}"),
        wrapper_scan(right, operator_id=f"{prefix}_scan_{right}"),
        [lkey],
        [rkey],
        operator_id=f"{prefix}_join",
        memory_limit_bytes=memory_bytes,
    )


def join_memory_request(deployment) -> int:
    """One session's memory request: its whole join state fits single-tenant."""
    total = 0
    for name in TABLES:
        source = deployment.sources[name]
        total += source.cardinality * source.exported_schema.encoded_row_size
    return max(32 * 1024, int(total * 0.9))


def result_multiset(relation) -> dict:
    counts: dict = {}
    for row in relation.rows:
        key = row.values
        counts[key] = counts.get(key, 0) + 1
    return counts


def calibrate_stagger() -> float:
    """Mid-stream arrival offset: a fraction of one isolated session's run."""
    deployment = make_deployment()
    memory_bytes = join_memory_request(deployment)
    result = run_operator_tree(
        session_spec(0, memory_bytes),
        deployment.catalog,
        result_name="calibrate",
        engine_config=EngineConfig(),
    )
    return result.completion_time_ms * 0.3


def run_mode(config: EngineConfig, memory_bytes: int, stagger_ms: float):
    """One server run: eight sessions, the late six arriving mid-stream."""
    deployment = make_deployment()
    server = QueryServer(
        deployment.catalog,
        engine_config=config,
        memory_capacity_bytes=int(memory_bytes * CAPACITY_SESSIONS),
    )
    server.broker.floor_bytes = max(16 * 1024, memory_bytes // 8)
    invariant_failures = []
    order_failures = []
    revocations = []

    def check_invariant(broker, record):
        resident = 0
        for session in server.sessions.values():
            for operator in session.context.operators.values():
                for table in getattr(operator, "_tables", None) or ():
                    resident += table.resident_bytes
                inner = getattr(operator, "_inner_table", None)
                if inner is not None:
                    resident += inner.resident_bytes
        prefetch_resident = (
            server.prefetcher.resident_bytes if server.prefetcher is not None else 0
        )
        resident += prefetch_resident
        revocations.append(record)
        if broker.used_bytes != resident:
            invariant_failures.append(
                f"after revoking {record.taken_bytes}B from {record.victim}: "
                f"broker.used={broker.used_bytes} resident={resident} "
                f"(prefetch {prefetch_resident})"
            )
        if not record.speculative and prefetch_resident > 0:
            order_failures.append(
                f"query lease {record.victim} revoked while the speculative "
                f"lease still held {prefetch_resident}B"
            )

    server.broker.on_revocation = check_invariant
    sessions = []
    for index in range(N_SESSIONS):
        # The first two arrive together and start the streams; the rest
        # trickle in mid-stream — after publishing started, before any
        # extent completed.
        arrival = 0.0 if index < 2 else (index - 1) * stagger_ms
        sessions.append(
            server.submit(session_spec(index, memory_bytes), f"s{index}", arrival_ms=arrival)
        )
    stats = server.run()
    ttft = {}
    for session in sessions:
        first = session.timeline.time_to_first
        ttft[session.session_id] = (
            None if first is None else first - session.summary.submitted_at_ms
        )
    return {
        "server": server,
        "stats": stats,
        "sessions": sessions,
        "ttft": ttft,
        "invariant_failures": invariant_failures,
        "order_failures": order_failures,
        "revocations": revocations,
    }


def run_workload():
    deployment = make_deployment()
    memory_bytes = join_memory_request(deployment)
    stagger = calibrate_stagger()
    baseline = run_mode(EngineConfig(), memory_bytes, stagger)
    speculative = run_mode(
        EngineConfig(
            speculative_sources=True,
            prefetch_budget_bytes=memory_bytes,
        ),
        memory_bytes,
        stagger,
    )
    return {
        "memory_bytes": memory_bytes,
        "stagger_ms": stagger,
        "baseline": baseline,
        "speculative": speculative,
    }


def late_ids(data) -> list[str]:
    """Sessions that arrived mid-stream (everyone staggered past zero)."""
    return [
        session.session_id
        for session in data["baseline"]["sessions"]
        if session.summary.submitted_at_ms > 0.0
    ]


def mean_ttft(mode, ids) -> float:
    values = [mode["ttft"][sid] for sid in ids if mode["ttft"][sid] is not None]
    return sum(values) / len(values)


def print_report(data) -> None:
    base, spec = data["baseline"], data["speculative"]
    rows = []
    for lhs, rhs in zip(spec["sessions"], base["sessions"]):
        rows.append(
            [
                lhs.session_id,
                round(lhs.summary.submitted_at_ms, 1),
                round(base["ttft"][lhs.session_id] or 0.0, 1),
                round(spec["ttft"][lhs.session_id] or 0.0, 1),
                round(rhs.summary.completed_at_ms, 1),
                round(lhs.summary.completed_at_ms, 1),
            ]
        )
    print()
    print(
        f"Speculative source layer: {N_SESSIONS} sessions, per-source streams "
        f"<= {SOURCE_MAX_CONCURRENT}, stagger {data['stagger_ms']:.1f} virtual ms"
    )
    print(
        format_table(
            [
                "session", "admitted", "ttft base", "ttft spec",
                "done base", "done spec",
            ],
            rows,
        )
    )
    ids = late_ids(data)
    ratio = mean_ttft(base, ids) / mean_ttft(spec, ids)
    prefetch = spec["stats"].prefetch
    print(
        f"late-session mean time-to-first-tuple {mean_ttft(base, ids):.1f} -> "
        f"{mean_ttft(spec, ids):.1f} virtual ms ({ratio:.2f}x, bar {TTFT_BAR}x)"
    )
    print(
        f"prefetch: {prefetch.sources_warmed} warmed, "
        f"{prefetch.bytes_fetched}B fetched, {prefetch.bytes_wasted}B wasted, "
        f"{prefetch.revocations} lease revocations; broker revocations "
        f"base {len(base['revocations'])} / spec {len(spec['revocations'])}"
    )


def append_trajectory(data, ratio: float) -> None:
    """Append one record to ``BENCH_prefetch.json`` (perf history artifact)."""
    base, spec = data["baseline"], data["speculative"]
    prefetch = spec["stats"].prefetch
    record = {
        "benchmark": "bench_prefetch_pipeline",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale_mb": scale_mb(1.0),
        "sessions": N_SESSIONS,
        "ttft_speedup_late_sessions": round(ratio, 4),
        "ttft_base_mean_ms": round(mean_ttft(base, late_ids(data)), 3),
        "ttft_spec_mean_ms": round(mean_ttft(spec, late_ids(data)), 3),
        "makespan_base_ms": round(base["stats"].makespan_ms, 3),
        "makespan_spec_ms": round(spec["stats"].makespan_ms, 3),
        "partial_extent_hits": spec["stats"].partial_extent_hits,
        "prefetch_sources_warmed": prefetch.sources_warmed,
        "prefetch_bytes_fetched": prefetch.bytes_fetched,
        "prefetch_bytes_wasted": prefetch.bytes_wasted,
        "speculative_revocations": spec["stats"].speculative_revocations,
    }
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_prefetch_pipeline(benchmark):
    data = run_once(benchmark, run_workload)
    print_report(data)
    base, spec = data["baseline"], data["speculative"]

    # Speculation changes *when*, never *what*: every session completed in
    # both modes, with identical result multisets.
    for lhs, rhs in zip(spec["sessions"], base["sessions"]):
        assert lhs.status.value == "completed", (
            f"{lhs.session_id}: {lhs.status} ({lhs.error})"
        )
        assert rhs.status.value == "completed", (
            f"{rhs.session_id}: {rhs.status} ({rhs.error})"
        )
        assert result_multiset(lhs.result) == result_multiset(rhs.result), (
            f"{lhs.session_id}: speculative result differs from baseline"
        )

    # The layer was actually exercised: the prefetcher warmed something and
    # mid-stream arrivals attached to partial extents.
    prefetch = spec["stats"].prefetch
    assert prefetch is not None and prefetch.sources_warmed >= 1
    assert spec["stats"].partial_extent_hits >= 1
    assert prefetch.bytes_fetched > 0
    assert prefetch.bytes_wasted <= prefetch.bytes_fetched * WASTE_CAP_FRACTION, (
        f"wasted {prefetch.bytes_wasted}B of {prefetch.bytes_fetched}B fetched "
        f"(cap {WASTE_CAP_FRACTION:.0%})"
    )

    # Memory pressure was real, the server-wide budget invariant (including
    # the prefetcher's residency) held at every revocation point, and the
    # speculative lease was always drained before any query lease.
    assert len(spec["revocations"]) >= 1, "workload was meant to force revocations"
    assert not spec["invariant_failures"], spec["invariant_failures"]
    assert not spec["order_failures"], spec["order_failures"]
    assert not base["invariant_failures"], base["invariant_failures"]

    # The headline bar: mid-stream arrivals reach their first output tuple
    # at least TTFT_BAR times sooner than under completion-based admission.
    ids = late_ids(data)
    ratio = mean_ttft(base, ids) / mean_ttft(spec, ids)
    append_trajectory(data, ratio)
    assert ratio >= TTFT_BAR, (
        f"late-session ttft only {ratio:.2f}x better "
        f"(base {mean_ttft(base, ids):.1f}ms, spec {mean_ttft(spec, ids):.1f}ms, "
        f"need >= {TTFT_BAR}x)"
    )
