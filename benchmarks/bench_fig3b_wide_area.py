"""Figure 3b — wide-area performance of ``partsupp ⋈ part``.

Paper workload: the two-relation join ``partsupp ⋈ part`` where the data is
routed across a trans-Atlantic link (~82.1 KB/s, ~145 ms RTT), under four
conditions: both inputs slow, only the inner slow, only the outer slow, and
full speed.

Paper result (shape to reproduce): the double pipelined join begins producing
tuples much earlier than the hybrid hash join and also completes earlier;
the hybrid join's curves separate depending on *which* input is slow, whereas
the DPJ's "both slow" and "inner slow" curves coincide (it is symmetric).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import format_table
from repro.network.profiles import lan, wide_area
from repro.plan.physical import JoinImplementation, join, wrapper_scan

from bench_support import run_once, scale_mb

TABLES = ["part", "partsupp"]

#: The four link conditions of Figure 3b: (label, outer profile, inner profile).
CONDITIONS = [
    ("both_slow", wide_area(), wide_area()),
    ("inner_slow", lan(), wide_area()),
    ("outer_slow", wide_area(), lan()),
    ("full_speed", lan(), lan()),
]


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(scale_mb(3.0), TABLES, seed=42)


def partsupp_part_plan(implementation: JoinImplementation):
    """partsupp (outer) ⋈ part (inner/build)."""
    return join(
        wrapper_scan("partsupp"),
        wrapper_scan("part"),
        ["partsupp.ps_partkey"],
        ["part.p_partkey"],
        implementation=implementation,
    )


def run_fig3b(deployment):
    """Run both join methods under all four link conditions."""
    results = {}
    for label, outer_profile, inner_profile in CONDITIONS:
        deployment.set_profile("partsupp", outer_profile)
        deployment.set_profile("part", inner_profile)
        for method in (JoinImplementation.DOUBLE_PIPELINED, JoinImplementation.HYBRID_HASH):
            key = (method.value, label)
            results[key] = run_operator_tree(
                partsupp_part_plan(method),
                deployment.catalog,
                result_name=f"fig3b_{method.value}_{label}",
            )
    deployment.set_all_profiles(lan())
    return results


def print_fig3b(results) -> None:
    rows = []
    for (method, condition), result in sorted(results.items()):
        rows.append(
            [
                method,
                condition,
                result.cardinality,
                round(result.time_to_first_tuple_ms or 0.0, 1),
                round(result.completion_time_ms, 1),
            ]
        )
    print()
    print("Figure 3b — partsupp x part over a wide-area link (virtual ms)")
    print(
        format_table(
            ["join", "condition", "tuples", "first tuple (ms)", "completion (ms)"], rows
        )
    )


def test_fig3b_wide_area(benchmark, deployment):
    results = run_once(benchmark, lambda: run_fig3b(deployment))
    print_fig3b(results)

    cards = {result.cardinality for result in results.values()}
    assert len(cards) == 1  # every run computes the same join

    for condition in ("both_slow", "inner_slow", "outer_slow"):
        dpj = results[("double_pipelined", condition)]
        hybrid = results[("hybrid_hash", condition)]
        # Shape 1: DPJ produces tuples no later than hybrid hash, and much
        # earlier whenever the inner (build) input is the slow one.
        assert dpj.time_to_first_tuple_ms <= hybrid.time_to_first_tuple_ms
        if condition in ("both_slow", "inner_slow"):
            assert dpj.time_to_first_tuple_ms < hybrid.time_to_first_tuple_ms / 2
        # Shape 2: DPJ completes no later than hybrid hash.
        assert dpj.completion_time_ms <= hybrid.completion_time_ms * 1.05

    # Shape 3: DPJ is symmetric — "both slow" and "inner slow" behave alike
    # when the outer is the larger input (its transfer dominates).
    dpj_both = results[("double_pipelined", "both_slow")]
    dpj_outer = results[("double_pipelined", "outer_slow")]
    assert dpj_outer.completion_time_ms == pytest.approx(dpj_both.completion_time_ms, rel=0.1)

    # Shape 4: hybrid hash is hurt far more by a slow inner than the DPJ is.
    hybrid_inner = results[("hybrid_hash", "inner_slow")]
    dpj_inner = results[("double_pipelined", "inner_slow")]
    assert hybrid_inner.time_to_first_tuple_ms > dpj_inner.time_to_first_tuple_ms * 5
