"""Columnar (struct-of-arrays) batches vs. row-backed batches (wall clock).

PR 1's batch protocol amortized per-row *driver* overhead but still moved
``list[Row]`` of boxed per-tuple objects between operators.  This benchmark
measures what the columnar batch representation buys on top: the Figure-3a
workload (``lineitem ⋈ supplier ⋈ orders``, both join implementations and
both build assignments) is executed through the same ``next_batch`` protocol
twice — once with columnar batches (the default) and once with the flag
forcing row-backed batches (PR 1's drive) — plus once tuple-at-a-time for
reference.  All three drives compute identical result multisets and
*identical* virtual-time accounting (the columnar paths charge the clock
exactly like the row paths); the difference is pure Python object overhead:
per-row ``Row`` construction at scan boundaries, per-row key extraction in
join probes, and per-match output row construction, all of which the
columnar paths replace with C-speed transposes, column-slice key zips, and
per-column gathers.

The double pipelined join is inherently tuple-driven (its hash tables store
rows and every arriving tuple probes immediately), so its plan is expected
to be roughly neutral; the acceptance bar is a ≥1.3× aggregate wall-clock
improvement across the workload, carried by the hybrid-hash plans.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import format_table
from repro.engine.iterators import DEFAULT_BATCH_SIZE
from repro.plan.physical import JoinImplementation, join, wrapper_scan

from bench_support import run_once, scale_mb

TABLES = ["lineitem", "orders", "supplier"]

#: Wall-clock measurement repetitions per (plan, drive mode); the fastest run
#: is kept, which filters scheduler noise out of a deterministic computation.
REPEATS = 3


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(scale_mb(4.0), TABLES, seed=42)


def fig3a_plan(first_join_build: str, implementation: JoinImplementation):
    """One Figure-3a plan: (lineitem ⋈ supplier) ⋈ orders (see bench_fig3a)."""
    lineitem = wrapper_scan("lineitem")
    supplier = wrapper_scan("supplier")
    if first_join_build == "supplier":
        first = join(
            lineitem, supplier, ["lineitem.l_suppkey"], ["supplier.s_suppkey"],
            implementation=implementation,
        )
    else:
        first = join(
            supplier, lineitem, ["supplier.s_suppkey"], ["lineitem.l_suppkey"],
            implementation=implementation,
        )
    return join(
        first, wrapper_scan("orders"), ["lineitem.l_orderkey"], ["orders.o_orderkey"],
        implementation=implementation,
    )


PLANS = {
    "dpj": ("supplier", JoinImplementation.DOUBLE_PIPELINED),
    "hybrid_good": ("supplier", JoinImplementation.HYBRID_HASH),
    "hybrid_bad": ("lineitem", JoinImplementation.HYBRID_HASH),
}

#: (drive label, batch_size, columnar flag)
DRIVES = [
    ("tuple", None, False),
    ("rows", DEFAULT_BATCH_SIZE, False),
    ("columnar", DEFAULT_BATCH_SIZE, True),
]


def time_plan(deployment, label: str, batch_size, columnar: bool):
    """Fastest-of-N wall-clock run of one plan under one drive mode."""
    build, implementation = PLANS[label]
    best, cardinality, completion = float("inf"), 0, 0.0
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = run_operator_tree(
            fig3a_plan(build, implementation),
            deployment.catalog,
            result_name=f"columnar_bench_{label}",
            batch_size=batch_size,
            columnar=columnar,
        )
        best = min(best, time.perf_counter() - started)
        cardinality = result.cardinality
        completion = result.completion_time_ms
    return best, cardinality, completion


def run_comparison(deployment):
    measurements = {}
    for label in PLANS:
        per_drive = {}
        for drive, batch_size, columnar in DRIVES:
            seconds, cardinality, completion = time_plan(
                deployment, label, batch_size, columnar
            )
            per_drive[drive] = {
                "s": seconds,
                "rows": cardinality,
                "virtual_ms": completion,
            }
        cards = {d: m["rows"] for d, m in per_drive.items()}
        assert len(set(cards.values())) == 1, f"{label}: drive modes disagree: {cards}"
        # The two batch drives differ only in representation; their virtual
        # clocks must agree exactly (the tuple drive may differ by a few
        # percent — batching coarsens the CPU/wait interleave).
        assert per_drive["rows"]["virtual_ms"] == pytest.approx(
            per_drive["columnar"]["virtual_ms"], rel=1e-9
        ), f"{label}: columnar drive changed the virtual-time accounting"
        measurements[label] = per_drive
    return measurements


def print_report(measurements) -> None:
    rows = []
    for label, per_drive in measurements.items():
        rows.append(
            [
                label,
                per_drive["columnar"]["rows"],
                round(per_drive["tuple"]["s"] * 1000, 1),
                round(per_drive["rows"]["s"] * 1000, 1),
                round(per_drive["columnar"]["s"] * 1000, 1),
                f"{per_drive['rows']['s'] / per_drive['columnar']['s']:.2f}x",
                f"{per_drive['tuple']['s'] / per_drive['columnar']['s']:.2f}x",
            ]
        )
    total = {d: sum(m[d]["s"] for m in measurements.values()) for d, _, _ in DRIVES}
    rows.append(
        [
            "workload total", "",
            round(total["tuple"] * 1000, 1),
            round(total["rows"] * 1000, 1),
            round(total["columnar"] * 1000, 1),
            f"{total['rows'] / total['columnar']:.2f}x",
            f"{total['tuple'] / total['columnar']:.2f}x",
        ]
    )
    print()
    print("Columnar vs row-backed batches — Fig-3a workload (wall clock)")
    print(
        format_table(
            [
                "plan", "rows", "tuple (ms)", "row-batch (ms)", "columnar (ms)",
                "col vs rows", "col vs tuple",
            ],
            rows,
        )
    )


def test_columnar_pipeline_speedup(benchmark, deployment):
    measurements = run_once(benchmark, lambda: run_comparison(deployment))
    print_report(measurements)

    total_rows = sum(m["rows"]["s"] for m in measurements.values())
    total_columnar = sum(m["columnar"]["s"] for m in measurements.values())
    aggregate = total_rows / total_columnar
    assert aggregate >= 1.3, (
        f"columnar drive only {aggregate:.2f}x faster than the row-batch "
        f"baseline across the workload (need >= 1.3x)"
    )
    for label, per_drive in measurements.items():
        speedup = per_drive["rows"]["s"] / per_drive["columnar"]["s"]
        _, implementation = PLANS[label]
        if implementation == JoinImplementation.HYBRID_HASH:
            # The hybrid plans carry the win: scans, probes, and outputs all
            # stay columnar end to end.
            assert speedup >= 1.15, f"{label}: speedup {speedup:.2f}x below floor"
        else:
            # The DPJ boxes rows regardless; columnar must not regress it.
            assert speedup >= 0.85, f"{label}: columnar regressed DPJ {speedup:.2f}x"
