"""Ablation A2 — cost of the event/rule machinery and benefit of rescheduling.

Not a paper figure: this ablation measures (a) the overhead the
event-condition-action machinery adds per tuple when many rules are
registered, and (b) the benefit of the reschedule-on-timeout rules (the
query-scrambling behaviour of Section 3.1.2) when one source suffers a long
initial delay.

Expected shape: rule-processing overhead is a small constant per event, and
rescheduling turns a query that would otherwise fail (or wait out the full
delay before doing any work) into one that does useful work first and
finishes successfully.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import build_deployment
from repro.bench.reporting import format_table
from repro.core.interleaving import InterleavedExecutionDriver
from repro.datagen.workload import TPCDJoinGraph
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.executor import QueryExecutor
from repro.network.profiles import lan, slow_start
from repro.optimizer.optimizer import Optimizer, OptimizerConfig, PlanningStrategy
from repro.plan.fragments import Fragment, QueryPlan
from repro.plan.physical import join, wrapper_scan
from repro.plan.rules import Compare, EventType, Rule, constant, event_value, replan
from repro.query.reformulation import Reformulator

from bench_support import run_once, scale_mb

TABLES = ["region", "nation", "supplier", "customer", "orders"]


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(scale_mb(1.5), TABLES, seed=42)


# -- part (a): event/rule overhead --------------------------------------------------------


def orders_customer_fragment() -> Fragment:
    root = join(
        wrapper_scan("orders", operator_id="scan_orders"),
        wrapper_scan("customer", operator_id="scan_customer"),
        ["orders.o_custkey"],
        ["customer.c_custkey"],
        operator_id="join_oc",
    )
    return Fragment(fragment_id="frag_oc", root=root, result_name="oc_result")


def run_rule_overhead(deployment, rule_count: int):
    """Execute the same fragment with ``rule_count`` extra (never-firing) rules."""
    fragment = orders_customer_fragment()
    rules = [
        Rule(
            name=f"probe-{i}",
            owner="frag_oc",
            event_type=EventType.THRESHOLD,
            subject="scan_orders",
            condition=Compare(event_value(), ">=", constant(10**9)),
            actions=[replan()],
        )
        for i in range(rule_count)
    ]
    plan = QueryPlan(query_name=f"overhead_{rule_count}", fragments=[fragment], global_rules=rules)
    context = ExecutionContext(deployment.catalog, query_name=plan.query_name)
    started = time.perf_counter()
    outcome = QueryExecutor(context).execute(plan)
    wall_s = time.perf_counter() - started
    assert outcome.completed
    return {
        "rules": rule_count,
        "events": context.events.total_enqueued,
        "wall_s": wall_s,
        "virtual_ms": context.clock.now,
        "cardinality": outcome.answer.cardinality if outcome.answer else 0,
    }


# -- part (b): rescheduling benefit --------------------------------------------------------------


def run_rescheduling(deployment, enable_rescheduling: bool):
    """Run a three-table join whose supplier source stalls for a long time."""
    deployment.set_all_profiles(lan())
    deployment.set_profile("supplier", slow_start(delay_ms=4_000.0))
    graph = TPCDJoinGraph()
    query = graph.query_for(
        frozenset({"supplier", "nation", "customer"}),
        name=f"scramble_{'on' if enable_rescheduling else 'off'}",
    )
    optimizer = Optimizer(
        deployment.catalog,
        OptimizerConfig(reschedule_on_timeout=enable_rescheduling),
    )
    driver = InterleavedExecutionDriver(
        deployment.catalog,
        optimizer,
        engine_config=EngineConfig(default_timeout_ms=1_500.0),
    )
    reformulated = Reformulator(deployment.catalog).reformulate(query)
    result = driver.run(reformulated, strategy=PlanningStrategy.MATERIALIZE)
    deployment.set_all_profiles(lan())
    return result


def run_ablation(deployment):
    overhead = [run_rule_overhead(deployment, count) for count in (0, 50, 500)]
    scrambling = {
        "with_rescheduling": run_rescheduling(deployment, True),
        "without_rescheduling": run_rescheduling(deployment, False),
    }
    return overhead, scrambling


def print_ablation(overhead, scrambling) -> None:
    print()
    print("Ablation A2a — event-handler overhead (same join, growing rule set)")
    print(
        format_table(
            ["registered rules", "events processed", "wall seconds", "virtual ms"],
            [
                [entry["rules"], entry["events"], round(entry["wall_s"], 3), round(entry["virtual_ms"], 1)]
                for entry in overhead
            ],
        )
    )
    print()
    print("Ablation A2b — rescheduling on a stalled source (query scrambling)")
    rows = []
    for label, result in scrambling.items():
        rows.append(
            [
                label,
                result.status.value,
                result.cardinality,
                result.reschedules,
                round(result.total_time_ms, 1),
            ]
        )
    print(format_table(["configuration", "status", "tuples", "reschedules", "completion (ms)"], rows))


def test_rule_machinery_ablation(benchmark, deployment):
    overhead, scrambling = run_once(benchmark, lambda: run_ablation(deployment))
    print_ablation(overhead, scrambling)

    # (a) Virtual time is unaffected by inert rules, and the wall-clock cost of
    # 500 extra rules stays within a small factor of the rule-free run.
    baseline = overhead[0]
    heavy = overhead[-1]
    assert heavy["cardinality"] == baseline["cardinality"]
    assert heavy["virtual_ms"] == pytest.approx(baseline["virtual_ms"], rel=0.01)
    assert heavy["wall_s"] < baseline["wall_s"] * 5 + 0.5

    # (b) With rescheduling rules the stalled query finishes; the run without
    # them either fails or cannot finish sooner.
    with_rules = scrambling["with_rescheduling"]
    without_rules = scrambling["without_rescheduling"]
    assert with_rules.succeeded
    assert with_rules.reschedules >= 1
    if without_rules.succeeded:
        assert with_rules.total_time_ms <= without_rules.total_time_ms * 1.05
