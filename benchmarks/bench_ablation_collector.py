"""Ablation A1 — dynamic collector policies over overlapping sources.

Not a paper figure: this ablation quantifies the design choice the paper
motivates in Section 4.1 — a policy-driven collector vs a plain union — on a
bibliographic-style workload with a primary source, a full mirror, and a
partial mirror, under (a) healthy sources and (b) a dead primary.

Reported for each policy: completion time, number of sources contacted, and
result completeness.  The expected shape: *contact-all* always reads every
mirror (wasted work when sources are healthy); *primary-with-fallback*
contacts one source when healthy and recovers via the mirror when the
primary is dead; a plain union with no policy cannot recover at all.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.builder import build_operator
from repro.network.profiles import dead, lan, wide_area
from repro.network.source import DataSource, make_mirror
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.tuples import Row
from repro.plan.physical import collector, union_, wrapper_scan

from bench_support import run_once

CITATION_COUNT = 2_000


def build_catalog(primary_dead: bool) -> DataSourceCatalog:
    schema = Schema.of("key:int", "title:str", "venue:str")
    rows = [Row(schema, (i, f"paper-{i}", f"venue-{i % 40}")) for i in range(CITATION_COUNT)]
    citations = Relation("citation", schema, rows)
    catalog = DataSourceCatalog()
    primary = DataSource("dblp", citations, dead() if primary_dead else lan())
    catalog.register_source(primary)
    catalog.register_source(make_mirror(primary, "dblp-mirror", wide_area()))
    catalog.register_source(
        make_mirror(primary, "dblp-partial", lan(), coverage=0.7, seed=7)
    )
    catalog.overlap.set_mirrors("dblp", "dblp-mirror")
    catalog.overlap.set_overlap("dblp", "dblp-partial", 0.7)
    return catalog


def collector_spec(policy: str):
    children = [
        wrapper_scan("dblp", operator_id="scan_dblp"),
        wrapper_scan("dblp-mirror", operator_id="scan_mirror"),
        wrapper_scan("dblp-partial", operator_id="scan_partial"),
    ]
    if policy == "plain_union":
        return union_(children)
    spec = collector(children, operator_id="coll", policy_name=policy)
    spec.params["dedup_keys"] = ["citation.key"]
    if policy == "primary_with_fallback":
        spec.params["initially_active"] = ["scan_dblp"]
    elif policy == "race_two":
        spec.params["initially_active"] = ["scan_dblp", "scan_mirror"]
    return spec  # contact_all keeps the default (all children active)


def run_policy(policy: str, primary_dead: bool):
    catalog = build_catalog(primary_dead)
    context = ExecutionContext(
        catalog, config=EngineConfig(default_timeout_ms=2_000.0), query_name=policy
    )
    root = build_operator(collector_spec(policy), context)
    root.open()
    produced = 0
    distinct = set()
    failed_with = None
    try:
        for row in root.iterate():
            produced += 1
            distinct.add(row["key"])
    except Exception as exc:
        # A plain union with a dead child cannot finish; report the partial
        # results together with what cut the run short.
        failed_with = type(exc).__name__
    root.close()
    contacted = sum(
        1
        for name in ("dblp", "dblp-mirror", "dblp-partial")
        if catalog.source(name).stats.connections_opened > 0
    )
    return {
        "policy": policy,
        "primary_dead": primary_dead,
        "tuples": produced,
        "distinct": len(distinct),
        "sources_contacted": contacted,
        "completion_ms": context.clock.now,
        "failed_with": failed_with,
    }


POLICIES = ["plain_union", "contact_all", "race_two", "primary_with_fallback"]


def run_ablation():
    results = []
    for primary_dead in (False, True):
        for policy in POLICIES:
            results.append(run_policy(policy, primary_dead))
    return results


def print_ablation(results) -> None:
    rows = [
        [
            "dead" if entry["primary_dead"] else "healthy",
            entry["policy"],
            entry["distinct"],
            entry["sources_contacted"],
            round(entry["completion_ms"], 1),
        ]
        for entry in results
    ]
    print()
    print("Ablation A1 — collector policies over overlapping bibliography sources")
    print(
        format_table(
            ["primary", "policy", "distinct results", "sources contacted", "completion (ms)"],
            rows,
        )
    )


def test_collector_policy_ablation(benchmark):
    results = run_once(benchmark, run_ablation)
    print_ablation(results)
    by_key = {(entry["primary_dead"], entry["policy"]): entry for entry in results}

    healthy_fallback = by_key[(False, "primary_with_fallback")]
    healthy_all = by_key[(False, "contact_all")]
    dead_fallback = by_key[(True, "primary_with_fallback")]
    dead_union = by_key[(True, "plain_union")]

    # Healthy sources: the fallback policy touches only the primary but still
    # returns the complete result; contact-all touches every mirror.
    assert healthy_fallback.get("distinct") == CITATION_COUNT
    assert healthy_fallback["sources_contacted"] == 1
    assert healthy_all["sources_contacted"] == 3

    # Dead primary: the collector recovers the full result through the mirror;
    # a plain union has no recovery mechanism.
    assert dead_fallback["distinct"] == CITATION_COUNT
    assert dead_union["distinct"] < CITATION_COUNT

    # The race policy completes no later than contacting everything.
    assert by_key[(False, "race_two")]["completion_ms"] <= healthy_all["completion_ms"] * 1.05
