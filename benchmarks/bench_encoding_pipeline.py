"""Encoded columns vs the PR-3 plain-columnar layer (wall clock + spill bytes).

The §4.2.3 overflow workload re-keyed on *strings*: ``part ⋈ partsupp`` where
the join key is the stringified part key (a Fig-3a-shaped plan whose memory
behaviour is dominated by string storage), with memory allotments sized as a
fraction of the **plain** columnar join state so the plain run spills heavily.
Each plan — the double pipelined join under both overflow strategies plus a
memory-constrained hybrid hash join — runs under the three drive modes, twice:

* **encoded** (``EngineConfig(encoded_columns=True)``, the engine default) —
  string columns are dictionary-coded in scan batches, hash-table partitions,
  and spill chunks; arrival stamps run-length encode; budgets and spill files
  charge the encoded footprint.  More rows fit the same allotment, overflow
  strikes later, and what does spill moves as 8-byte codes.
* **plain** (``encoded_columns=False``) — PR 3's columnar layer, the
  baseline.

Encoding lives in the storage layer, so within one encoding the two batch
drives must agree *exactly* on results, overflow events, and spill I/O (the
tuple drive holds to the documented interleaving tolerance) — all asserted.
The acceptance bars, on the string-keyed overflow workload under the
columnar drive: encoded ≥ 1.2× wall clock and ≥ 1.5× fewer spilled bytes
than plain.  Each run appends a trajectory record to ``BENCH_encoding.json``
at the repo root (per-plan ratios + overflow counts) so performance history
accumulates across commits.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import format_table
from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import EngineConfig
from repro.engine.iterators import DEFAULT_BATCH_SIZE
from repro.network.profiles import lan
from repro.network.source import DataSource
from repro.plan.physical import JoinImplementation, OverflowMethod, join, wrapper_scan
from repro.storage.relation import Relation
from repro.storage.schema import Schema

from bench_support import run_once, scale_mb

#: Memory allotment as a fraction of the *plain* columnar join state: low
#: enough that every plain run spills heavily, high enough that the encoded
#: run (which needs roughly half the bytes plus its dictionaries) keeps most
#: — on the DPJ plans all — of its rows resident.  This is the paper-aligned
#: payoff regime: encoding moves the overflow point, so the same allotment
#: that forces §4.2.3 overflow resolution under plain storage runs (nearly)
#: memory-resident encoded.
MEMORY_FRACTION = 0.35

#: Spill I/O charged at spinning-disk rates (the Figure-4 configuration).
DISK_READ_MS, DISK_WRITE_MS = 1.0, 1.2

#: Wall-clock measurement repetitions per cell; fastest run kept.
REPEATS = 5

#: (drive label, batch_size, columnar flag)
DRIVES = [
    ("tuple", None, False),
    ("rows", DEFAULT_BATCH_SIZE, False),
    ("columnar", DEFAULT_BATCH_SIZE, True),
]

ENCODINGS = ["plain", "encoded"]

PLAN_LABELS = ["dpj_left", "dpj_symmetric", "hybrid"]

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_encoding.json"

#: Below this data scale the workload is a few milliseconds of fixed
#: overhead, so the wall-clock bar only applies at or above it (same caveat
#: as ``bench_spill_pipeline``); the spilled-bytes bar is scale-independent
#: and always applies.
STRICT_SCALE_MB = 2.0

PART_S_SCHEMA = Schema.of(
    "p_partkey:str", "p_brand:str", "p_size:int", "p_retailprice:float"
)
PARTSUPP_S_SCHEMA = Schema.of(
    "ps_partkey:str", "ps_suppkey:int", "ps_supplycost:float"
)


def string_key(value: int) -> str:
    return f"PK{value:08d}"


@pytest.fixture(scope="module")
def deployment():
    """TPC-D part/partsupp re-published with stringified join keys."""
    base = build_deployment(scale_mb(3.0), ["part", "partsupp"], seed=42)
    part_rows = [
        (string_key(r["p_partkey"]), r["p_brand"], r["p_size"], r["p_retailprice"])
        for r in base.database["part"]
    ]
    partsupp_rows = [
        (string_key(r["ps_partkey"]), r["ps_suppkey"], r["ps_supplycost"])
        for r in base.database["partsupp"]
    ]
    catalog = DataSourceCatalog()
    catalog.register_source(
        DataSource("part_s", Relation.from_values("part_s", PART_S_SCHEMA, part_rows), lan())
    )
    catalog.register_source(
        DataSource(
            "partsupp_s",
            Relation.from_values("partsupp_s", PARTSUPP_S_SCHEMA, partsupp_rows),
            lan(),
        )
    )
    return catalog


def join_state_bytes(catalog: DataSourceCatalog) -> int:
    """*Plain* columnar bytes needed to hold both hash tables resident."""
    total = 0
    for name in ("part_s", "partsupp_s"):
        source = catalog.source(name)
        total += source.cardinality * source.exported_schema.columnar_row_size
    return total


def spill_plan(label: str, memory_bytes: int):
    if label == "hybrid":
        return join(
            wrapper_scan("part_s"),
            wrapper_scan("partsupp_s"),
            ["part_s.p_partkey"],
            ["partsupp_s.ps_partkey"],
            implementation=JoinImplementation.HYBRID_HASH,
            memory_limit_bytes=memory_bytes,
            operator_id="enc_join",
        )
    method = (
        OverflowMethod.SYMMETRIC_FLUSH
        if label == "dpj_symmetric"
        else OverflowMethod.LEFT_FLUSH
    )
    return join(
        wrapper_scan("part_s"),
        wrapper_scan("partsupp_s"),
        ["part_s.p_partkey"],
        ["partsupp_s.ps_partkey"],
        implementation=JoinImplementation.DOUBLE_PIPELINED,
        overflow_method=method,
        memory_limit_bytes=memory_bytes,
        operator_id="enc_join",
    )


def run_workload(catalog):
    """All plans × encodings × drives; fastest-of-N wall clock per cell.

    The two encodings' repetitions are *interleaved* (plain, encoded,
    plain, encoded, …) so slow drift of the machine — CPU frequency,
    neighbours — hits both sides of the speedup ratio equally instead of
    whichever encoding happened to be measured second.
    """
    memory_bytes = int(join_state_bytes(catalog) * MEMORY_FRACTION)
    configs = {
        encoding: EngineConfig(
            disk_page_read_ms=DISK_READ_MS,
            disk_page_write_ms=DISK_WRITE_MS,
            encoded_columns=(encoding == "encoded"),
        )
        for encoding in ENCODINGS
    }
    measurements: dict[str, dict[str, dict[str, dict]]] = {}
    for label in PLAN_LABELS:
        per_encoding: dict[str, dict[str, dict]] = {
            encoding: {} for encoding in ENCODINGS
        }
        for drive, batch_size, columnar in DRIVES:
            best = {encoding: float("inf") for encoding in ENCODINGS}
            cells: dict[str, dict] = {}
            for _ in range(REPEATS):
                for encoding in ENCODINGS:
                    gc.collect()  # keep collector pauses out of the timing
                    started = time.perf_counter()
                    result = run_operator_tree(
                        spill_plan(label, memory_bytes),
                        catalog,
                        result_name=f"enc_{label}_{encoding}_{drive}",
                        engine_config=configs[encoding],
                        batch_size=batch_size,
                        columnar=columnar,
                    )
                    elapsed = time.perf_counter() - started
                    if elapsed < best[encoding]:
                        best[encoding] = elapsed
                    disk = result.context.disk.stats
                    cells[encoding] = {
                        "rows": result.cardinality,
                        "virtual_ms": result.completion_time_ms,
                        "overflow_events": result.context.stats.operator(
                            "enc_join"
                        ).overflow_events,
                        "tuples_spilled": disk.tuples_written,
                        "bytes_spilled": disk.bytes_written,
                        "bytes_reread": disk.bytes_read,
                    }
            for encoding in ENCODINGS:
                cell = cells[encoding]
                cell["s"] = best[encoding]
                per_encoding[encoding][drive] = cell
        measurements[label] = per_encoding
    return measurements


def assert_parity(measurements) -> None:
    """Results must not depend on drive or encoding; I/O not on the drive.

    All six (encoding, drive) cells of one plan produce the same result
    cardinality (multisets are held equal by ``tests/test_batch_parity.py``).
    Within one encoding the two batch drives share the storage layer
    bit for bit, so overflow events and spill bytes agree exactly; the
    tuple drive's counts may sit within the documented interleaving
    tolerance (run lookahead shifts which tuples arrive after their bucket
    flushed).
    """
    for label, per_encoding in measurements.items():
        cards = {
            (encoding, drive): cell["rows"]
            for encoding, per_drive in per_encoding.items()
            for drive, cell in per_drive.items()
        }
        assert len(set(cards.values())) == 1, f"{label}: results differ: {cards}"
        for encoding, per_drive in per_encoding.items():
            for metric in ("overflow_events", "tuples_spilled", "bytes_spilled", "bytes_reread"):
                assert per_drive["rows"][metric] == per_drive["columnar"][metric], (
                    f"{label}/{encoding}: {metric} differs between the batch drives"
                )
            assert per_drive["rows"]["virtual_ms"] == pytest.approx(
                per_drive["columnar"]["virtual_ms"], rel=1e-9
            ), f"{label}/{encoding}: encoding changed the drives' virtual-time parity"
            if scale_mb(3.0) >= STRICT_SCALE_MB:
                batch_events = per_drive["rows"]["overflow_events"]
                tuple_events = per_drive["tuple"]["overflow_events"]
                assert abs(tuple_events - batch_events) <= max(2, batch_events // 10), (
                    f"{label}/{encoding}: tuple-drive overflow events {tuple_events} "
                    f"too far from batch drives' {batch_events}"
                )
        assert per_encoding["plain"]["rows"]["overflow_events"] > 0, (
            f"{label}: workload was meant to force spills in plain mode"
        )
        # Encoding delays overflow: the same allotment produces fewer
        # (often zero) overflow events in encoded bytes.  Only asserted at
        # realistic scales — on toy data the table dictionaries are a large
        # *fixed* fraction of the tiny allotment, so the encoded run can
        # flush smaller buckets more often.
        if scale_mb(3.0) >= STRICT_SCALE_MB:
            assert (
                per_encoding["encoded"]["rows"]["overflow_events"]
                < per_encoding["plain"]["rows"]["overflow_events"]
            ), f"{label}: encoding did not delay overflow"


def print_report(measurements) -> None:
    rows = []
    for label, per_encoding in measurements.items():
        plain = per_encoding["plain"]["columnar"]
        encoded = per_encoding["encoded"]["columnar"]
        rows.append(
            [
                label,
                encoded["rows"],
                f"{plain['overflow_events']}/{encoded['overflow_events']}",
                plain["bytes_spilled"],
                encoded["bytes_spilled"],
                f"{plain['bytes_spilled'] / max(1, encoded['bytes_spilled']):.2f}x",
                round(plain["s"] * 1000, 1),
                round(encoded["s"] * 1000, 1),
                f"{plain['s'] / encoded['s']:.2f}x",
            ]
        )
    total_plain = sum(m["plain"]["columnar"]["s"] for m in measurements.values())
    total_encoded = sum(m["encoded"]["columnar"]["s"] for m in measurements.values())
    rows.append(
        [
            "workload total", "", "", "", "", "",
            round(total_plain * 1000, 1),
            round(total_encoded * 1000, 1),
            f"{total_plain / total_encoded:.2f}x",
        ]
    )
    print()
    print("Encoded vs plain columnar — string-keyed part x partsupp overflow workload")
    print(
        format_table(
            [
                "plan", "rows", "overflows p/e", "spilled B plain", "spilled B enc",
                "spill ratio", "plain (ms)", "encoded (ms)", "enc speedup",
            ],
            rows,
        )
    )


def append_trajectory(measurements, aggregate: float) -> None:
    """Append one record to ``BENCH_encoding.json`` (perf history artifact)."""
    record = {
        "benchmark": "bench_encoding_pipeline",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale_mb": scale_mb(3.0),
        "aggregate_speedup_encoded_vs_plain": round(aggregate, 4),
        "plans": {
            label: {
                "speedup_encoded_vs_plain": round(
                    per_encoding["plain"]["columnar"]["s"]
                    / per_encoding["encoded"]["columnar"]["s"],
                    4,
                ),
                "spilled_bytes_ratio_plain_vs_encoded": round(
                    per_encoding["plain"]["columnar"]["bytes_spilled"]
                    / max(1, per_encoding["encoded"]["columnar"]["bytes_spilled"]),
                    4,
                ),
                "overflow_events_plain": per_encoding["plain"]["columnar"]["overflow_events"],
                "overflow_events_encoded": per_encoding["encoded"]["columnar"]["overflow_events"],
                "bytes_spilled_encoded": per_encoding["encoded"]["columnar"]["bytes_spilled"],
                "virtual_ms_encoded": round(
                    per_encoding["encoded"]["columnar"]["virtual_ms"], 3
                ),
            }
            for label, per_encoding in measurements.items()
        },
    }
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_encoding_pipeline_speedup(benchmark, deployment):
    measurements = run_once(benchmark, lambda: run_workload(deployment))
    print_report(measurements)
    assert_parity(measurements)

    # Spilled-bytes bar: scale-independent, per plan.
    for label, per_encoding in measurements.items():
        plain_bytes = per_encoding["plain"]["columnar"]["bytes_spilled"]
        encoded_bytes = per_encoding["encoded"]["columnar"]["bytes_spilled"]
        ratio = plain_bytes / max(1, encoded_bytes)
        assert ratio >= 1.5, (
            f"{label}: encoded spill only {ratio:.2f}x smaller than plain "
            f"({encoded_bytes}B vs {plain_bytes}B; need >= 1.5x)"
        )

    total_plain = sum(m["plain"]["columnar"]["s"] for m in measurements.values())
    total_encoded = sum(m["encoded"]["columnar"]["s"] for m in measurements.values())
    aggregate = total_plain / total_encoded
    append_trajectory(measurements, aggregate)
    # Wall-clock bar: the string-keyed §4.2.3 overflow plan (the DPJ under
    # Incremental Left Flush — the plan whose plain run pays the full
    # overflow-resolution cost) must run ≥ 1.2× faster encoded; the whole
    # workload must never regress.
    headline = measurements["dpj_left"]
    speedup = headline["plain"]["columnar"]["s"] / headline["encoded"]["columnar"]["s"]
    if scale_mb(3.0) >= STRICT_SCALE_MB:
        assert speedup >= 1.2, (
            f"encoded storage only {speedup:.2f}x faster than plain columnar "
            f"on the string-keyed overflow plan (need >= 1.2x)"
        )
        assert aggregate >= 1.0, (
            f"encoded storage regressed below plain columnar across the "
            f"workload ({aggregate:.2f}x)"
        )
    else:
        # Toy scales measure fixed overheads (and the dictionaries are a
        # large fixed fraction of the tiny allotments); only guard against
        # gross regressions — the spilled-bytes bar above still applies.
        assert aggregate >= 0.7, (
            f"encoded storage regressed far below plain columnar "
            f"({aggregate:.2f}x) even at toy scale"
        )
