"""Columnar spill pipeline vs the row-spill baseline (wall clock).

The §4.2.3 overflow workload: ``part ⋈ partsupp`` with memory allotments far
below the join state, so every plan spills — the double pipelined join under
both overflow strategies (Incremental Left Flush and Incremental Symmetric
Flush) plus a memory-constrained hybrid hash join whose probe phase spills
outer tuples of flushed buckets.

Each plan runs under the three drive modes.  The hash tables, memory
accounting, and spill files are columnar in every mode (so overflow events,
spilled-tuple counts, and the virtual clock agree exactly across the batch
drives — all asserted); what differs is how tuples move around them:

* **columnar** — runs/builds arrive as struct-of-arrays batches, arriving
  tuples probe and insert by position, spills move column values, and the
  final overflow resolution joins spill chunks positionally.  No ``Row``
  objects on the hash-table or spill hot paths.
* **rows** (the row-spill baseline) — every tuple is boxed at the scan, fed
  to the hash tables row by row, and overflow resolution re-boxes what it
  reads back from disk.
* **tuple** — the classic open/next/close drive, for reference.

The acceptance bar is a ≥1.3× aggregate wall-clock win for the columnar
drive over the row-spill baseline.  Each run also appends a trajectory
record to ``BENCH_spill.json`` at the repo root (per-plan ratios + overflow
counts) so performance history accumulates across commits.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import format_table
from repro.engine.context import EngineConfig
from repro.engine.iterators import DEFAULT_BATCH_SIZE
from repro.plan.physical import JoinImplementation, OverflowMethod, join, wrapper_scan

from bench_support import run_once, scale_mb

TABLES = ["part", "partsupp"]

#: Memory allotment as a fraction of the join state actually needed.
MEMORY_FRACTION = 1 / 3

#: Spill I/O charged at spinning-disk rates (the Figure-4 configuration).
#: Column *encoding* is pinned off: this benchmark isolates the drive-mode
#: effect (columnar vs row-spill) at the PR-3 plain-columnar storage layer;
#: the encoding effect at a fixed drive is measured by
#: ``bench_encoding_pipeline.py``.
DISK_CONFIG = EngineConfig(
    disk_page_read_ms=1.0, disk_page_write_ms=1.2, encoded_columns=False
)

#: Wall-clock measurement repetitions per (plan, drive); fastest run kept.
#: Five keeps the fastest-of estimate stable on noisy CI machines.
REPEATS = 5

#: (drive label, batch_size, columnar flag)
DRIVES = [
    ("tuple", None, False),
    ("rows", DEFAULT_BATCH_SIZE, False),
    ("columnar", DEFAULT_BATCH_SIZE, True),
]

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_spill.json"

#: Below this data scale the workload is a few milliseconds of fixed
#: overhead, so the wall-clock bar and the tuple-drive interleaving
#: tolerance only apply at or above it (same caveat as ``bench_fig3b``:
#: shape assertions hold at the default scale).
STRICT_SCALE_MB = 2.0


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(scale_mb(3.0), TABLES, seed=42)


def join_state_bytes(deployment) -> int:
    """Columnar bytes needed to hold both inputs' hash tables resident."""
    part = deployment.database["part"]
    partsupp = deployment.database["partsupp"]
    return (
        part.cardinality * part.schema.qualified(part.name).columnar_row_size
        + partsupp.cardinality * partsupp.schema.qualified(partsupp.name).columnar_row_size
    )


def spill_plan(label: str, memory_bytes: int):
    """One overflow-workload plan, with a stable operator id for stats."""
    if label == "hybrid":
        return join(
            wrapper_scan("part"),
            wrapper_scan("partsupp"),
            ["part.p_partkey"],
            ["partsupp.ps_partkey"],
            implementation=JoinImplementation.HYBRID_HASH,
            memory_limit_bytes=memory_bytes,
            operator_id="spill_join",
        )
    method = (
        OverflowMethod.SYMMETRIC_FLUSH
        if label == "dpj_symmetric"
        else OverflowMethod.LEFT_FLUSH
    )
    return join(
        wrapper_scan("part"),
        wrapper_scan("partsupp"),
        ["part.p_partkey"],
        ["partsupp.ps_partkey"],
        implementation=JoinImplementation.DOUBLE_PIPELINED,
        overflow_method=method,
        memory_limit_bytes=memory_bytes,
        operator_id="spill_join",
    )


PLAN_LABELS = ["dpj_left", "dpj_symmetric", "hybrid"]


def run_workload(deployment):
    """All plans under all drives; fastest-of-N wall clock per cell."""
    memory_bytes = int(join_state_bytes(deployment) * MEMORY_FRACTION)
    measurements: dict[str, dict[str, dict]] = {}
    for label in PLAN_LABELS:
        per_drive: dict[str, dict] = {}
        for drive, batch_size, columnar in DRIVES:
            best, cell = float("inf"), None
            for _ in range(REPEATS):
                started = time.perf_counter()
                result = run_operator_tree(
                    spill_plan(label, memory_bytes),
                    deployment.catalog,
                    result_name=f"spill_{label}_{drive}",
                    engine_config=DISK_CONFIG,
                    batch_size=batch_size,
                    columnar=columnar,
                )
                elapsed = time.perf_counter() - started
                if elapsed < best:
                    best = elapsed
                disk = result.context.disk.stats
                cell = {
                    "rows": result.cardinality,
                    "virtual_ms": result.completion_time_ms,
                    "overflow_events": result.context.stats.operator(
                        "spill_join"
                    ).overflow_events,
                    "tuples_spilled": disk.tuples_written,
                    "tuples_reread": disk.tuples_read,
                }
            cell["s"] = best
            per_drive[drive] = cell
        measurements[label] = per_drive
    return measurements


def assert_drive_parity(measurements) -> None:
    """Results and overflow behaviour must not depend on the drive.

    All three drives must produce the same result multiset (cardinality
    checked here, multisets in ``tests/test_batch_parity.py``) and the same
    number of overflow events.  The two batch drives differ only in data
    representation, so their spill I/O and virtual clocks must agree
    *exactly*; the tuple drive's spilled-tuple count may differ by a hair —
    run lookahead slightly shifts which tuples arrive after their bucket
    flushed — which is the documented cross-drive interleaving tolerance.
    """
    for label, per_drive in measurements.items():
        values = {drive: cell["rows"] for drive, cell in per_drive.items()}
        assert len(set(values.values())) == 1, f"{label}: results differ: {values}"
        for metric in ("overflow_events", "tuples_spilled", "tuples_reread"):
            assert per_drive["rows"][metric] == per_drive["columnar"][metric], (
                f"{label}: {metric} differ between the batch drives"
            )
        # The tuple drive consumes in a marginally different arrival order
        # (no run lookahead), so its overflow-event count may sit within the
        # documented cross-drive interleaving tolerance of the batch drives'.
        # At toy scales the relative skew grows (few buckets, few events), so
        # the bound only applies at the strict scale.
        if scale_mb(3.0) >= STRICT_SCALE_MB:
            batch_events = per_drive["rows"]["overflow_events"]
            tuple_events = per_drive["tuple"]["overflow_events"]
            assert abs(tuple_events - batch_events) <= max(2, batch_events // 10), (
                f"{label}: tuple-drive overflow events {tuple_events} too far "
                f"from batch drives' {batch_events}"
            )
        assert per_drive["rows"]["overflow_events"] > 0, (
            f"{label}: workload was meant to force spills"
        )
        assert per_drive["rows"]["virtual_ms"] == pytest.approx(
            per_drive["columnar"]["virtual_ms"], rel=1e-9
        ), f"{label}: columnar spill changed the virtual-time accounting"


def print_report(measurements) -> None:
    rows = []
    for label, per_drive in measurements.items():
        rows.append(
            [
                label,
                per_drive["columnar"]["rows"],
                per_drive["columnar"]["overflow_events"],
                per_drive["columnar"]["tuples_spilled"],
                round(per_drive["tuple"]["s"] * 1000, 1),
                round(per_drive["rows"]["s"] * 1000, 1),
                round(per_drive["columnar"]["s"] * 1000, 1),
                f"{per_drive['rows']['s'] / per_drive['columnar']['s']:.2f}x",
            ]
        )
    total = {d: sum(m[d]["s"] for m in measurements.values()) for d, _, _ in DRIVES}
    rows.append(
        [
            "workload total", "", "", "",
            round(total["tuple"] * 1000, 1),
            round(total["rows"] * 1000, 1),
            round(total["columnar"] * 1000, 1),
            f"{total['rows'] / total['columnar']:.2f}x",
        ]
    )
    print()
    print("Columnar spill vs row-spill baseline — part x partsupp at 1/3 memory")
    print(
        format_table(
            [
                "plan", "rows", "overflows", "spilled",
                "tuple (ms)", "row-spill (ms)", "columnar (ms)", "col vs rows",
            ],
            rows,
        )
    )


def append_trajectory(measurements, aggregate: float) -> None:
    """Append one record to ``BENCH_spill.json`` (perf history artifact)."""
    record = {
        "benchmark": "bench_spill_pipeline",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale_mb": scale_mb(3.0),
        "aggregate_speedup_columnar_vs_rows": round(aggregate, 4),
        "plans": {
            label: {
                "speedup_columnar_vs_rows": round(
                    per_drive["rows"]["s"] / per_drive["columnar"]["s"], 4
                ),
                "speedup_columnar_vs_tuple": round(
                    per_drive["tuple"]["s"] / per_drive["columnar"]["s"], 4
                ),
                "overflow_events": per_drive["columnar"]["overflow_events"],
                "tuples_spilled": per_drive["columnar"]["tuples_spilled"],
                "virtual_ms": round(per_drive["columnar"]["virtual_ms"], 3),
            }
            for label, per_drive in measurements.items()
        },
    }
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_spill_pipeline_speedup(benchmark, deployment):
    measurements = run_once(benchmark, lambda: run_workload(deployment))
    print_report(measurements)
    assert_drive_parity(measurements)

    total_rows = sum(m["rows"]["s"] for m in measurements.values())
    total_columnar = sum(m["columnar"]["s"] for m in measurements.values())
    aggregate = total_rows / total_columnar
    append_trajectory(measurements, aggregate)
    if scale_mb(3.0) >= STRICT_SCALE_MB:
        assert aggregate >= 1.3, (
            f"columnar spill drive only {aggregate:.2f}x faster than the "
            f"row-spill baseline across the overflow workload (need >= 1.3x)"
        )
    else:
        # Toy scales measure fixed overheads; the columnar drive must still
        # never lose to the row-spill baseline.
        assert aggregate >= 1.0, (
            f"columnar spill drive regressed below the row-spill baseline "
            f"({aggregate:.2f}x) even at toy scale"
        )
