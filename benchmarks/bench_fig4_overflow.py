"""Figure 4 — memory-overflow resolution in the double pipelined join.

Paper workload: ``part ⋈ partsupp``, which needs roughly 48 MB of join state,
executed with full memory (64 MB), 32 MB, and 16 MB, under the two overflow
strategies — Incremental Left Flush and Incremental Symmetric Flush.

Paper result (shape to reproduce): Left Flush stalls after the first overflow
(few tuples emerge while it drains the right input) and then streams; the
Symmetric Flush keeps producing tuples but its rate tapers off as more
buckets spill.  Overall running times of the two strategies are close, and
both still beat the hybrid hash join's time-to-first-tuple.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import format_table
from repro.engine.context import EngineConfig
from repro.plan.physical import JoinImplementation, OverflowMethod, join, wrapper_scan

from bench_support import run_once, scale_mb

TABLES = ["part", "partsupp"]

#: Memory settings, as fractions of the state the join actually needs,
#: mirroring the paper's 64 MB (fits) / 32 MB / 16 MB points for a 48 MB join.
MEMORY_FRACTIONS = {"fits": None, "two_thirds": 2 / 3, "one_third": 1 / 3}

#: Spill I/O is charged at spinning-disk rates for this experiment.
#: Column encoding is pinned off: the memory fractions are stated in plain
#: columnar bytes (the unit ``join_state_bytes`` computes), so the figure's
#: overflow points stay where the paper's experiment puts them.  The
#: encoding effect on this workload is measured by
#: ``bench_encoding_pipeline.py``.
DISK_CONFIG = EngineConfig(
    disk_page_read_ms=1.0, disk_page_write_ms=1.2, encoded_columns=False
)


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(scale_mb(3.0), TABLES, seed=42)


def join_state_bytes(deployment) -> int:
    """Approximate memory needed to hold both inputs' hash tables."""
    part = deployment.database["part"]
    partsupp = deployment.database["partsupp"]
    return part.cardinality * part.schema.tuple_size + partsupp.cardinality * partsupp.schema.tuple_size


def part_partsupp_plan(method: OverflowMethod, memory_bytes: int | None):
    return join(
        wrapper_scan("part"),
        wrapper_scan("partsupp"),
        ["part.p_partkey"],
        ["partsupp.ps_partkey"],
        implementation=JoinImplementation.DOUBLE_PIPELINED,
        overflow_method=method,
        memory_limit_bytes=memory_bytes,
    )


def run_fig4(deployment):
    """Run both strategies under each memory setting."""
    needed = join_state_bytes(deployment)
    results = {}
    for memory_label, fraction in MEMORY_FRACTIONS.items():
        memory_bytes = None if fraction is None else int(needed * fraction)
        for method in (OverflowMethod.LEFT_FLUSH, OverflowMethod.SYMMETRIC_FLUSH):
            if fraction is None and method == OverflowMethod.SYMMETRIC_FLUSH:
                continue  # with ample memory the strategy never engages
            key = (method.value, memory_label)
            results[key] = run_operator_tree(
                part_partsupp_plan(method, memory_bytes),
                deployment.catalog,
                result_name=f"fig4_{method.value}_{memory_label}",
                engine_config=DISK_CONFIG,
            )
    return results


def output_stall_ms(result) -> float:
    """Longest gap between consecutive output tuples (the Left Flush 'pause')."""
    times = result.timeline.times_ms
    return max((b - a for a, b in zip(times, times[1:])), default=0.0)


def print_fig4(results) -> None:
    rows = []
    for (method, memory_label), result in sorted(results.items()):
        rows.append(
            [
                method,
                memory_label,
                result.cardinality,
                round(result.time_to_first_tuple_ms or 0.0, 1),
                round(result.completion_time_ms, 1),
                round(output_stall_ms(result), 1),
                result.context.disk.stats.tuples_written,
            ]
        )
    print()
    print("Figure 4 — part x partsupp under memory pressure (virtual ms)")
    print(
        format_table(
            [
                "strategy",
                "memory",
                "tuples",
                "first tuple (ms)",
                "completion (ms)",
                "longest stall (ms)",
                "tuples spilled",
            ],
            rows,
        )
    )


def test_fig4_overflow_strategies(benchmark, deployment):
    results = run_once(benchmark, lambda: run_fig4(deployment))
    print_fig4(results)

    cards = {result.cardinality for result in results.values()}
    assert len(cards) == 1  # memory pressure never changes the answer

    fits = results[("left_flush", "fits")]
    for memory_label in ("two_thirds", "one_third"):
        left = results[("left_flush", memory_label)]
        symmetric = results[("symmetric_flush", memory_label)]

        # Shape 1: overflowing is visibly slower than fitting in memory.
        assert left.completion_time_ms > fits.completion_time_ms
        assert symmetric.completion_time_ms > fits.completion_time_ms

        # Shape 2: the two strategies' overall times are relatively close.
        ratio = left.completion_time_ms / symmetric.completion_time_ms
        assert 0.6 <= ratio <= 1.7

        # Shape 3: Left Flush shows the abrupt production pattern — its longest
        # output stall is at least as long as Symmetric Flush's.
        assert output_stall_ms(left) >= output_stall_ms(symmetric)

        # Shape 4: both spill to disk under pressure.
        assert left.context.disk.stats.tuples_written > 0
        assert symmetric.context.disk.stats.tuples_written > 0

    # Shape 5: less memory means more spilled tuples.
    assert (
        results[("left_flush", "one_third")].context.disk.stats.tuples_written
        > results[("left_flush", "two_thirds")].context.disk.stats.tuples_written
    )
