"""Figure 3a — double pipelined join vs hybrid hash join on the LAN.

Paper workload: the three-relation join ``lineitem ⋈ supplier ⋈ order`` on
the 50 MB TPC-D data set over a 10 Mbps LAN, comparing the double pipelined
join against the hybrid hash join under both inner/outer assignments.

Paper result (shape to reproduce): the DPJ has a *much* better time to first
tuple and a slightly better completion time; the hybrid join's performance
depends on which input is chosen as the inner (build) relation, while the
DPJ is insensitive to that choice.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import format_table, timeline_series
from repro.plan.physical import JoinImplementation, join, wrapper_scan

from bench_support import run_once, scale_mb

TABLES = ["lineitem", "orders", "supplier"]


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(scale_mb(4.0), TABLES, seed=42)


def lineitem_supplier_orders_plan(first_join_build: str, implementation: JoinImplementation):
    """(lineitem ⋈ supplier) ⋈ orders with the chosen build side for join 1.

    ``first_join_build`` names the relation loaded into the first join's hash
    table ("supplier" is the good choice, "lineitem" the bad one).  The outer
    relation of the second join is the first join's output; orders is built.
    """
    lineitem = wrapper_scan("lineitem")
    supplier = wrapper_scan("supplier")
    if first_join_build == "supplier":
        first = join(
            lineitem, supplier, ["lineitem.l_suppkey"], ["supplier.s_suppkey"],
            implementation=implementation,
        )
    else:
        first = join(
            supplier, lineitem, ["supplier.s_suppkey"], ["lineitem.l_suppkey"],
            implementation=implementation,
        )
    return join(
        first, wrapper_scan("orders"), ["lineitem.l_orderkey"], ["orders.o_orderkey"],
        implementation=implementation,
    )


def run_fig3a(deployment):
    """Run the three plans of Figure 3a and return per-plan measurements."""
    plans = {
        "double_pipelined": lineitem_supplier_orders_plan(
            "supplier", JoinImplementation.DOUBLE_PIPELINED
        ),
        "hybrid_(lineitem*supplier)*orders": lineitem_supplier_orders_plan(
            "supplier", JoinImplementation.HYBRID_HASH
        ),
        "hybrid_(supplier*lineitem)*orders": lineitem_supplier_orders_plan(
            "lineitem", JoinImplementation.HYBRID_HASH
        ),
    }
    results = {}
    for label, spec in plans.items():
        results[label] = run_operator_tree(spec, deployment.catalog, result_name=f"fig3a_{label}")
    return results


def print_fig3a(results) -> None:
    rows = []
    for label, result in results.items():
        rows.append(
            [
                label,
                result.cardinality,
                round(result.time_to_first_tuple_ms or 0.0, 1),
                round(result.completion_time_ms, 1),
            ]
        )
    print()
    print("Figure 3a — lineitem x supplier x orders (LAN, virtual ms)")
    print(format_table(["plan", "tuples", "first tuple (ms)", "completion (ms)"], rows))
    best = results["double_pipelined"]
    print("tuples-vs-time series (double pipelined):")
    for point in timeline_series(best.timeline, points=8):
        print(f"  {point.tuples:>8} tuples by {point.time_ms:10.1f} ms")


def test_fig3a_dpj_vs_hybrid(benchmark, deployment):
    results = run_once(benchmark, lambda: run_fig3a(deployment))
    print_fig3a(results)

    dpj = results["double_pipelined"]
    hybrid_good = results["hybrid_(lineitem*supplier)*orders"]
    hybrid_bad = results["hybrid_(supplier*lineitem)*orders"]

    # All plans compute the same join.
    assert dpj.cardinality == hybrid_good.cardinality == hybrid_bad.cardinality

    # Shape 1: huge improvement in time to first tuple.
    assert dpj.time_to_first_tuple_ms < hybrid_good.time_to_first_tuple_ms / 2
    assert dpj.time_to_first_tuple_ms < hybrid_bad.time_to_first_tuple_ms / 2

    # Shape 2: completion no worse than the best hybrid variant (slightly better
    # in the paper; we allow a small tolerance).
    assert dpj.completion_time_ms <= hybrid_good.completion_time_ms * 1.1

    # Shape 3: the hybrid join is sensitive to the inner/outer assignment.
    assert hybrid_bad.time_to_first_tuple_ms >= hybrid_good.time_to_first_tuple_ms
