"""Batch-vectorized pipeline vs. tuple-at-a-time iteration (wall clock).

Unlike the other benchmarks (which reproduce the paper's *virtual-time*
figures), this one measures real CPU throughput: the Figure-3a workload
(``lineitem ⋈ supplier ⋈ orders``, both join implementations and both build
assignments) is executed twice per plan — once driven tuple-at-a-time through
the classic open/next/close protocol (``batch_size=None``) and once through
the vectorized ``next_batch`` protocol — and the wall-clock times are
compared.  Both drives compute identical results and identical virtual-time
accounting; the difference is pure per-row interpreter overhead (operator
dispatch, per-tuple event objects, per-tuple clock and stats calls) that the
batch protocol amortizes.

The acceptance bar is a ≥2× aggregate throughput improvement across the
workload.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import format_table
from repro.engine.iterators import DEFAULT_BATCH_SIZE
from repro.plan.physical import JoinImplementation, join, wrapper_scan

from bench_support import run_once, scale_mb

TABLES = ["lineitem", "orders", "supplier"]

#: Wall-clock measurement repetitions per (plan, drive mode); the fastest run
#: is kept, which filters scheduler noise out of a deterministic computation.
REPEATS = 3


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(scale_mb(4.0), TABLES, seed=42)


def fig3a_plan(first_join_build: str, implementation: JoinImplementation):
    """One Figure-3a plan: (lineitem ⋈ supplier) ⋈ orders (see bench_fig3a)."""
    lineitem = wrapper_scan("lineitem")
    supplier = wrapper_scan("supplier")
    if first_join_build == "supplier":
        first = join(
            lineitem, supplier, ["lineitem.l_suppkey"], ["supplier.s_suppkey"],
            implementation=implementation,
        )
    else:
        first = join(
            supplier, lineitem, ["supplier.s_suppkey"], ["lineitem.l_suppkey"],
            implementation=implementation,
        )
    return join(
        first, wrapper_scan("orders"), ["lineitem.l_orderkey"], ["orders.o_orderkey"],
        implementation=implementation,
    )


PLANS = {
    "dpj": ("supplier", JoinImplementation.DOUBLE_PIPELINED),
    "hybrid_good": ("supplier", JoinImplementation.HYBRID_HASH),
    "hybrid_bad": ("lineitem", JoinImplementation.HYBRID_HASH),
}


def time_plan(deployment, label: str, batch_size: int | None):
    """Fastest-of-N wall-clock run of one plan; returns (seconds, cardinality)."""
    build, implementation = PLANS[label]
    best, cardinality = float("inf"), 0
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = run_operator_tree(
            fig3a_plan(build, implementation),
            deployment.catalog,
            result_name=f"batch_bench_{label}",
            batch_size=batch_size,
        )
        best = min(best, time.perf_counter() - started)
        cardinality = result.cardinality
    return best, cardinality


def run_comparison(deployment):
    measurements = {}
    for label in PLANS:
        tuple_s, tuple_card = time_plan(deployment, label, batch_size=None)
        batch_s, batch_card = time_plan(deployment, label, batch_size=DEFAULT_BATCH_SIZE)
        assert tuple_card == batch_card, f"{label}: drive modes disagree on the result"
        measurements[label] = {
            "rows": tuple_card,
            "tuple_s": tuple_s,
            "batch_s": batch_s,
            "speedup": tuple_s / batch_s,
        }
    return measurements


def print_report(measurements) -> None:
    rows = []
    for label, m in measurements.items():
        rows.append(
            [
                label,
                m["rows"],
                round(m["tuple_s"] * 1000, 1),
                round(m["batch_s"] * 1000, 1),
                f"{m['rows'] / m['tuple_s']:,.0f}",
                f"{m['rows'] / m['batch_s']:,.0f}",
                f"{m['speedup']:.2f}x",
            ]
        )
    total_tuple = sum(m["tuple_s"] for m in measurements.values())
    total_batch = sum(m["batch_s"] for m in measurements.values())
    rows.append(
        ["workload total", "", round(total_tuple * 1000, 1), round(total_batch * 1000, 1),
         "", "", f"{total_tuple / total_batch:.2f}x"]
    )
    print()
    print("Batch pipeline vs tuple-at-a-time — Fig-3a workload (wall clock)")
    print(
        format_table(
            ["plan", "rows", "tuple (ms)", "batch (ms)", "tuple rows/s", "batch rows/s", "speedup"],
            rows,
        )
    )


def test_batch_pipeline_speedup(benchmark, deployment):
    measurements = run_once(benchmark, lambda: run_comparison(deployment))
    print_report(measurements)

    # Identical results, batch at least 2x faster across the workload.
    total_tuple = sum(m["tuple_s"] for m in measurements.values())
    total_batch = sum(m["batch_s"] for m in measurements.values())
    aggregate_speedup = total_tuple / total_batch
    assert aggregate_speedup >= 2.0, (
        f"batch pipeline only {aggregate_speedup:.2f}x faster than the "
        f"row-at-a-time baseline (need >= 2x)"
    )
    # Every individual plan must at least clearly benefit.
    for label, m in measurements.items():
        assert m["speedup"] >= 1.3, f"{label}: speedup {m['speedup']:.2f}x below floor"
