"""Shared helper functions for the benchmark suite.

These used to live in ``benchmarks/conftest.py`` and were imported with
``from conftest import ...``.  Because ``conftest`` is also the (unqualified)
module name of ``tests/conftest.py``, whichever directory pytest imported
first poisoned the other's imports.  The helpers now live in a uniquely named
module; ``benchmarks/conftest.py`` keeps only fixtures.
"""

from __future__ import annotations

import os


def scale_mb(default: float) -> float:
    """Benchmark data scale in MB (overridable via REPRO_BENCH_SCALE_MB)."""
    value = os.environ.get("REPRO_BENCH_SCALE_MB")
    return float(value) if value else default


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    The simulated experiments are deterministic, so repeated rounds add no
    information; one round keeps the suite fast while still recording timing.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
