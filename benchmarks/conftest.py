"""Shared configuration for the benchmark suite.

Benchmarks reproduce the paper's figures on the simulated substrate.  The
data scale defaults to a few megabytes so the whole suite runs in well under
a minute of wall-clock time; set ``REPRO_BENCH_SCALE_MB`` to run closer to
the paper's 10/50 MB settings.
"""

from __future__ import annotations

import os

import pytest


def scale_mb(default: float) -> float:
    """Benchmark data scale in MB (overridable via REPRO_BENCH_SCALE_MB)."""
    value = os.environ.get("REPRO_BENCH_SCALE_MB")
    return float(value) if value else default


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    The simulated experiments are deterministic, so repeated rounds add no
    information; one round keeps the suite fast while still recording timing.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def bench_results():
    """A session-wide dict where benchmarks deposit the tables they print."""
    return {}
