"""Shared fixtures for the benchmark suite.

Benchmarks reproduce the paper's figures on the simulated substrate.  The
data scale defaults to a few megabytes so the whole suite runs in well under
a minute of wall-clock time; set ``REPRO_BENCH_SCALE_MB`` to run closer to
the paper's 10/50 MB settings.

Helper *functions* (``scale_mb``, ``run_once``) live in
:mod:`bench_support` (``benchmarks/bench_support.py``); only fixtures belong
here.  Keeping this module fixture-only means nothing ever needs to
``import conftest``, so the tests/ and benchmarks/ directories can no longer
shadow each other's shared helpers.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def bench_results():
    """A session-wide dict where benchmarks deposit the tables they print."""
    return {}
