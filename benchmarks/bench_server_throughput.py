"""Multi-query server throughput: N overlapping sessions vs serial back-to-back.

The workload the query-server subsystem exists for: eight query sessions over
*overlapping* slow sources (every session joins against ``partsupp``; the
per-source connection bound makes them contend for streams) submitted to one
:class:`~repro.server.scheduler.QueryServer` with a shared virtual timeline,
a server-wide memory broker sized well below the sessions' combined demand,
and the cross-session source cache.

Three things are asserted:

* **Overlap bar** — the concurrent run's total virtual wall clock (the
  server makespan) must be at least 1.5x lower than the same eight queries
  run serially back-to-back in isolated single-tenant contexts.  The gap is
  what the cooperative scheduler (network stalls of one session overlap
  another's CPU), the shared cache (late sessions scan locally), and
  connection queueing give and take.
* **Correctness under contention** — every session's result multiset is
  identical to its serial single-tenant run, despite broker revocations
  forcing Section 4.2 overflow resolution mid-build.
* **Budget invariant, server-wide** — after *every* revocation,
  ``broker.used_bytes`` equals the sum of resident bytes recomputed from
  the live hash tables of every session (the per-operator
  ``budget.used == sum(resident_bytes)`` invariant of the spill tests,
  lifted to the whole server).

Each run appends a record to ``BENCH_server.json`` at the repo root (the
accumulating perf-history artifact, uploaded by CI).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import format_table
from repro.engine.context import EngineConfig
from repro.network.profiles import wide_area
from repro.plan.physical import join, wrapper_scan
from repro.server import QueryServer

from bench_support import run_once, scale_mb

N_SESSIONS = 8

#: Simultaneous streams one source serves; extra connections queue on the
#: shared timeline.
SOURCE_MAX_CONCURRENT = 2

#: Broker capacity as a multiple of one session's join-memory request: well
#: below the eight sessions' combined demand, so admissions must revoke.
CAPACITY_SESSIONS = 2.5

#: Virtual acceptance bar: concurrent makespan at least this much below the
#: serial back-to-back total.
SPEEDUP_BAR = 1.5

TABLES = ["part", "partsupp", "supplier"]

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"


def make_deployment():
    """Fresh deployment per mode: connection-slot state must not leak."""
    deployment = build_deployment(scale_mb(1.0), TABLES, profile=wide_area(), seed=42)
    for source in deployment.sources.values():
        source.max_concurrent = SOURCE_MAX_CONCURRENT
    return deployment


def session_spec(index: int, memory_bytes: int):
    """Session ``index``'s plan: a DPJ join sharing ``partsupp`` with everyone."""
    prefix = f"s{index}"
    if index % 2 == 0:
        left, right, lkey, rkey = "part", "partsupp", "part.p_partkey", "partsupp.ps_partkey"
    else:
        left, right, lkey, rkey = "supplier", "partsupp", "supplier.s_suppkey", "partsupp.ps_suppkey"
    return join(
        wrapper_scan(left, operator_id=f"{prefix}_scan_{left}"),
        wrapper_scan(right, operator_id=f"{prefix}_scan_{right}"),
        [lkey],
        [rkey],
        operator_id=f"{prefix}_join",
        memory_limit_bytes=memory_bytes,
    )


def join_memory_request(deployment) -> int:
    """One session's memory request: its whole join state fits single-tenant."""
    total = 0
    for name in TABLES:
        source = deployment.sources[name]
        total += source.cardinality * source.exported_schema.encoded_row_size
    return max(32 * 1024, int(total * 0.9))


def result_multiset(relation) -> dict:
    counts: dict = {}
    for row in relation.rows:
        key = row.values
        counts[key] = counts.get(key, 0) + 1
    return counts


def run_serial(memory_bytes: int):
    """The baseline: each query in a fresh, isolated, single-tenant context."""
    deployment = make_deployment()
    completions = []
    multisets = []
    for index in range(N_SESSIONS):
        for source in deployment.sources.values():
            source.reset_concurrency()
        result = run_operator_tree(
            session_spec(index, memory_bytes),
            deployment.catalog,
            result_name=f"serial_{index}",
            engine_config=EngineConfig(),
        )
        completions.append(result.completion_time_ms)
        multisets.append(result_multiset(result.relation))
    return completions, multisets


def run_concurrent(memory_bytes: int, stagger_ms: float):
    """The server run: eight sessions, staggered arrivals, shared everything."""
    deployment = make_deployment()
    server = QueryServer(
        deployment.catalog,
        memory_capacity_bytes=int(memory_bytes * CAPACITY_SESSIONS),
    )
    server.broker.floor_bytes = max(16 * 1024, memory_bytes // 8)
    invariant_failures = []
    revocation_points = []

    def check_invariant(broker, record):
        resident = 0
        for session in server.sessions.values():
            for operator in session.context.operators.values():
                for table in getattr(operator, "_tables", None) or ():
                    resident += table.resident_bytes
                inner = getattr(operator, "_inner_table", None)
                if inner is not None:
                    resident += inner.resident_bytes
        revocation_points.append((record.victim, record.taken_bytes))
        if broker.used_bytes != resident:
            invariant_failures.append(
                f"after revoking {record.taken_bytes}B from {record.victim}: "
                f"broker.used={broker.used_bytes} resident={resident}"
            )

    server.broker.on_revocation = check_invariant
    sessions = []
    for index in range(N_SESSIONS):
        # The first three arrive together (guaranteed connection contention
        # and broker pressure); the rest trickle in so some admissions land
        # after full extents are cached.
        arrival = 0.0 if index < 3 else (index - 2) * stagger_ms
        sessions.append(
            server.submit(
                session_spec(index, memory_bytes),
                f"s{index}",
                arrival_ms=arrival,
            )
        )
    stats = server.run()
    return server, stats, sessions, invariant_failures, revocation_points


def run_workload():
    deployment = make_deployment()
    memory_bytes = join_memory_request(deployment)
    serial_completions, serial_multisets = run_serial(memory_bytes)
    serial_total = sum(serial_completions)
    # Stagger the trickle so the last arrivals land after the first
    # session's sources were read to completion (cache-hit territory).
    stagger = min(serial_completions) * 0.4
    server, stats, sessions, invariant_failures, revocations = run_concurrent(
        memory_bytes, stagger
    )
    return {
        "memory_bytes": memory_bytes,
        "serial_completions": serial_completions,
        "serial_total": serial_total,
        "serial_multisets": serial_multisets,
        "server": server,
        "stats": stats,
        "sessions": sessions,
        "invariant_failures": invariant_failures,
        "revocations": revocations,
    }


def print_report(data) -> None:
    stats = data["stats"]
    rows = []
    for index, (session, serial_ms) in enumerate(
        zip(data["sessions"], data["serial_completions"])
    ):
        summary = session.summary
        rows.append(
            [
                session.session_id,
                summary.result_cardinality,
                round(summary.submitted_at_ms, 1),
                round(summary.completed_at_ms, 1),
                round(summary.elapsed_ms, 1),
                round(serial_ms, 1),
                summary.slices,
                summary.waits,
            ]
        )
    print()
    print(
        f"Query server: {N_SESSIONS} sessions, per-source streams "
        f"<= {SOURCE_MAX_CONCURRENT}, broker capacity "
        f"{CAPACITY_SESSIONS}x one session's request"
    )
    print(
        format_table(
            [
                "session", "rows", "admitted", "done", "elapsed ms",
                "serial ms", "slices", "waits",
            ],
            rows,
        )
    )
    speedup = data["serial_total"] / stats.makespan_ms
    print(
        f"serial back-to-back {data['serial_total']:.1f} virtual ms, "
        f"concurrent makespan {stats.makespan_ms:.1f} virtual ms "
        f"-> {speedup:.2f}x (bar {SPEEDUP_BAR}x)"
    )
    print(
        f"revocations {stats.revocations} ({stats.bytes_revoked}B), "
        f"cross-session cache hits {stats.cross_session_cache_hits}, "
        f"source queueing {stats.source_queued_ms:.1f} virtual ms"
    )


def append_trajectory(data, speedup: float) -> None:
    """Append one record to ``BENCH_server.json`` (perf history artifact)."""
    stats = data["stats"]
    record = {
        "benchmark": "bench_server_throughput",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale_mb": scale_mb(1.0),
        "sessions": N_SESSIONS,
        "speedup_concurrent_vs_serial": round(speedup, 4),
        "makespan_virtual_ms": round(stats.makespan_ms, 3),
        "serial_total_virtual_ms": round(data["serial_total"], 3),
        "revocations": stats.revocations,
        "bytes_revoked": stats.bytes_revoked,
        "cross_session_cache_hits": stats.cross_session_cache_hits,
        "source_queued_virtual_ms": round(stats.source_queued_ms, 3),
        "scheduler_slices": stats.scheduler_slices,
    }
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_server_throughput(benchmark):
    data = run_once(benchmark, run_workload)
    print_report(data)
    stats = data["stats"]

    # Every session completed, each with the multiset its isolated
    # single-tenant run produced — contention may change *when*, never *what*.
    for session, serial in zip(data["sessions"], data["serial_multisets"]):
        assert session.status.value == "completed", (
            f"{session.session_id}: {session.status} ({session.error})"
        )
        assert result_multiset(session.result) == serial, (
            f"{session.session_id}: concurrent result differs from serial run"
        )

    # Cross-query memory pressure was real and the server-wide budget
    # invariant held at every revocation point.
    assert stats.revocations >= 1, "workload was meant to force lease revocations"
    assert not data["invariant_failures"], data["invariant_failures"]
    victim_overflows = sum(
        operator.overflow_count
        for session in data["sessions"]
        for operator in session.context.operators.values()
        if hasattr(operator, "overflow_count")
    )
    assert victim_overflows >= 1, "revocations should have forced overflow resolution"

    # The shared source layer did its job: someone scanned locally from a
    # cache entry another session filled, and someone queued for a stream.
    assert stats.cross_session_cache_hits >= 1
    assert stats.source_queued_ms > 0

    # The headline bar: overlap + sharing must beat serial back-to-back.
    speedup = data["serial_total"] / stats.makespan_ms
    append_trajectory(data, speedup)
    assert speedup >= SPEEDUP_BAR, (
        f"concurrent makespan {stats.makespan_ms:.1f}ms only {speedup:.2f}x "
        f"better than serial {data['serial_total']:.1f}ms (need >= {SPEEDUP_BAR}x)"
    )
