"""Section 6.5 — saving optimizer state for re-optimization.

Paper experiment: after a fragment completes, the optimizer must be
re-invoked with the corrected size estimate.  A dynamic-programming optimizer
can either replan from scratch (the residual query is one relation smaller)
or reuse its saved search space.  With *usage pointers* threaded through the
saved dynamic program, re-optimization only visits the entries that can be
affected; the paper measures a speedup of up to 1.64x over replanning from
scratch, and finds that saved state *without* usage pointers is slower than
replanning from scratch.

This benchmark counts dynamic-program nodes visited (the work measure) and
wall-clock time for the three approaches across query sizes.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import build_deployment
from repro.bench.reporting import format_table, speedup
from repro.datagen.workload import TPCDJoinGraph
from repro.optimizer.cost_model import CostModel
from repro.optimizer.enumeration import JoinEnumerator

from bench_support import run_once, scale_mb

TABLES = ["region", "nation", "supplier", "customer", "part", "partsupp", "orders"]

#: (query size, relations, completed fragment) — the fragment's relations are
#: the subquery whose actual cardinality triggers re-optimization.
CASES = [
    (4, ["region", "nation", "supplier", "customer"], ["region", "nation"]),
    (5, ["region", "nation", "supplier", "customer", "orders"], ["nation", "supplier"]),
    (6, ["region", "nation", "supplier", "customer", "orders", "partsupp"], ["nation", "supplier"]),
    (
        7,
        ["region", "nation", "supplier", "customer", "orders", "partsupp", "part"],
        ["part", "partsupp"],
    ),
]

MODES = ("saved_state", "saved_state_no_pointers", "scratch")


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(scale_mb(1.0), TABLES, seed=42)


def reoptimization_work(enumerator, query, sources, covered, mode):
    """(nodes visited, wall seconds) for one re-optimization in the given mode."""
    state = enumerator.enumerate(query, sources)
    before_nodes = state.nodes_visited
    started = time.perf_counter()
    if mode == "scratch":
        fresh = enumerator.replan_from_scratch(state, covered, "done", 40, sources)
        nodes = fresh.nodes_visited
    else:
        enumerator.reoptimize_with_saved_state(
            state, covered, "done", 40, use_usage_pointers=(mode == "saved_state")
        )
        nodes = state.nodes_visited - before_nodes
    return nodes, time.perf_counter() - started


def run_sec65(deployment):
    graph = TPCDJoinGraph()
    enumerator = JoinEnumerator(CostModel(deployment.catalog))
    results = {}
    for size, relations, covered_relations in CASES:
        query = graph.query_for(frozenset(relations), name=f"s65_{size}")
        sources = {relation: relation for relation in relations}
        covered = frozenset(covered_relations)
        for mode in MODES:
            results[(size, mode)] = reoptimization_work(
                enumerator, query, sources, covered, mode
            )
    return results


def print_sec65(results) -> None:
    rows = []
    for size, _, _ in CASES:
        saved_nodes, saved_time = results[(size, "saved_state")]
        nopointer_nodes, nopointer_time = results[(size, "saved_state_no_pointers")]
        scratch_nodes, scratch_time = results[(size, "scratch")]
        rows.append(
            [
                size,
                saved_nodes,
                nopointer_nodes,
                scratch_nodes,
                round(speedup(scratch_nodes, saved_nodes), 2),
                round(speedup(scratch_time, max(saved_time, 1e-9)), 2),
            ]
        )
    print()
    print("Section 6.5 — re-optimization work (DP nodes visited) by approach")
    print(
        format_table(
            [
                "relations",
                "saved state",
                "saved, no pointers",
                "scratch",
                "node speedup vs scratch",
                "time speedup vs scratch",
            ],
            rows,
        )
    )
    print("(paper: saved state with usage pointers up to 1.64x faster than scratch;")
    print(" saved state without usage pointers slower than scratch)")


def test_sec65_saving_optimizer_state(benchmark, deployment):
    results = run_once(benchmark, lambda: run_sec65(deployment))
    print_sec65(results)

    for size, _, _ in CASES:
        saved_nodes, _ = results[(size, "saved_state")]
        nopointer_nodes, _ = results[(size, "saved_state_no_pointers")]
        scratch_nodes, _ = results[(size, "scratch")]
        # Shape 1: saved state with usage pointers does the least work.
        assert saved_nodes < scratch_nodes
        # Shape 2: saved state without usage pointers does more work than scratch.
        assert nopointer_nodes > scratch_nodes

    # Shape 3: the advantage grows with query size (larger saved tables).
    small_gain = speedup(results[(4, "scratch")][0], results[(4, "saved_state")][0])
    large_gain = speedup(results[(7, "scratch")][0], results[(7, "saved_state")][0])
    assert large_gain >= small_gain
