"""Figure 5 — interleaved planning and execution.

Paper workload: the seven four-table joins over the 10 MB TPC-D data set that
avoid lineitem.  The optimizer is given correct base-table cardinalities but
must fall back to default join selectivities for intermediate results (no
histograms), so its intermediate estimates — and hence its memory
allocations — are badly wrong.  Three strategies are compared:

* **materialize** — materialize after every join, never replan;
* **materialize and replan** — materialize after every join and re-invoke the
  optimizer whenever a result is off from its estimate by at least 2x;
* **pipeline** — run the whole query as one fully pipelined plan.

Paper result (shape to reproduce): *materialize and replan* is the fastest on
every query — about 1.42x faster than pipelining and 1.69x faster than
materializing alone — because replanning fixes the memory allocations (and
join order) that the bad selectivity estimates ruined, which outweighs the
cost of the extra materializations.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.harness import build_deployment
from repro.bench.reporting import format_table, speedup
from repro.core.interleaving import InterleavedExecutionDriver
from repro.datagen.workload import figure5_queries
from repro.engine.context import EngineConfig
from repro.optimizer.optimizer import Optimizer, OptimizerConfig, PlanningStrategy
from repro.query.reformulation import Reformulator
from repro.storage.memory import MB

from bench_support import run_once, scale_mb

TABLES = ["region", "nation", "supplier", "customer", "part", "partsupp", "orders"]

STRATEGIES = [
    PlanningStrategy.MATERIALIZE,
    PlanningStrategy.MATERIALIZE_REPLAN,
    PlanningStrategy.PIPELINE,
]

#: Query memory pool divided among the plan's joins by *estimated* need.
MEMORY_POOL_BYTES = 2 * MB

#: Spill I/O priced at spinning-disk rates (the paper's engine wrote real files).
ENGINE_CONFIG = EngineConfig(disk_page_read_ms=2.0, disk_page_write_ms=2.5)


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(scale_mb(2.0), TABLES, seed=42)


def run_fig5(deployment):
    """Run all seven queries under each strategy; returns per-query results."""
    queries = figure5_queries()
    results: dict[tuple[str, str], object] = {}
    for strategy in STRATEGIES:
        for query in queries:
            optimizer = Optimizer(
                deployment.catalog, OptimizerConfig(memory_pool_bytes=MEMORY_POOL_BYTES)
            )
            driver = InterleavedExecutionDriver(
                deployment.catalog, optimizer, engine_config=ENGINE_CONFIG
            )
            named = dataclasses.replace(query, name=f"{query.name}_{strategy.value}")
            reformulated = Reformulator(deployment.catalog).reformulate(named)
            outcome = driver.run(reformulated, strategy=strategy)
            assert outcome.succeeded, f"{query.name} failed under {strategy.value}: {outcome.error}"
            results[(query.name, strategy.value)] = outcome
    return results


def print_fig5(results) -> None:
    queries = sorted({query for query, _ in results})
    rows = []
    for query in queries:
        row = [query]
        for strategy in STRATEGIES:
            row.append(round(results[(query, strategy.value)].total_time_ms, 1))
        row.append(results[(query, PlanningStrategy.MATERIALIZE_REPLAN.value)].reoptimizations)
        rows.append(row)
    print()
    print("Figure 5 — per-query completion time by strategy (virtual ms)")
    print(
        format_table(
            ["query", "materialize", "materialize+replan", "pipeline", "replans"], rows
        )
    )
    totals = {
        strategy.value: sum(results[(q, strategy.value)].total_time_ms for q in queries)
        for strategy in STRATEGIES
    }
    replan_total = totals[PlanningStrategy.MATERIALIZE_REPLAN.value]
    print(
        f"total: materialize={totals['materialize']:.0f}  "
        f"materialize+replan={replan_total:.0f}  pipeline={totals['pipeline']:.0f}"
    )
    print(
        f"speedup of materialize+replan: {speedup(totals['pipeline'], replan_total):.2f}x over pipeline, "
        f"{speedup(totals['materialize'], replan_total):.2f}x over materialize "
        f"(paper: 1.42x and 1.69x)"
    )


def test_fig5_interleaved_planning(benchmark, deployment):
    results = run_once(benchmark, lambda: run_fig5(deployment))
    print_fig5(results)

    queries = sorted({query for query, _ in results})

    # All strategies must agree on every query's answer cardinality.
    for query in queries:
        cards = {
            results[(query, strategy.value)].cardinality for strategy in STRATEGIES
        }
        assert len(cards) == 1

    totals = {
        strategy.value: sum(results[(q, strategy.value)].total_time_ms for q in queries)
        for strategy in STRATEGIES
    }
    replan_total = totals[PlanningStrategy.MATERIALIZE_REPLAN.value]

    # Shape 1: materialize+replan is the fastest strategy overall.
    assert replan_total < totals[PlanningStrategy.PIPELINE.value]
    assert replan_total < totals[PlanningStrategy.MATERIALIZE.value]

    # Shape 2: materializing without replanning is the slowest overall —
    # it pays for the materializations without ever correcting the plan.
    assert totals[PlanningStrategy.MATERIALIZE.value] > totals[PlanningStrategy.PIPELINE.value]

    # Shape 3: replanning actually happened (the estimates really were bad).
    total_replans = sum(
        results[(q, PlanningStrategy.MATERIALIZE_REPLAN.value)].reoptimizations for q in queries
    )
    assert total_replans >= len(queries) // 2
