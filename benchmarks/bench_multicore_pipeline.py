"""Multicore exchange backend: Figure 3a on real cores, real wall clock.

Every other benchmark in this suite measures *virtual* time — the simulated
network/CPU/disk clock the paper's figures are drawn in.  This one measures
*real elapsed seconds*: the ``process`` exchange backend runs each lane's
join subtree in its own OS process, so a CPU-bound partitioned plan should
finish in real time roughly ``lanes`` times faster than the inline backend
computing the same lanes sequentially — while producing the identical result
multiset and the identical virtual-time accounting (that is the backend's
determinism contract, asserted here and in ``tests/test_process_backend.py``).

Assertions:

* **Parity** — result multiset, virtual completion, and virtual time to
  first tuple are identical between the inline and process backends.
* **Bounded shipping** — per lane, the wire encoder shipped a non-trivial
  payload but each dictionary entry crossed at most once per dictionary
  object (entries shipped are bounded by distinct strings times the number
  of dictionaries on the link, never by row count), and the string bytes
  are a fraction of the payload (codes, not strings, carry the columns).
* **Real speedup bar** — with ``REPRO_BENCH_MULTICORE_WORKERS`` (default 4)
  process lanes on a machine with at least that many cores, real elapsed
  time beats inline by at least 1.8x.  On smaller machines (or the 2-worker
  CI smoke) the bar is reported but not enforced — a 1-core container
  cannot demonstrate parallel speedup, and parity is the contract that
  gates there.

Each run appends a record to ``BENCH_multicore.json`` at the repo root (the
accumulating perf-history artifact, uploaded by CI).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import format_table
from repro.engine.context import EngineConfig
from repro.engine.operators import Exchange
from repro.network.profiles import lan
from repro.plan.physical import join, wrapper_scan

from bench_support import run_once, scale_mb

TABLES = ["lineitem", "orders", "supplier"]

#: Process lane count (the CI smoke runs 2; the full bar needs 4).
WORKERS = int(os.environ.get("REPRO_BENCH_MULTICORE_WORKERS", "4"))

#: Real-elapsed acceptance bar at >= 4 workers on a machine with the cores.
SPEEDUP_BAR = 1.8

#: CPU-bound configuration (same shape as bench_parallel_pipeline): fast LAN
#: so lane compute, not simulated arrival, dominates the virtual plan — and
#: the real Python join work dominates the real elapsed time.
PROFILE_OVERRIDES = {"bandwidth_kbps": 125000.0, "initial_latency_ms": 1.0}
PER_TUPLE_CPU_MS = 0.02

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_multicore.json"


def make_deployment():
    return build_deployment(
        scale_mb(2.0), TABLES, profile=lan(**PROFILE_OVERRIDES), seed=42
    )


def fig3a_plan():
    inner = join(
        wrapper_scan("lineitem", operator_id="mc_scan_l"),
        wrapper_scan("supplier", operator_id="mc_scan_s"),
        ["lineitem.l_suppkey"],
        ["supplier.s_suppkey"],
        operator_id="mc_inner",
    )
    return join(
        inner,
        wrapper_scan("orders", operator_id="mc_scan_o"),
        ["lineitem.l_orderkey"],
        ["orders.o_orderkey"],
        operator_id="mc_outer",
    )


def engine_config(backend: str) -> EngineConfig:
    return EngineConfig(
        exchange_lanes=WORKERS,
        exchange_backend=backend,
        per_tuple_cpu_ms=PER_TUPLE_CPU_MS,
    )


def result_multiset(relation) -> dict:
    counts: dict = {}
    for row in relation.rows:
        key = row.values
        counts[key] = counts.get(key, 0) + 1
    return counts


def distinct_strings(deployment) -> int:
    """Distinct string values across all base relations.  No single
    dictionary can hold more entries than this, so a link that carries N
    dictionary objects ships at most N times this many entries — a ceiling
    independent of row count."""
    values: set[str] = set()
    catalog = deployment.catalog
    for name in catalog.source_names:
        for row in catalog.source(name).relation.rows:
            values.update(v for v in row.values if isinstance(v, str))
    return len(values)


def timed_run(deployment, backend: str):
    start = time.perf_counter()
    result = run_operator_tree(
        fig3a_plan(),
        deployment.catalog,
        result_name=f"multicore_{backend}",
        engine_config=engine_config(backend),
    )
    return result, time.perf_counter() - start


def wire_reports(result) -> list[dict]:
    reports = []
    for operator in result.context.operators.values():
        if isinstance(operator, Exchange) and operator.wire_report is not None:
            for lane_report in operator.wire_report:
                reports.append({"exchange": operator.operator_id, **lane_report})
    return reports


def run_workload():
    deployment = make_deployment()
    inline_result, inline_s = timed_run(deployment, "inline")
    process_result, process_s = timed_run(deployment, "process")
    return {
        "inline": inline_result,
        "process": process_result,
        "inline_s": inline_s,
        "process_s": process_s,
        "wire": wire_reports(process_result),
        "distinct_strings": distinct_strings(deployment),
    }


def bar_applies() -> tuple[bool, str]:
    cores = os.cpu_count() or 1
    if WORKERS < 4:
        return False, f"bar needs >= 4 workers (running {WORKERS}: smoke mode)"
    if cores < WORKERS:
        return False, f"bar needs >= {WORKERS} cores (machine has {cores})"
    return True, f"{WORKERS} workers on {cores} cores"


def print_report(data, speedup: float) -> None:
    rows = [
        [
            backend,
            data[backend].cardinality,
            round(data[backend].completion_time_ms, 1),
            round(data[f"{backend}_s"] * 1000.0, 1),
        ]
        for backend in ("inline", "process")
    ]
    print()
    print(f"Multicore Fig-3a at {WORKERS} lanes (real elapsed vs inline)")
    print(
        format_table(
            ["backend", "rows", "virtual completion ms", "real elapsed ms"], rows
        )
    )
    applies, reason = bar_applies()
    enforced = "enforced" if applies else f"not enforced: {reason}"
    print(f"real speedup: {speedup:.2f}x (bar {SPEEDUP_BAR}x {enforced})")
    shipped = sum(report["to_worker"]["payload_bytes"] for report in data["wire"])
    entries = sum(report["to_worker"]["dict_entries_shipped"] for report in data["wire"])
    dictionaries = sum(report["to_worker"]["dictionaries"] for report in data["wire"])
    print(
        f"shipped to workers: {shipped / 1024.0:.0f} KiB across "
        f"{len(data['wire'])} lane links, {entries} dictionary entries over "
        f"{dictionaries} dictionaries (distinct strings in deployment: "
        f"{data['distinct_strings']})"
    )


def append_trajectory(data, speedup: float) -> None:
    """Append one record to ``BENCH_multicore.json`` (perf history artifact)."""
    applies, reason = bar_applies()
    record = {
        "benchmark": "bench_multicore_pipeline",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale_mb": scale_mb(2.0),
        "workers": WORKERS,
        "cores": os.cpu_count(),
        "inline_elapsed_s": round(data["inline_s"], 4),
        "process_elapsed_s": round(data["process_s"], 4),
        "real_speedup": round(speedup, 4),
        "speedup_bar": SPEEDUP_BAR,
        "bar_enforced": applies,
        "bar_note": reason,
        "virtual_completion_ms": round(data["process"].completion_time_ms, 3),
        "cardinality": data["process"].cardinality,
        "wire_payload_bytes": sum(
            report["to_worker"]["payload_bytes"] for report in data["wire"]
        ),
        "wire_dict_entries_shipped": sum(
            report["to_worker"]["dict_entries_shipped"] for report in data["wire"]
        ),
    }
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_multicore_pipeline(benchmark):
    data = run_once(benchmark, run_workload)
    speedup = data["inline_s"] / data["process_s"] if data["process_s"] else 0.0
    print_report(data, speedup)

    # Determinism contract: multiset AND virtual accounting identical.
    inline, process = data["inline"], data["process"]
    reference = result_multiset(inline.relation)
    assert reference, "the workload was meant to produce joined rows"
    assert result_multiset(process.relation) == reference
    assert process.completion_time_ms == inline.completion_time_ms
    assert process.time_to_first_tuple_ms == inline.time_to_first_tuple_ms

    # Bounded shipping: every lane link moved data; dictionary entries ship
    # once per dictionary object (so the ceiling is distinct strings times
    # the dictionaries on the link, independent of the rows routed), and
    # string bytes stay a fraction of the payload — codes carry the columns.
    assert data["wire"], "process run must publish per-lane wire reports"
    for report in data["wire"]:
        to_worker = report["to_worker"]
        assert to_worker["payload_bytes"] > 0, report
        ceiling = data["distinct_strings"] * max(1, to_worker["dictionaries"])
        assert to_worker["dict_entries_shipped"] <= ceiling, report
        assert to_worker["dict_bytes_shipped"] <= to_worker["payload_bytes"], report

    append_trajectory(data, speedup)

    # The headline bar, on hardware that can express it.
    applies, reason = bar_applies()
    if applies:
        assert speedup >= SPEEDUP_BAR, (
            f"process backend only {speedup:.2f}x faster than inline at "
            f"{WORKERS} workers (need >= {SPEEDUP_BAR}x): "
            f"inline {data['inline_s']:.2f}s vs process {data['process_s']:.2f}s"
        )
