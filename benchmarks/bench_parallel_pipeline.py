"""Partitioned parallel execution: Figure 3a at 1/2/4 exchange lanes.

The exchange operator hash-partitions each join's inputs by key code across N
worker lanes that run as session-style step generators on the shared virtual
timeline.  This benchmark runs the Figure 3a plan
``(lineitem ⋈ supplier) ⋈ orders`` in a CPU-bound configuration (fast LAN,
non-trivial per-tuple CPU) and asserts:

* **Speedup bar** — the 4-lane run's virtual wall clock is at least 2x lower
  than the 1-lane run (partitioned probe/build CPU overlaps across lanes).
* **Result transparency** — identical result multisets at every lane count.
* **Budget invariant under lanes** — a contended two-session server run with
  4-lane joins holds ``broker.used_bytes == sum(resident_bytes)`` at every
  revocation, where residency is recomputed from the live hash tables of
  every lane of every session (per-lane budgets are individual leases).

Each run appends a record to ``BENCH_parallel.json`` at the repo root (the
accumulating perf-history artifact, uploaded by CI).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.harness import build_deployment, run_operator_tree
from repro.bench.reporting import format_table
from repro.engine.context import EngineConfig
from repro.engine.operators import Exchange
from repro.network.profiles import lan
from repro.plan.physical import join, wrapper_scan
from repro.server import QueryServer

from bench_support import run_once, scale_mb

TABLES = ["lineitem", "orders", "supplier"]

LANE_COUNTS = [1, 2, 4]

#: Virtual acceptance bar: 4 lanes at least this much below 1 lane.
SPEEDUP_BAR = 2.0

#: CPU-bound configuration: a fast LAN (1 Gbps, 1 ms setup) with non-trivial
#: per-tuple CPU.  On the default 10 Mbps profile the workload is
#: arrival-bound and no amount of CPU parallelism can beat data arrival.
PROFILE_OVERRIDES = {"bandwidth_kbps": 125000.0, "initial_latency_ms": 1.0}
PER_TUPLE_CPU_MS = 0.02

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def make_deployment():
    return build_deployment(
        scale_mb(0.5), TABLES, profile=lan(**PROFILE_OVERRIDES), seed=42
    )


def fig3a_plan(prefix: str = "fig3a", memory_bytes: int | None = None):
    inner = join(
        wrapper_scan("lineitem", operator_id=f"{prefix}_scan_l"),
        wrapper_scan("supplier", operator_id=f"{prefix}_scan_s"),
        ["lineitem.l_suppkey"],
        ["supplier.s_suppkey"],
        operator_id=f"{prefix}_inner",
        memory_limit_bytes=memory_bytes,
    )
    return join(
        inner,
        wrapper_scan("orders", operator_id=f"{prefix}_scan_o"),
        ["lineitem.l_orderkey"],
        ["orders.o_orderkey"],
        operator_id=f"{prefix}_outer",
        memory_limit_bytes=memory_bytes,
    )


def engine_config(lanes: int) -> EngineConfig:
    return EngineConfig(exchange_lanes=lanes, per_tuple_cpu_ms=PER_TUPLE_CPU_MS)


def result_multiset(relation) -> dict:
    counts: dict = {}
    for row in relation.rows:
        key = row.values
        counts[key] = counts.get(key, 0) + 1
    return counts


def run_lane_sweep(deployment):
    results = {}
    for lanes in LANE_COUNTS:
        results[lanes] = run_operator_tree(
            fig3a_plan(),
            deployment.catalog,
            result_name=f"parallel_{lanes}",
            engine_config=engine_config(lanes),
        )
    return results


def server_resident_bytes(server) -> int:
    """Resident bytes across every session, descending into exchange lanes."""
    total = 0
    operators = []
    for session in server.sessions.values():
        operators.extend(session.context.operators.values())
    for operator in list(operators):
        if isinstance(operator, Exchange):
            operators.extend(operator.lane_operators)
    for operator in operators:
        for table in getattr(operator, "_tables", None) or ():
            total += table.resident_bytes
        inner = getattr(operator, "_inner_table", None)
        if inner is not None:
            total += inner.resident_bytes
    return total


def run_contended(deployment, lanes: int):
    """Two sessions whose combined join memory exceeds the broker capacity."""
    memory_bytes = 80 * 1024
    server = QueryServer(
        deployment.catalog,
        engine_config=engine_config(lanes),
        memory_capacity_bytes=int(memory_bytes * 1.5),
    )
    server.broker.floor_bytes = 8 * 1024
    invariant_failures = []
    revocation_count = [0]

    def check_invariant(broker, record):
        revocation_count[0] += 1
        resident = server_resident_bytes(server)
        if broker.used_bytes != resident:
            invariant_failures.append(
                f"after revoking {record.taken_bytes}B from {record.victim}: "
                f"broker.used={broker.used_bytes} resident={resident}"
            )

    server.broker.on_revocation = check_invariant
    sessions = [
        server.submit(fig3a_plan("qa", memory_bytes), "qa"),
        server.submit(fig3a_plan("qb", memory_bytes), "qb", arrival_ms=200.0),
    ]
    stats = server.run()
    return sessions, stats, revocation_count[0], invariant_failures


def run_workload():
    deployment = make_deployment()
    sweep = run_lane_sweep(deployment)
    sessions, stats, revocations, invariant_failures = run_contended(deployment, 4)
    return {
        "sweep": sweep,
        "sessions": sessions,
        "stats": stats,
        "revocations": revocations,
        "invariant_failures": invariant_failures,
    }


def print_report(data) -> None:
    sweep = data["sweep"]
    base = sweep[1].completion_time_ms
    rows = []
    for lanes, result in sweep.items():
        rows.append(
            [
                lanes,
                result.cardinality,
                round(result.time_to_first_tuple_ms, 1),
                round(result.completion_time_ms, 1),
                f"{base / result.completion_time_ms:.2f}x",
            ]
        )
    print()
    print(
        f"Partitioned Fig-3a, CPU-bound LAN "
        f"({PROFILE_OVERRIDES['bandwidth_kbps'] / 125.0:.0f} Mbps, "
        f"{PER_TUPLE_CPU_MS} ms/tuple)"
    )
    print(format_table(["lanes", "rows", "first tuple ms", "completion ms", "speedup"], rows))
    print(
        f"contended server run (4 lanes x 2 sessions): "
        f"{data['revocations']} revocations, "
        f"{len(data['invariant_failures'])} invariant failures"
    )


def append_trajectory(data, speedups) -> None:
    """Append one record to ``BENCH_parallel.json`` (perf history artifact)."""
    sweep = data["sweep"]
    record = {
        "benchmark": "bench_parallel_pipeline",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale_mb": scale_mb(0.5),
        "per_tuple_cpu_ms": PER_TUPLE_CPU_MS,
        "completion_virtual_ms": {
            str(lanes): round(result.completion_time_ms, 3)
            for lanes, result in sweep.items()
        },
        "time_to_first_tuple_virtual_ms": {
            str(lanes): round(result.time_to_first_tuple_ms, 3)
            for lanes, result in sweep.items()
        },
        "speedup_vs_serial": {str(lanes): round(s, 4) for lanes, s in speedups.items()},
        "cardinality": sweep[1].cardinality,
        "contended_revocations": data["revocations"],
    }
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_parallel_pipeline(benchmark):
    data = run_once(benchmark, run_workload)
    print_report(data)
    sweep = data["sweep"]

    # Result transparency: lane count never changes *what*, only *when*.
    reference = result_multiset(sweep[1].relation)
    assert reference
    for lanes in LANE_COUNTS[1:]:
        assert result_multiset(sweep[lanes].relation) == reference, (
            f"{lanes}-lane multiset differs from serial run"
        )

    # Budget invariant under partition-parallel joins: per-lane budgets are
    # individual broker leases and residency matches at every revocation.
    for session in data["sessions"]:
        assert session.status.value == "completed", (
            f"{session.session_id}: {session.status} ({session.error})"
        )
    assert data["revocations"] >= 1, "contended run was meant to force revocations"
    assert not data["invariant_failures"], data["invariant_failures"]

    # The headline bar: 4 lanes at least 2x below 1 lane in virtual time.
    base = sweep[1].completion_time_ms
    speedups = {lanes: base / sweep[lanes].completion_time_ms for lanes in LANE_COUNTS}
    append_trajectory(data, speedups)
    assert speedups[4] >= SPEEDUP_BAR, (
        f"4-lane completion {sweep[4].completion_time_ms:.1f}ms only "
        f"{speedups[4]:.2f}x better than 1-lane {base:.1f}ms (need >= {SPEEDUP_BAR}x)"
    )
