"""End-to-end tests for the Tukwila facade and interleaved execution driver."""

import pytest

from repro.core.system import Tukwila
from repro.engine.executor import ExecutionStatus
from repro.errors import QueryError
from repro.network.profiles import dead, lan, wide_area
from repro.network.source import DataSource, make_mirror
from repro.catalog.source_desc import SourceDescription
from repro.optimizer.optimizer import PlanningStrategy, ReoptimizationMode

from helpers import attribute_multiset, reference_join


@pytest.fixture
def two_table_system(orders_and_items):
    orders, items = orders_and_items
    system = Tukwila()
    system.register_source(DataSource("ord", orders, lan()))
    system.register_source(DataSource("item", items, lan()))
    return system


@pytest.fixture
def tpcd_system(tiny_tpcd):
    system = Tukwila()
    for table in ["region", "nation", "supplier", "customer", "orders"]:
        system.register_source(DataSource(table, tiny_tpcd[table], lan()))
    return system


JOIN_SQL = "select * from ord, item where ord.o_id = item.i_order"


class TestRegistration:
    def test_register_source_extends_mediated_schema(self, two_table_system):
        assert "ord" in two_table_system.mediated_schema
        assert "item" in two_table_system.mediated_schema

    def test_declare_mirrors_and_overlap(self, two_table_system, orders_and_items):
        orders, _ = orders_and_items
        mirror = DataSource("ord2", orders, wide_area())
        two_table_system.register_source(
            mirror, SourceDescription("ord2", "ord")
        )
        two_table_system.declare_mirrors("ord", "ord2")
        assert two_table_system.catalog.overlap.are_mirrors("ord", "ord2")
        two_table_system.set_overlap("ord", "ord2", 0.9)
        assert two_table_system.catalog.overlap.overlap("ord", "ord2") == 0.9


class TestQueryExecution:
    def test_sql_string_query(self, two_table_system, orders_and_items):
        orders, items = orders_and_items
        result = two_table_system.execute(JOIN_SQL, name="j1")
        assert result.succeeded
        expected = reference_join(orders, items, "o_id", "i_order")
        assert attribute_multiset(result.answer) == attribute_multiset(expected)
        assert result.total_time_ms > 0
        assert result.time_to_first_tuple_ms is not None

    def test_unknown_relation_rejected(self, two_table_system):
        with pytest.raises(QueryError):
            two_table_system.execute("select * from ord, ghost where ord.o_id = ghost.x")

    def test_disconnected_query_rejected(self, two_table_system):
        with pytest.raises(QueryError):
            two_table_system.execute("select * from ord, item")

    def test_plan_without_execution(self, two_table_system):
        result = two_table_system.plan(JOIN_SQL, name="planned")
        assert result.plan.fragments
        assert result.state.best_plan().subset == frozenset({"ord", "item"})

    def test_single_relation_query(self, two_table_system, orders_and_items):
        orders, _ = orders_and_items
        result = two_table_system.execute("select * from ord", name="scan_only")
        assert result.succeeded
        assert result.cardinality == orders.cardinality

    @pytest.mark.parametrize(
        "strategy",
        [
            PlanningStrategy.PIPELINE,
            PlanningStrategy.MATERIALIZE,
            PlanningStrategy.MATERIALIZE_REPLAN,
            PlanningStrategy.PARTIAL,
        ],
    )
    def test_all_strategies_agree_on_tpcd(self, tpcd_system, tiny_tpcd, strategy):
        sql = (
            "select * from nation, region, supplier "
            "where nation.n_regionkey = region.r_regionkey "
            "and supplier.s_nationkey = nation.n_nationkey"
        )
        result = tpcd_system.execute(sql, strategy=strategy, name=f"q_{strategy.value}")
        assert result.succeeded
        expected = (
            tiny_tpcd["nation"].qualified()
            .join(tiny_tpcd["region"].qualified(), ["n_regionkey"], ["r_regionkey"])
            .join(tiny_tpcd["supplier"].qualified(), ["n_nationkey"], ["s_nationkey"])
        )
        assert result.cardinality == expected.cardinality

    def test_interleaving_replans_with_bad_estimates(self, tpcd_system):
        sql = (
            "select * from nation, supplier, customer "
            "where supplier.s_nationkey = nation.n_nationkey "
            "and customer.c_nationkey = nation.n_nationkey"
        )
        result = tpcd_system.execute(
            sql, strategy=PlanningStrategy.MATERIALIZE_REPLAN, name="replanner"
        )
        assert result.succeeded
        # Default join selectivities are badly wrong, so at least one replan happens.
        assert result.reoptimizations >= 1
        assert len(result.plans) == result.reoptimizations + 1

    def test_partial_strategy_completes_via_interleaving(self, tpcd_system):
        sql = (
            "select * from nation, region, supplier, customer "
            "where nation.n_regionkey = region.r_regionkey "
            "and supplier.s_nationkey = nation.n_nationkey "
            "and customer.c_nationkey = nation.n_nationkey"
        )
        result = tpcd_system.execute(sql, strategy=PlanningStrategy.PARTIAL, name="partial_q")
        assert result.succeeded
        assert result.reoptimizations >= 1

    def test_default_strategy_partial_when_no_statistics(self, orders_and_items):
        orders, items = orders_and_items
        system = Tukwila()
        system.register_source(DataSource("ord", orders, lan()), publish_statistics=False)
        system.register_source(DataSource("item", items, lan()), publish_statistics=False)
        reformulated = system.reformulate(JOIN_SQL, name="nostats")
        assert system._default_strategy(reformulated) == PlanningStrategy.PARTIAL

    @pytest.mark.parametrize(
        "mode",
        [
            ReoptimizationMode.SAVED_STATE,
            ReoptimizationMode.SAVED_STATE_NO_POINTERS,
            ReoptimizationMode.SCRATCH,
        ],
    )
    def test_reoptimization_modes_agree(self, tiny_tpcd, mode):
        system = Tukwila(reoptimization_mode=mode)
        for table in ["nation", "supplier", "customer"]:
            system.register_source(DataSource(table, tiny_tpcd[table], lan()))
        sql = (
            "select * from nation, supplier, customer "
            "where supplier.s_nationkey = nation.n_nationkey "
            "and customer.c_nationkey = nation.n_nationkey"
        )
        result = system.execute(sql, strategy=PlanningStrategy.MATERIALIZE_REPLAN, name="modes")
        assert result.succeeded
        expected = (
            tiny_tpcd["nation"].qualified()
            .join(tiny_tpcd["supplier"].qualified(), ["n_nationkey"], ["s_nationkey"])
            .join(tiny_tpcd["customer"].qualified(), ["n_nationkey"], ["c_nationkey"])
        )
        assert result.cardinality == expected.cardinality


class TestMirrorsAndFailures:
    def test_mirror_used_when_primary_dead(self, orders_and_items):
        orders, items = orders_and_items
        system = Tukwila()
        primary = DataSource("ord", orders, dead())
        system.register_source(primary)
        system.register_source(
            make_mirror(primary, "ord-mirror", lan()), SourceDescription("ord-mirror", "ord")
        )
        system.register_source(DataSource("item", items, lan()))
        system.declare_mirrors("ord", "ord-mirror")
        system.engine_config.default_timeout_ms = 500.0
        result = system.execute(JOIN_SQL, name="mirror_q")
        assert result.succeeded
        expected = reference_join(orders, items, "o_id", "i_order")
        assert attribute_multiset(result.answer) == attribute_multiset(expected)

    def test_unreachable_single_source_fails_cleanly(self, orders_and_items):
        orders, items = orders_and_items
        system = Tukwila()
        system.register_source(DataSource("ord", orders, dead()))
        system.register_source(DataSource("item", items, lan()))
        system.engine_config.default_timeout_ms = 200.0
        result = system.execute(JOIN_SQL, name="dead_q")
        assert result.status in (ExecutionStatus.FAILED, ExecutionStatus.RESCHEDULE_REQUESTED)
        assert not result.succeeded
