"""Unit tests for repro.query.mediated."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.query.mediated import MediatedRelation, MediatedSchema
from repro.storage.schema import Schema


@pytest.fixture
def schema():
    return MediatedSchema.from_relations(
        {"book": Schema.of("isbn:int", "title:str"), "review": Schema.of("isbn:int", "stars:int")}
    )


def test_from_relations_and_lookup(schema):
    assert len(schema) == 2
    assert schema.relation_names == ["book", "review"]
    assert schema.get("book").attribute_names == ("isbn", "title")
    assert "book" in schema


def test_duplicate_relation_rejected(schema):
    with pytest.raises(SchemaError):
        schema.add_relation("book", Schema.of("x:int"))


def test_unknown_relation_raises(schema):
    with pytest.raises(QueryError):
        schema.get("magazine")


def test_validate_query_relations(schema):
    schema.validate_query_relations(["book", "review"])
    with pytest.raises(QueryError):
        schema.validate_query_relations(["book", "magazine"])


def test_mediated_relation_requires_name():
    with pytest.raises(SchemaError):
        MediatedRelation("", Schema.of("a:int"))


def test_add_relation_returns_relation(schema):
    relation = schema.add_relation("author", Schema.of("name:str"), description="authors")
    assert relation.description == "authors"
    assert "author" in schema
