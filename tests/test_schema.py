"""Unit tests for repro.storage.schema."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import Attribute, Schema, TYPE_SIZES, merge_union_schema


class TestAttribute:
    def test_defaults_size_from_type(self):
        attr = Attribute("x", "int")
        assert attr.avg_size == TYPE_SIZES["int"]

    def test_explicit_size_kept(self):
        attr = Attribute("x", "str", avg_size=100)
        assert attr.avg_size == 100

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", "blob")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", "int")

    def test_base_name_and_qualifier(self):
        attr = Attribute("orders.o_id", "int")
        assert attr.base_name == "o_id"
        assert attr.qualifier == "orders"
        assert Attribute("o_id", "int").qualifier is None

    def test_qualified_replaces_existing_qualifier(self):
        attr = Attribute("orders.o_id", "int").qualified("o2")
        assert attr.name == "o2.o_id"

    def test_renamed_preserves_type(self):
        attr = Attribute("a", "float").renamed("b")
        assert attr.name == "b"
        assert attr.type_name == "float"


class TestSchema:
    def test_of_mixed_specs(self):
        schema = Schema.of("a:int", ("b", "float"), Attribute("c", "str"), "d")
        assert schema.names == ("a", "b", "c", "d")
        assert schema.attribute("b").type_name == "float"
        assert schema.attribute("d").type_name == "str"

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a:int", "a:str")

    def test_index_of_qualified_and_base(self):
        schema = Schema.of("t.a:int", "t.b:str")
        assert schema.index_of("t.a") == 0
        assert schema.index_of("b") == 1

    def test_index_of_ambiguous_base_name(self):
        schema = Schema.of("t.a:int", "u.a:int")
        with pytest.raises(SchemaError):
            schema.index_of("a")
        assert schema.index_of("u.a") == 1

    def test_index_of_missing(self):
        schema = Schema.of("a:int")
        with pytest.raises(SchemaError):
            schema.index_of("zzz")

    def test_contains(self):
        schema = Schema.of("t.a:int")
        assert "t.a" in schema
        assert "a" in schema
        assert "b" not in schema

    def test_project_preserves_order_given(self):
        schema = Schema.of("a:int", "b:str", "c:float")
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")

    def test_join_concatenates(self):
        left = Schema.of("a:int")
        right = Schema.of("b:str")
        assert left.join(right).names == ("a", "b")

    def test_qualified(self):
        schema = Schema.of("a:int", "b:str").qualified("rel")
        assert schema.names == ("rel.a", "rel.b")

    def test_rename_by_base_and_qualified(self):
        schema = Schema.of("t.a:int", "t.b:str")
        renamed = schema.rename({"t.a": "t.x", "b": "y"})
        assert renamed.names == ("t.x", "y")

    def test_tuple_size_includes_overhead(self):
        schema = Schema.of("a:int", "b:int")
        assert schema.tuple_size == 16 + 2 * TYPE_SIZES["int"]

    def test_compatible_with_same_types(self):
        a = Schema.of("x:int", "y:str")
        b = Schema.of("p:int", "q:str")
        c = Schema.of("p:str", "q:str")
        assert a.compatible_with(b)
        assert not a.compatible_with(c)
        assert not a.compatible_with(Schema.of("x:int"))

    def test_iteration_and_len(self):
        schema = Schema.of("a:int", "b:str")
        assert len(schema) == 2
        assert [attr.name for attr in schema] == ["a", "b"]


class TestMergeUnionSchema:
    def test_keeps_left_names(self):
        left = Schema.of("a:int", "b:str")
        right = Schema.of("x:int", "y:str")
        assert merge_union_schema(left, right).names == ("a", "b")

    def test_rejects_incompatible(self):
        with pytest.raises(SchemaError):
            merge_union_schema(Schema.of("a:int"), Schema.of("b:str"))
