"""Unit tests for repro.network.simclock."""

import pytest

from repro.network.simclock import SimClock


def test_advance_to_moves_forward_only():
    clock = SimClock()
    assert clock.advance_to(10.0) == 10.0
    assert clock.advance_to(5.0) == 10.0
    assert clock.now == 10.0
    assert clock.stats.wait_ms == 10.0


def test_consume_cpu_and_io_accumulate():
    clock = SimClock()
    clock.consume_cpu(2.0)
    clock.consume_io(3.0)
    assert clock.now == 5.0
    assert clock.stats.cpu_ms == 2.0
    assert clock.stats.io_ms == 3.0
    assert clock.stats.total_ms == 5.0


def test_negative_durations_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.consume_cpu(-1.0)
    with pytest.raises(ValueError):
        clock.consume_io(-0.5)


def test_reset():
    clock = SimClock(start_ms=100.0)
    clock.consume_cpu(5.0)
    clock.reset()
    assert clock.now == 0.0
    assert clock.stats.total_ms == 0.0


def test_start_offset():
    clock = SimClock(start_ms=50.0)
    assert clock.now == 50.0
    clock.advance_to(60.0)
    assert clock.stats.wait_ms == 10.0
