"""Tests for the interleaved planning-and-execution driver."""

from repro.catalog.catalog import DataSourceCatalog
from repro.core.interleaving import InterleavedExecutionDriver
from repro.engine.context import EngineConfig
from repro.network.profiles import lan, slow_start
from repro.network.source import DataSource
from repro.optimizer.optimizer import Optimizer, OptimizerConfig, PlanningStrategy
from repro.query.conjunctive import ConjunctiveQuery, JoinPredicate
from repro.query.reformulation import Reformulator
from repro.storage.memory import MB

from helpers import make_relation


def star_catalog(sizes, profiles=None):
    """Relations all joinable on `k` through a hub relation."""
    profiles = profiles or {}
    catalog = DataSourceCatalog()
    for name, size in sizes:
        rel = make_relation(name, ["k:int", "v:int"], [(i % 25, i) for i in range(size)])
        catalog.register_source(DataSource(name, rel, profiles.get(name, lan())))
    return catalog


def chain_query(names, name="q"):
    predicates = [JoinPredicate(names[i], "k", names[i + 1], "k") for i in range(len(names) - 1)]
    return ConjunctiveQuery(name=name, relations=names, join_predicates=predicates)


SIZES = [("a", 60), ("b", 25), ("c", 40)]
NAMES = ["a", "b", "c"]


def make_driver(catalog, **kwargs):
    optimizer = Optimizer(catalog, OptimizerConfig(memory_pool_bytes=kwargs.pop("pool", None)))
    return InterleavedExecutionDriver(catalog, optimizer, **kwargs)


def reference_cardinality(catalog, names):
    result = catalog.source(names[0]).relation.qualified()
    for prev, name in zip(names, names[1:]):
        right = catalog.source(name).relation.qualified()
        result = result.join(right, [f"{prev}.k"], [f"{name}.k"])
    return result.cardinality


class TestDriver:
    def test_completes_and_matches_reference(self):
        catalog = star_catalog(SIZES)
        driver = make_driver(catalog)
        reformulated = Reformulator(catalog).reformulate(chain_query(NAMES))
        result = driver.run(reformulated, strategy=PlanningStrategy.MATERIALIZE_REPLAN)
        assert result.succeeded
        assert result.cardinality == reference_cardinality(catalog, NAMES)

    def test_replans_when_estimates_wrong(self):
        catalog = star_catalog(SIZES)
        driver = make_driver(catalog)
        reformulated = Reformulator(catalog).reformulate(chain_query(NAMES))
        result = driver.run(reformulated, strategy=PlanningStrategy.MATERIALIZE_REPLAN)
        # Unknown selectivities + skewed key distribution force at least one replan.
        assert result.reoptimizations >= 1
        assert len(result.plans) >= 2

    def test_pipeline_strategy_never_replans(self):
        catalog = star_catalog(SIZES)
        driver = make_driver(catalog)
        reformulated = Reformulator(catalog).reformulate(chain_query(NAMES, name="pipe"))
        result = driver.run(reformulated, strategy=PlanningStrategy.PIPELINE)
        assert result.succeeded
        assert result.reoptimizations == 0

    def test_partial_plans_iterate_to_completion(self):
        catalog = star_catalog(SIZES + [("d", 30)])
        driver = make_driver(catalog)
        reformulated = Reformulator(catalog).reformulate(chain_query(NAMES + ["d"], name="part"))
        result = driver.run(reformulated, strategy=PlanningStrategy.PARTIAL)
        assert result.succeeded
        # The deferred remainder of the query required at least one re-invocation.
        assert result.reoptimizations >= 1
        assert result.cardinality == reference_cardinality(catalog, NAMES + ["d"])

    def test_rescheduling_on_slow_source_still_completes(self):
        profiles = {"c": slow_start(delay_ms=3_000.0)}
        catalog = star_catalog(SIZES, profiles)
        driver = make_driver(catalog, engine_config=EngineConfig(default_timeout_ms=1_000.0))
        reformulated = Reformulator(catalog).reformulate(chain_query(NAMES, name="slow"))
        result = driver.run(reformulated, strategy=PlanningStrategy.MATERIALIZE)
        assert result.succeeded
        # The timeout rule fired at least once and the plan was rescheduled.
        assert result.reschedules >= 1
        assert result.cardinality == reference_cardinality(catalog, NAMES)

    def test_total_time_accumulates_across_replans(self):
        catalog = star_catalog(SIZES)
        driver = make_driver(catalog)
        reformulated = Reformulator(catalog).reformulate(chain_query(NAMES, name="time"))
        result = driver.run(reformulated, strategy=PlanningStrategy.MATERIALIZE_REPLAN)
        assert result.total_time_ms >= max(
            frag.completed_at_ms for frag in result.stats.fragment_stats
        )

    def test_memory_pool_respected_across_replans(self):
        catalog = star_catalog(SIZES)
        driver = make_driver(catalog, pool=2 * MB)
        reformulated = Reformulator(catalog).reformulate(chain_query(NAMES, name="mem"))
        result = driver.run(reformulated, strategy=PlanningStrategy.MATERIALIZE_REPLAN)
        assert result.succeeded
