"""Adaptive predicate ordering in the Select batch evaluator.

The batch evaluator tracks each predicate's observed selectivity and
periodically re-sorts the compiled conjunction most-selective-first
(:data:`~repro.engine.operators.select.REORDER_INTERVAL_BATCHES`).  On a
skewed workload — a cheap, unselective predicate written first and a highly
selective one written last — the adaptive order must converge to running the
selective predicate first, cutting comparator calls without changing results.
"""

from __future__ import annotations

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.operators.scan import WrapperScan
from repro.engine.operators.select import REORDER_INTERVAL_BATCHES, Select
from repro.network.profiles import lan
from repro.network.source import DataSource
from repro.query.conjunctive import SelectionPredicate

from helpers import make_relation, multiset

ROWS = 4000

#: Written order: the wide predicate first (passes ~99%), the narrow one last
#: (passes ~1%) — the worst case for a static evaluator.
PREDICATES = [
    SelectionPredicate("item", "qty", "<", 99),   # wide: ~99% pass
    SelectionPredicate("item", "grade", "=", 0),  # narrow: ~1% pass
]


@pytest.fixture
def catalog():
    items = make_relation(
        "item",
        ["sku:int", "qty:int", "grade:int"],
        [(i, i % 100, i % 100) for i in range(ROWS)],
    )
    catalog = DataSourceCatalog()
    catalog.register_source(DataSource("item", items, lan()))
    return catalog


def run_select(catalog, adaptive: bool, batch_size: int = 64, columnar: bool = True):
    context = ExecutionContext(
        catalog, config=EngineConfig(columnar_batches=columnar)
    )
    select = Select(
        "sel",
        context,
        WrapperScan("scan_item", context, "item"),
        list(PREDICATES),
        adaptive=adaptive,
    )
    select.open()
    rows = []
    while True:
        batch = select.next_batch(batch_size)
        if not batch:
            break
        rows.extend(batch)
    select.close()
    return select, rows


class TestAdaptivePredicateOrdering:
    def test_adaptive_beats_static_order_on_skew(self, catalog):
        static, static_rows = run_select(catalog, adaptive=False)
        adaptive, adaptive_rows = run_select(catalog, adaptive=True)
        assert multiset(adaptive_rows) == multiset(static_rows)
        assert len(adaptive_rows) == ROWS // 100
        assert adaptive.reorder_count >= 1
        # The static order scans the wide predicate's column for every row;
        # after the first re-sort the adaptive order runs the narrow
        # predicate first, so the wide one only sees its ~1% survivors.
        assert adaptive.comparator_calls < static.comparator_calls * 0.7, (
            f"adaptive={adaptive.comparator_calls} static={static.comparator_calls}"
        )

    def test_adaptive_converges_to_selective_first(self, catalog):
        select, _ = run_select(catalog, adaptive=True)
        # After convergence the compiled order leads with the narrow
        # (grade=0) predicate: its bound column index is the grade column.
        schema_index = select.child.output_schema.index_of("item.grade")
        assert select._compiled[0][0] == schema_index

    def test_row_backed_drive_adapts_too(self, catalog):
        static, static_rows = run_select(catalog, adaptive=False, columnar=False)
        adaptive, adaptive_rows = run_select(catalog, adaptive=True, columnar=False)
        assert multiset(adaptive_rows) == multiset(static_rows)
        assert adaptive.comparator_calls < static.comparator_calls

    def test_reorder_interval_respected(self, catalog):
        select, _ = run_select(catalog, adaptive=True, batch_size=64)
        batches = ROWS // 64 + 1
        assert select.reorder_count <= batches // REORDER_INTERVAL_BATCHES + 1

    def test_results_stable_across_batch_sizes(self, catalog):
        baseline = None
        for batch_size in (3, 64, 512):
            _, rows = run_select(catalog, adaptive=True, batch_size=batch_size)
            counts = multiset(rows)
            if baseline is None:
                baseline = counts
            else:
                assert counts == baseline


DICT_ROWS = 2000
DICT_DISTINCT = 8


@pytest.fixture
def string_catalog():
    items = make_relation(
        "item",
        ["sku:int", "color:str"],
        [(i, f"color{i % DICT_DISTINCT}") for i in range(DICT_ROWS)],
    )
    catalog = DataSourceCatalog()
    catalog.register_source(DataSource("item", items, lan()))
    return catalog


def run_string_select(catalog, encoded: bool, batch_size: int = 256):
    context = ExecutionContext(catalog, config=EngineConfig(encoded_columns=encoded))
    select = Select(
        "sel",
        context,
        WrapperScan("scan_item", context, "item"),
        [SelectionPredicate("item", "color", "=", "color3")],
        adaptive=False,
    )
    select.open()
    rows = []
    while True:
        batch = select.next_batch(batch_size)
        if not batch:
            break
        rows.extend(batch)
    select.close()
    return select, rows


class TestDictionaryAwareSelect:
    """String predicates evaluate once per distinct dictionary entry."""

    def test_comparator_runs_once_per_distinct_value(self, string_catalog):
        encoded, encoded_rows = run_string_select(string_catalog, encoded=True)
        plain, plain_rows = run_string_select(string_catalog, encoded=False)
        assert multiset(encoded_rows) == multiset(plain_rows)
        assert len(encoded_rows) == DICT_ROWS // DICT_DISTINCT
        # Plain columns compare every row; the dictionary-aware path pays
        # one comparator call per distinct entry, ever.
        assert plain.comparator_calls == DICT_ROWS
        assert encoded.comparator_calls == DICT_DISTINCT

    def test_mask_is_memoized_across_batches(self, string_catalog):
        # Many small batches over the same dictionary: the memoized mask
        # serves every batch without re-evaluating already-seen entries.
        select, rows = run_string_select(string_catalog, encoded=True, batch_size=16)
        assert len(rows) == DICT_ROWS // DICT_DISTINCT
        assert select.comparator_calls == DICT_DISTINCT

    def test_selectivity_counters_stay_row_based(self, string_catalog):
        select, _ = run_string_select(string_catalog, encoded=True)
        tested, passed = select._observed[0]
        assert tested == DICT_ROWS
        assert passed == DICT_ROWS // DICT_DISTINCT
