"""Unit and integration tests for source-data caching (repro.network.cache)."""

import pytest

from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.operators.scan import WrapperScan
from repro.network.cache import CachingScanFeed, SourceCache
from repro.network.profiles import wide_area
from repro.network.simclock import SimClock
from repro.storage.schema import Schema
from repro.storage.tuples import Row
from repro.core.system import Tukwila
from repro.network.source import DataSource


SCHEMA = Schema.of("s.k:int", "s.v:str")


def rows(count: int = 5) -> list[Row]:
    return [Row(SCHEMA, (i, f"v{i}")) for i in range(count)]


class TestSourceCache:
    def test_miss_then_fill_then_hit(self):
        cache = SourceCache()
        assert cache.lookup("src", now_ms=0.0) is None
        cache.fill("src", SCHEMA, rows(), now_ms=10.0)
        entry = cache.lookup("src", now_ms=20.0)
        assert entry is not None
        assert entry.cardinality == 5
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.fills == 1
        assert "src" in cache
        assert cache.cached_sources == ["src"]

    def test_expiry_by_age(self):
        cache = SourceCache(max_age_ms=100.0)
        cache.fill("src", SCHEMA, rows(), now_ms=0.0)
        assert cache.lookup("src", now_ms=50.0) is not None
        assert cache.lookup("src", now_ms=500.0) is None
        assert "src" not in cache
        assert cache.stats.invalidations == 1

    def test_eviction_keeps_newest(self):
        cache = SourceCache(max_entries=2)
        cache.fill("a", SCHEMA, rows(), now_ms=1.0)
        cache.fill("b", SCHEMA, rows(), now_ms=2.0)
        cache.fill("c", SCHEMA, rows(), now_ms=3.0)
        assert cache.cached_sources == ["b", "c"]

    def test_invalidate_and_clear(self):
        cache = SourceCache()
        cache.fill("a", SCHEMA, rows(), now_ms=0.0)
        cache.invalidate("missing")  # no error
        cache.invalidate("a")
        assert "a" not in cache
        cache.fill("b", SCHEMA, rows(), now_ms=0.0)
        cache.clear()
        assert cache.cached_sources == []

    def test_hit_rate(self):
        cache = SourceCache()
        cache.lookup("a", 0.0)
        cache.fill("a", SCHEMA, rows(), now_ms=0.0)
        cache.lookup("a", 1.0)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            SourceCache(max_entries=0)

    def test_entry_as_relation(self):
        cache = SourceCache()
        entry = cache.fill("src", SCHEMA, rows(3), now_ms=0.0)
        relation = entry.as_relation()
        assert relation.cardinality == 3
        assert relation.name == "src"


class TestCachingScanFeed:
    def test_streams_cached_rows_at_local_speed(self):
        cache = SourceCache()
        entry = cache.fill("src", SCHEMA, rows(4), now_ms=0.0)
        clock = SimClock()
        feed = CachingScanFeed(entry, clock)
        fetched = []
        while not feed.exhausted:
            assert feed.next_arrival() == clock.now
            fetched.append(feed.fetch())
        assert len(fetched) == 4
        assert feed.fetch() is None
        assert clock.now < 1.0  # no network latency was charged


class TestWrapperScanCaching:
    @pytest.fixture
    def cached_context(self, joinable_catalog):
        return ExecutionContext(
            joinable_catalog, config=EngineConfig(enable_source_caching=True)
        )

    def test_second_scan_served_from_cache(self, cached_context):
        first = WrapperScan("scan1", cached_context, "ord")
        first.open()
        assert len(list(first.iterate())) == 3
        first.close()
        assert "ord" in cached_context.source_cache.cached_sources

        second = WrapperScan("scan2", cached_context, "ord")
        second.open()
        assert second.served_from_cache
        assert len(list(second.iterate())) == 3
        # Only the first scan opened a real connection.
        assert cached_context.catalog.source("ord").stats.connections_opened == 1

    def test_partial_read_does_not_fill_cache(self, cached_context):
        scan = WrapperScan("scan1", cached_context, "ord")
        scan.open()
        scan.next()
        scan.close()
        assert "ord" not in cached_context.source_cache

    def test_caching_disabled_by_default(self, context):
        scan = WrapperScan("scan1", context, "ord")
        scan.open()
        list(scan.iterate())
        scan.close()
        assert context.source_cache is None


class TestSystemLevelCaching:
    def test_repeated_query_is_faster_with_shared_cache(self, orders_and_items):
        orders, items = orders_and_items
        system = Tukwila(engine_config=EngineConfig(enable_source_caching=True))
        system.register_source(DataSource("ord", orders, wide_area()))
        system.register_source(DataSource("item", items, wide_area()))
        sql = "select * from ord, item where ord.o_id = item.i_order"
        cold = system.execute(sql, name="cold")
        warm = system.execute(sql, name="warm")
        assert cold.succeeded and warm.succeeded
        assert cold.cardinality == warm.cardinality
        assert warm.total_time_ms < cold.total_time_ms / 2
        assert system.source_cache.stats.hits >= 2
