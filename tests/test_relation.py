"""Unit tests for repro.storage.relation."""

import pytest

from repro.errors import SchemaError
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.tuples import Row

from helpers import make_relation


class TestConstruction:
    def test_from_values_and_len(self):
        rel = make_relation("r", ["a:int", "b:str"], [(1, "x"), (2, "y")])
        assert len(rel) == 2
        assert rel.cardinality == 2

    def test_from_dicts(self):
        schema = Schema.of("a:int", "b:str")
        rel = Relation.from_dicts("r", schema, [{"a": 1, "b": "x"}])
        assert rel[0].values == (1, "x")

    def test_append_arity_check(self):
        rel = make_relation("r", ["a:int"], [(1,)])
        with pytest.raises(SchemaError):
            rel.append(Row(Schema.of("a:int", "b:int"), (1, 2)))

    def test_qualified_renames_attributes(self):
        rel = make_relation("r", ["a:int"], [(1,)]).qualified()
        assert rel.schema.names == ("r.a",)
        assert rel[0]["r.a"] == 1


class TestAlgebra:
    def test_select(self, people_relation):
        adults = people_relation.select(lambda row: row["score"] >= 8.0)
        assert {row["name"] for row in adults} == {"ada", "cyd"}

    def test_project_keeps_duplicates(self):
        rel = make_relation("r", ["a:int", "b:str"], [(1, "x"), (1, "y")])
        projected = rel.project(["a"])
        assert [row.values for row in projected] == [(1,), (1,)]

    def test_join_matches_expected_pairs(self, orders_and_items):
        orders, items = orders_and_items
        joined = orders.qualified().join(items.qualified(), ["o_id"], ["i_order"])
        assert joined.cardinality == 3
        assert all(row["o_id"] == row["i_order"] for row in joined)

    def test_join_key_length_mismatch(self, orders_and_items):
        orders, items = orders_and_items
        with pytest.raises(Exception):
            orders.join(items, ["o_id"], ["i_order", "i_sku"])

    def test_union_compatible(self):
        a = make_relation("a", ["x:int"], [(1,), (2,)])
        b = make_relation("b", ["y:int"], [(2,), (3,)])
        union = a.union(b)
        assert union.cardinality == 4

    def test_union_incompatible_rejected(self):
        a = make_relation("a", ["x:int"], [(1,)])
        b = make_relation("b", ["y:str"], [("s",)])
        with pytest.raises(SchemaError):
            a.union(b)

    def test_distinct(self):
        rel = make_relation("r", ["a:int"], [(1,), (1,), (2,)])
        assert rel.distinct().cardinality == 2

    def test_multiset(self):
        rel = make_relation("r", ["a:int"], [(1,), (1,), (2,)])
        assert rel.multiset() == {(1,): 2, (2,): 1}


class TestStatisticsHelpers:
    def test_column_and_distinct_count(self, people_relation):
        assert len(people_relation.column("id")) == 4
        assert people_relation.distinct_count("id") == 4

    def test_size_bytes(self, people_relation):
        assert people_relation.size_bytes == people_relation.schema.tuple_size * 4
