"""Unit tests for repro.storage.hash_table."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import SimulatedDisk
from repro.storage.hash_table import BucketedHashTable, bucket_of
from repro.storage.memory import MemoryBudget
from repro.storage.schema import Schema
from repro.storage.tuples import Row

SCHEMA = Schema.of("k:int", "v:str")


def make_row(key: int, value: str = "x") -> Row:
    return Row(SCHEMA, (key, value))


def make_table(limit_bytes=None, buckets=8, name="t") -> BucketedHashTable:
    return BucketedHashTable(
        ["k"], MemoryBudget(limit_bytes), SimulatedDisk(), bucket_count=buckets, name=name
    )


class TestBasicOperations:
    def test_insert_and_probe(self):
        table = make_table()
        table.insert(make_row(1, "a"))
        table.insert(make_row(1, "b"))
        table.insert(make_row(2, "c"))
        assert {row["v"] for row in table.probe((1,))} == {"a", "b"}
        assert table.probe((99,)) == []
        assert table.resident_rows == 3

    def test_probe_row_uses_given_keys(self):
        table = make_table()
        table.insert(make_row(5, "a"))
        other_schema = Schema.of("fk:int")
        probe = Row(other_schema, (5,))
        assert len(table.probe_row(probe, ["fk"])) == 1

    def test_budget_charged_per_row(self):
        budget = MemoryBudget(10_000)
        table = BucketedHashTable(["k"], budget, SimulatedDisk())
        table.insert(make_row(1))
        assert budget.used_bytes == SCHEMA.tuple_size

    def test_insert_refused_when_budget_full(self):
        table = make_table(limit_bytes=SCHEMA.tuple_size)
        assert table.insert(make_row(1))
        assert not table.insert(make_row(2))
        assert table.resident_rows == 1

    def test_insert_resident_raises_when_full(self):
        table = make_table(limit_bytes=SCHEMA.tuple_size)
        table.insert_resident(make_row(1))
        with pytest.raises(StorageError):
            table.insert_resident(make_row(2))

    def test_bucket_count_validation(self):
        with pytest.raises(StorageError):
            make_table(buckets=0)

    def test_bucket_of_deterministic(self):
        assert bucket_of((5,), 16) == bucket_of((5,), 16)
        assert 0 <= bucket_of(("abc", 3), 7) < 7


class TestFlushing:
    def test_flush_bucket_releases_memory_and_spills(self):
        budget = MemoryBudget(None)
        disk = SimulatedDisk()
        table = BucketedHashTable(["k"], budget, disk, bucket_count=4)
        rows = [make_row(i) for i in range(20)]
        for row in rows:
            table.insert(row)
        used_before = budget.used_bytes
        index = table.flush_largest_bucket()
        assert index is not None
        assert budget.used_bytes < used_before
        assert disk.stats.tuples_written > 0
        assert index in table.flushed_buckets

    def test_inserts_into_flushed_bucket_go_to_disk(self):
        table = make_table(buckets=1)
        table.insert(make_row(1))
        table.flush_bucket(0)
        assert not table.insert(make_row(2))
        assert table.resident_rows == 0
        assert len(list(table.overflow_rows(0))) == 2

    def test_flush_all(self):
        table = make_table(buckets=4)
        for i in range(10):
            table.insert(make_row(i))
        flushed = table.flush_all()
        assert flushed == 10
        assert table.resident_rows == 0
        assert not table.has_resident_data

    def test_flush_largest_picks_biggest(self):
        table = make_table(buckets=2)
        # Bucket of key k is deterministic; put more rows behind one key.
        heavy_key, light_key = 0, 1
        if bucket_of((0,), 2) == bucket_of((1,), 2):
            light_key = 2
        for _ in range(5):
            table.insert(make_row(heavy_key))
        table.insert(make_row(light_key))
        flushed_index = table.flush_largest_bucket()
        assert flushed_index == bucket_of((heavy_key,), 2)

    def test_flush_largest_none_when_empty(self):
        assert make_table().flush_largest_bucket() is None

    def test_overflow_rows_marks_preserved(self):
        table = make_table(buckets=1)
        table.insert(make_row(1))
        table.flush_bucket(0, mark_rows=True)
        assert all(marked for _, marked in table.overflow_rows(0))

    def test_release_all_returns_budget(self):
        budget = MemoryBudget(None)
        table = BucketedHashTable(["k"], budget, SimulatedDisk())
        for i in range(5):
            table.insert(make_row(i))
        table.release_all()
        assert budget.used_bytes == 0
        assert table.resident_rows == 0

    def test_resident_items_iterates_all(self):
        table = make_table()
        for i in range(5):
            table.insert(make_row(i))
        assert len(list(table.resident_items())) == 5
