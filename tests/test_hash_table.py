"""Unit tests for repro.storage.hash_table."""

from array import array

import pytest

from repro.errors import StorageError
from repro.storage.batch import Batch
from repro.storage.disk import SimulatedDisk
from repro.storage.hash_table import BucketedHashTable, bucket_of
from repro.storage.memory import MemoryBudget
from repro.storage.schema import Schema
from repro.storage.tuples import Row, counting_row_constructions

SCHEMA = Schema.of("k:int", "v:str")

#: Bytes one resident row charges against the budget: the *encoded* columnar
#: estimate (tables dictionary-encode string columns by default).
ROW_BYTES = SCHEMA.encoded_row_size

#: Bytes one new dictionary entry charges (value length + slot pointer); the
#: default test value is the one-char string "x".
DICT_X_BYTES = 1 + 8

#: All-string schema used by the encoded hot-path guard tests.
STR_SCHEMA = Schema.of("k:str", "v:str")


def make_row(key: int, value: str = "x") -> Row:
    return Row(SCHEMA, (key, value))


def make_table(limit_bytes=None, buckets=8, name="t") -> BucketedHashTable:
    return BucketedHashTable(
        ["k"], MemoryBudget(limit_bytes), SimulatedDisk(), bucket_count=buckets, name=name,
        schema=SCHEMA,
    )


def make_batch(keys, value="x") -> Batch:
    return Batch.from_columns(
        SCHEMA, [array("q", keys), [value] * len(keys)], [0.0] * len(keys)
    )


class TestBasicOperations:
    def test_insert_and_probe(self):
        table = make_table()
        table.insert(make_row(1, "a"))
        table.insert(make_row(1, "b"))
        table.insert(make_row(2, "c"))
        assert {row["v"] for row in table.probe((1,))} == {"a", "b"}
        assert table.probe((99,)) == []
        assert table.resident_rows == 3

    def test_probe_row_uses_given_keys(self):
        table = make_table()
        table.insert(make_row(5, "a"))
        other_schema = Schema.of("fk:int")
        probe = Row(other_schema, (5,))
        assert len(table.probe_row(probe, ["fk"])) == 1

    def test_budget_charged_per_row_in_encoded_bytes(self):
        budget = MemoryBudget(10_000)
        table = BucketedHashTable(["k"], budget, SimulatedDisk())
        table.insert(make_row(1))
        # One encoded row plus the value's dictionary entry, charged once.
        assert table.dictionary_bytes == DICT_X_BYTES
        assert budget.used_bytes == ROW_BYTES + DICT_X_BYTES
        table.insert(make_row(2))
        assert budget.used_bytes == 2 * ROW_BYTES + DICT_X_BYTES

    def test_plain_mode_charges_plain_columnar_bytes(self):
        budget = MemoryBudget(10_000)
        table = BucketedHashTable(["k"], budget, SimulatedDisk(), encoded=False)
        table.insert(make_row(1))
        assert budget.used_bytes == SCHEMA.columnar_row_size
        assert table.dictionary_bytes == 0

    def test_insert_refused_when_budget_full(self):
        table = make_table(limit_bytes=ROW_BYTES)
        assert table.insert(make_row(1))
        assert not table.insert(make_row(2))
        assert table.resident_rows == 1

    def test_insert_resident_raises_when_full(self):
        table = make_table(limit_bytes=ROW_BYTES)
        table.insert_resident(make_row(1))
        with pytest.raises(StorageError):
            table.insert_resident(make_row(2))

    def test_bucket_count_validation(self):
        with pytest.raises(StorageError):
            make_table(buckets=0)

    def test_bucket_of_deterministic(self):
        assert bucket_of((5,), 16) == bucket_of((5,), 16)
        assert 0 <= bucket_of(("abc", 3), 7) < 7


class TestFlushing:
    def test_flush_bucket_releases_memory_and_spills(self):
        budget = MemoryBudget(None)
        disk = SimulatedDisk()
        table = BucketedHashTable(["k"], budget, disk, bucket_count=4)
        rows = [make_row(i) for i in range(20)]
        for row in rows:
            table.insert(row)
        used_before = budget.used_bytes
        index = table.flush_largest_bucket()
        assert index is not None
        assert budget.used_bytes < used_before
        assert disk.stats.tuples_written > 0
        assert index in table.flushed_buckets

    def test_inserts_into_flushed_bucket_go_to_disk(self):
        table = make_table(buckets=1)
        table.insert(make_row(1))
        table.flush_bucket(0)
        assert not table.insert(make_row(2))
        assert table.resident_rows == 0
        assert len(list(table.overflow_rows(0))) == 2

    def test_flush_all(self):
        table = make_table(buckets=4)
        for i in range(10):
            table.insert(make_row(i))
        flushed = table.flush_all()
        assert flushed == 10
        assert table.resident_rows == 0
        assert not table.has_resident_data

    def test_flush_largest_picks_biggest(self):
        table = make_table(buckets=2)
        # Bucket of key k is deterministic; put more rows behind one key.
        heavy_key, light_key = 0, 1
        if bucket_of((0,), 2) == bucket_of((1,), 2):
            light_key = 2
        for _ in range(5):
            table.insert(make_row(heavy_key))
        table.insert(make_row(light_key))
        flushed_index = table.flush_largest_bucket()
        assert flushed_index == bucket_of((heavy_key,), 2)

    def test_flush_largest_none_when_empty(self):
        assert make_table().flush_largest_bucket() is None

    def test_overflow_rows_marks_preserved(self):
        table = make_table(buckets=1)
        table.insert(make_row(1))
        table.flush_bucket(0, mark_rows=True)
        assert all(marked for _, marked in table.overflow_rows(0))

    def test_release_all_returns_budget(self):
        budget = MemoryBudget(None)
        table = BucketedHashTable(["k"], budget, SimulatedDisk())
        for i in range(5):
            table.insert(make_row(i))
        table.release_all()
        assert budget.used_bytes == 0
        assert table.resident_rows == 0

    def test_resident_items_iterates_all(self):
        table = make_table()
        for i in range(5):
            table.insert(make_row(i))
        assert len(list(table.resident_items())) == 5


class TestColumnarBuckets:
    """Buckets store columnar partitions: typed columns + key->positions map."""

    def test_partition_columns_are_typed(self):
        from repro.storage.columns import DictColumn

        table = make_table()
        table.insert(make_row(1, "a"))
        table.insert(make_row(2, "b"))
        bucket = table.bucket_for_key((1,))
        assert isinstance(bucket.partition.columns[0], array)
        assert bucket.partition.columns[0].typecode == "q"
        # String columns dictionary-encode by default...
        assert isinstance(bucket.partition.columns[1], DictColumn)
        # ...and stay plain object lists with encoding off.
        plain = BucketedHashTable(
            ["k"], MemoryBudget(None), SimulatedDisk(), bucket_count=8,
            schema=SCHEMA, encoded=False,
        )
        plain.insert(make_row(1, "a"))
        assert isinstance(plain.bucket_for_key((1,)).partition.columns[1], list)

    def test_insert_batch_bulk_fast_path(self):
        table = make_table()
        batch = make_batch(list(range(50)))
        assert table.insert_batch(batch) == 50
        assert table.resident_rows == 50
        assert table.budget.used_bytes == 50 * ROW_BYTES + DICT_X_BYTES
        assert {row["k"] for row in table.probe((7,))} == {7}

    def test_insert_batch_stops_at_exact_refusal_row(self):
        # Budget fits 3 rows (plus the shared "x" dictionary entry); the 4th
        # insert must be the refusal position.
        table = make_table(limit_bytes=3 * ROW_BYTES + DICT_X_BYTES)
        batch = make_batch([0, 1, 2, 3, 4])
        stop = table.insert_batch(batch)
        assert stop == 3
        assert table.resident_rows == 3
        assert table.budget.stats.overflow_events == 1

    def test_insert_batch_routes_flushed_buckets_to_disk(self):
        table = make_table(buckets=1)
        table.insert(make_row(0))
        table.flush_bucket(0)
        batch = make_batch([1, 2, 3])
        assert table.insert_batch(batch) == 3
        assert table.resident_rows == 0
        assert len(list(table.overflow_rows(0))) == 4

    def test_gather_matches_returns_columns_and_take(self):
        table = make_table()
        table.insert(make_row(1, "a"))
        table.insert(make_row(2, "b"))
        table.insert(make_row(2, "c"))
        result = table.gather_matches([(1,), (9,), (2,)])
        assert result is not None
        take, columns, arrivals, aligned = result
        assert take == [0, 2, 2]
        assert list(columns[0]) == [1, 2, 2]
        assert sorted(columns[1]) == ["a", "b", "c"]
        assert len(arrivals) == 3
        assert not aligned

    def test_gather_matches_aligned_identity(self):
        table = make_table()
        table.insert(make_row(1, "a"))
        table.insert(make_row(2, "b"))
        take, _, _, aligned = table.gather_matches([(1,), (2,)])
        assert take == [0, 1]
        assert aligned

    def test_gather_matches_respects_positions_subset(self):
        table = make_table()
        table.insert(make_row(1, "a"))
        table.insert(make_row(2, "b"))
        take, columns, _, aligned = table.gather_matches([(1,), (2,)], positions=[1])
        assert take == [1]
        assert list(columns[0]) == [2]
        assert not aligned  # a subset probe can never be the identity

    def test_insert_and_probe_box_no_rows(self):
        """Hash-table insert/probe hot paths must not construct Row objects."""
        table = make_table()
        batch = make_batch(list(range(40)))
        keys = batch.key_tuples(table.key_indices_in(SCHEMA))
        with counting_row_constructions() as counter:
            table.insert_batch(batch, keys=keys)
            table.insert_position(bucket_of((99,), 8), (99,), batch.columns, 0, 0.0)
            assert table.gather_matches(keys) is not None
            assert table.match_positions((5,)) is not None
            assert counter.count == 0
        # The boxed views box (that is their job).
        with counting_row_constructions() as counter:
            assert len(table.probe((5,))) == 1
            assert counter.count == 1

    def test_spill_and_flush_box_no_rows(self):
        table = make_table(buckets=1)
        batch = make_batch(list(range(10)))
        table.insert_batch(batch)
        with counting_row_constructions() as counter:
            table.flush_bucket(0)
            table.spill_position(0, batch.columns, 3, 0.0, marked=True)
            for chunk in table.overflow_chunks(0):
                assert len(chunk) > 0
            assert counter.count == 0


class TestAccountingInvariant:
    """budget.used must equal the tables' resident bytes at all times."""

    def test_flush_releases_atomically(self):
        table = make_table(buckets=4)
        for i in range(20):
            table.insert(make_row(i))
        assert (
            table.budget.used_bytes
            == table.resident_bytes
            == 20 * ROW_BYTES + DICT_X_BYTES
        )
        table.flush_largest_bucket()
        assert table.budget.used_bytes == table.resident_bytes
        table.flush_all()
        # Rows are all on disk; the table dictionary stays resident (spilled
        # chunks reference it) until release_all.
        assert table.budget.used_bytes == table.resident_bytes == DICT_X_BYTES
        table.check_accounting()
        table.release_all()
        assert table.budget.used_bytes == table.resident_bytes == 0

    def test_shared_budget_across_two_tables(self):
        budget = MemoryBudget(None)
        disk = SimulatedDisk()
        left = BucketedHashTable(["k"], budget, disk, bucket_count=4, schema=SCHEMA)
        right = BucketedHashTable(["k"], budget, disk, bucket_count=4, schema=SCHEMA)
        for i in range(10):
            left.insert(make_row(i))
            right.insert(make_row(i))
        assert budget.used_bytes == left.resident_bytes + right.resident_bytes
        left.flush_bucket(0)
        right.flush_all()
        assert budget.used_bytes == left.resident_bytes + right.resident_bytes
        left.check_accounting()
        right.check_accounting()

    def test_check_accounting_detects_drift(self):
        table = make_table()
        table.insert(make_row(1))
        table.budget.release(ROW_BYTES)  # simulate a lost release
        with pytest.raises(StorageError):
            table.check_accounting()

    def test_release_all_restores_budget(self):
        table = make_table(buckets=2)
        batch = make_batch(list(range(12)))
        table.insert_batch(batch)
        table.flush_bucket(0)
        table.release_all()
        assert table.budget.used_bytes == 0
        assert table.resident_bytes == 0


class TestEncodedHotPaths:
    """Dict-encoded insert/probe and spill write/read paths construct no
    Row objects and no per-row string objects: every string that comes back
    *is* (identity, not equality) a dictionary entry."""

    def make_string_batch(self, keys):
        from repro.storage.columns import build_columns, make_dictionaries

        values = [f"K{k:04d}" for k in keys]
        payload = ["hot" if k % 2 else "cold" for k in keys]
        dictionaries = make_dictionaries(STR_SCHEMA)
        columns = build_columns(
            STR_SCHEMA, [values, payload], encoded=True, dictionaries=dictionaries
        )
        return Batch.from_columns(STR_SCHEMA, columns, [0.0] * len(keys))

    def make_string_table(self, limit_bytes=None, buckets=8):
        return BucketedHashTable(
            ["k"], MemoryBudget(limit_bytes), SimulatedDisk(), bucket_count=buckets,
            name="enc", schema=STR_SCHEMA,
        )

    def all_dictionary_string_ids(self, batch, table):
        ids = set()
        from repro.storage.columns import DictColumn

        for column in batch.columns:
            if isinstance(column, DictColumn):
                ids.update(map(id, column.dictionary.values))
        for dictionary in table._dictionaries or ():
            if dictionary is not None:
                ids.update(map(id, dictionary.values))
        return ids

    def test_insert_probe_and_spill_move_no_rows_and_no_new_strings(self):
        table = self.make_string_table(buckets=4)
        batch = self.make_string_batch(list(range(32)))
        keys = batch.key_tuples(table.key_indices_in(STR_SCHEMA))
        with counting_row_constructions() as counter:
            assert table.insert_batch(batch, keys=keys) == 32
            result = table.gather_matches(keys)
            assert result is not None
            table.flush_bucket(0)
            table.spill_position(0, batch.columns, 3, 0.0, marked=True)
            chunks = list(table.overflow_chunks(0))
            assert chunks
            assert counter.count == 0
        canonical = self.all_dictionary_string_ids(batch, table)
        # Probe results decode to canonical dictionary strings...
        _, match_columns, _, _ = result
        for column in match_columns:
            for value in column:
                if isinstance(value, str):
                    assert id(value) in canonical
        # ...and so do spilled chunks read back from disk.
        for chunk in chunks:
            for column in chunk.columns:
                for value in list(column):
                    if isinstance(value, str):
                        assert id(value) in canonical

    def test_adopted_dictionaries_share_the_batch_dictionary(self):
        table = self.make_string_table()
        batch = self.make_string_batch([1, 2, 3])
        table.insert_batch(batch)
        from repro.storage.columns import DictColumn

        key_column = batch.columns[0]
        assert isinstance(key_column, DictColumn)
        assert table._dictionaries[0] is key_column.dictionary
        # Resident partitions move codes, so their columns share it too.
        for bucket in table.buckets:
            if bucket.partition is not None and len(bucket.partition):
                assert bucket.partition.columns[0].dictionary is key_column.dictionary

    def test_dictionary_growth_is_charged_once_per_value(self):
        budget = MemoryBudget(None)
        table = BucketedHashTable(
            ["k"], budget, SimulatedDisk(), bucket_count=4, schema=STR_SCHEMA
        )
        batch = self.make_string_batch([1, 2, 1, 2])
        table.insert_batch(batch)
        # 4 rows + dictionary entries: 2 distinct keys (5 chars) and the
        # two payload values "hot"/"cold".
        expected_dict = 2 * (5 + 8) + (3 + 8) + (4 + 8)
        assert table.dictionary_bytes == expected_dict
        assert budget.used_bytes == 4 * STR_SCHEMA.encoded_row_size + expected_dict
