"""Unit tests for repro.catalog.overlap."""

import pytest

from repro.catalog.overlap import OverlapCatalog
from repro.errors import CatalogError


@pytest.fixture
def catalog():
    return OverlapCatalog()


def test_default_overlap_is_zero(catalog):
    assert catalog.overlap("a", "b") == 0.0


def test_set_and_get_overlap_directional(catalog):
    catalog.set_overlap("a", "b", 0.8)
    assert catalog.overlap("a", "b") == 0.8
    assert catalog.overlap("b", "a") == 0.0


def test_invalid_probability_rejected(catalog):
    with pytest.raises(CatalogError):
        catalog.set_overlap("a", "b", 1.5)


def test_mirrors(catalog):
    catalog.set_mirrors("a", "b")
    assert catalog.are_mirrors("a", "b")
    assert catalog.are_mirrors("b", "a")
    assert catalog.mirrors_of("a", ["a", "b", "c"]) == ["b"]


def test_expected_coverage_independent_sources(catalog):
    catalog.set_overlap("a", "b", 0.5)
    catalog.set_overlap("a", "c", 0.5)
    assert catalog.expected_coverage("a", ["b", "c"]) == pytest.approx(0.75)
    assert catalog.expected_coverage("a", ["a", "b"]) == 1.0
    assert catalog.expected_coverage("a", []) == 0.0


def test_rank_by_coverage(catalog):
    catalog.set_overlap("a", "b", 0.2)
    catalog.set_overlap("a", "c", 0.9)
    assert catalog.rank_by_coverage("a", ["b", "c", "a"]) == ["c", "b"]


def test_rank_ties_broken_by_name(catalog):
    catalog.set_overlap("a", "x", 0.5)
    catalog.set_overlap("a", "b", 0.5)
    assert catalog.rank_by_coverage("a", ["x", "b"]) == ["b", "x"]


def test_entries_sorted(catalog):
    catalog.set_overlap("b", "a", 0.3)
    catalog.set_overlap("a", "b", 0.2)
    entries = catalog.entries()
    assert [(e.container, e.contained) for e in entries] == [("a", "b"), ("b", "a")]
