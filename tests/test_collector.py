"""Unit tests for the dynamic collector operator."""

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import ExecutionContext
from repro.engine.operators.collector import DynamicCollector
from repro.engine.operators.scan import WrapperScan
from repro.errors import ExecutionError
from repro.network.profiles import dead, lan, slow_start, wide_area
from repro.network.source import DataSource, make_mirror
from repro.plan.rules import EventType

from helpers import make_relation


@pytest.fixture
def bib_catalog():
    """Three overlapping bibliography sources: primary, full mirror, partial mirror."""
    books = make_relation(
        "bib", ["isbn:int", "title:str"], [(i, f"book{i}") for i in range(20)]
    )
    catalog = DataSourceCatalog()
    primary = DataSource("bib-main", books, lan())
    catalog.register_source(primary)
    catalog.register_source(make_mirror(primary, "bib-mirror", wide_area()))
    catalog.register_source(make_mirror(primary, "bib-partial", lan(), coverage=0.6, seed=2))
    return catalog


def make_collector(context, sources, **kwargs):
    children = [WrapperScan(f"scan_{name}", context, name) for name in sources]
    return DynamicCollector("coll1", context, children, **kwargs)


class TestBasicUnion:
    def test_contact_all_without_dedup_returns_bag_union(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(context, ["bib-main", "bib-mirror"], dedup_keys=None)
        collector.open()
        rows = list(collector.iterate())
        assert len(rows) == 40

    def test_dedup_suppresses_mirror_duplicates(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(
            context, ["bib-main", "bib-mirror"], dedup_keys=["bib.isbn"]
        )
        collector.open()
        rows = list(collector.iterate())
        assert len(rows) == 20
        assert len({row["isbn"] for row in rows}) == 20

    def test_requires_children(self, joinable_catalog):
        context = ExecutionContext(joinable_catalog)
        with pytest.raises(ExecutionError):
            DynamicCollector("coll", context, [])

    def test_duplicate_child_ids_rejected(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        child_a = WrapperScan("same", context, "bib-main")
        child_b = WrapperScan("same2", context, "bib-mirror")
        child_b.operator_id = "same"
        with pytest.raises(ExecutionError):
            DynamicCollector("coll", context, [child_a, child_b])

    def test_unknown_initially_active_rejected(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        with pytest.raises(ExecutionError):
            make_collector(context, ["bib-main"], initially_active=["ghost"])


class TestPolicyBehaviour:
    def test_initially_active_limits_contacted_sources(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(
            context,
            ["bib-main", "bib-mirror"],
            initially_active=["scan_bib-main"],
            dedup_keys=["bib.isbn"],
        )
        collector.open()
        rows = list(collector.iterate())
        assert len(rows) == 20
        assert collector.contacted_children == ["scan_bib-main"]
        # The mirror's source was never opened.
        assert bib_catalog.source("bib-mirror").stats.connections_opened == 0

    def test_fallback_activated_when_primary_dead(self, bib_catalog):
        bib_catalog.source("bib-main").set_profile(dead())
        context = ExecutionContext(bib_catalog)
        context.config.default_timeout_ms = 1_000.0
        collector = make_collector(
            context,
            ["bib-main", "bib-mirror"],
            initially_active=["scan_bib-main"],
            dedup_keys=["bib.isbn"],
        )
        collector.open()
        rows = list(collector.iterate())
        bib_catalog.source("bib-main").set_profile(lan())
        assert len(rows) == 20
        assert "scan_bib-mirror" in collector.contacted_children

    def test_no_fallback_when_disabled(self, bib_catalog):
        bib_catalog.source("bib-main").set_profile(dead())
        context = ExecutionContext(bib_catalog)
        context.config.default_timeout_ms = 100.0
        collector = make_collector(
            context,
            ["bib-main", "bib-mirror"],
            initially_active=["scan_bib-main"],
            fallback_on_failure=False,
        )
        collector.open()
        rows = list(collector.iterate())
        bib_catalog.source("bib-main").set_profile(lan())
        assert rows == []

    def test_partial_mirror_fallback_returns_subset(self, bib_catalog):
        bib_catalog.source("bib-main").set_profile(dead())
        context = ExecutionContext(bib_catalog)
        context.config.default_timeout_ms = 1_000.0
        collector = make_collector(
            context,
            ["bib-main", "bib-partial"],
            initially_active=["scan_bib-main"],
            dedup_keys=["bib.isbn"],
        )
        collector.open()
        rows = list(collector.iterate())
        bib_catalog.source("bib-main").set_profile(lan())
        assert 0 < len(rows) < 20

    def test_deactivate_child_stops_reading_it(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(
            context, ["bib-main", "bib-mirror"], dedup_keys=None
        )
        collector.open()
        collector.next()
        collector.deactivate_child("scan_bib-mirror")
        rows = [collector.next() for _ in range(100)]
        rows = [r for r in rows if r is not None]
        # Only the primary's remaining tuples are returned after deactivation.
        assert collector.tuples_per_child["scan_bib-mirror"] <= 1

    def test_activate_child_midway(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(
            context,
            ["bib-main", "bib-mirror"],
            initially_active=["scan_bib-main"],
            dedup_keys=None,
        )
        collector.open()
        collector.next()
        collector.activate_child("scan_bib-mirror")
        list(collector.iterate())
        assert collector.tuples_per_child["scan_bib-mirror"] == 20

    def test_threshold_events_emitted_per_child(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(context, ["bib-main"], dedup_keys=None)
        collector.open()
        list(collector.iterate())
        events = context.events.drain()
        values = [
            e.value for e in events
            if e.event_type == EventType.THRESHOLD and e.subject == "scan_bib-main"
        ]
        # Both the wrapper scan and the collector report progress for the
        # child, so counts may repeat, but they must be non-decreasing and
        # reach the child's full cardinality.
        assert values == sorted(values)
        assert values[-1] == 20

    def test_prefers_faster_source_first(self, bib_catalog):
        bib_catalog.source("bib-mirror").set_profile(slow_start(delay_ms=5_000.0))
        context = ExecutionContext(bib_catalog)
        collector = make_collector(
            context, ["bib-main", "bib-mirror"], dedup_keys=["bib.isbn"]
        )
        collector.open()
        rows = list(collector.iterate())
        bib_catalog.source("bib-mirror").set_profile(wide_area())
        assert len(rows) == 20
        # Everything useful came from the fast source; the slow mirror
        # contributed only duplicates (if it was read at all).
        assert collector.tuples_per_child["scan_bib-main"] == 20


class TestDedupAccounting:
    """The dedup key set is byte-accounted against a pool-granted budget."""

    def test_seen_keys_charge_the_collector_budget(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(
            context, ["bib-main", "bib-mirror"], dedup_keys=["bib.isbn"]
        )
        collector.open()
        rows = list(collector.iterate())
        assert len(rows) == 20
        # 20 distinct keys, each charged the estimated key footprint.
        assert collector.budget.used_bytes == 20 * collector._dedup_key_bytes()
        # The budget is observable through the rule-condition protocol.
        assert context.operator_memory("coll1") == collector.budget.used_bytes
        collector.close()
        assert collector.budget.used_bytes == 0

    def test_batch_drive_charges_identically(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(
            context, ["bib-main", "bib-mirror"], dedup_keys=["bib.isbn"]
        )
        collector.open()
        produced = 0
        while True:
            batch = collector.next_batch(16)
            if not batch:
                break
            produced += len(batch)
        assert produced == 20
        assert collector.budget.used_bytes == 20 * collector._dedup_key_bytes()

    def test_no_dedup_means_no_charges(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(context, ["bib-main"], dedup_keys=None)
        collector.open()
        list(collector.iterate())
        assert collector.budget.used_bytes == 0

    def test_columnar_dedup_filters_with_index_take(self, bib_catalog):
        """The unwatched batch path dedups from column slices, boxing no rows."""
        from repro.storage.tuples import counting_row_constructions

        context = ExecutionContext(bib_catalog)
        collector = make_collector(
            context, ["bib-main", "bib-mirror"], dedup_keys=["bib.isbn"]
        )
        collector.open()
        # Drain the fast (LAN) primary first so the mirror's rows are all
        # duplicates filtered by the batch path.
        seen = 0
        with counting_row_constructions() as counter:
            while True:
                batch = collector.next_batch(64)
                if not batch:
                    break
                seen += len(batch)
            boxed = counter.count
        assert seen == 20
        # The wide-area mirror's 20 rows were dropped by the index-take: the
        # only boxing allowed is the tie-break single-row fallback, never one
        # Row per filtered tuple... the batch path pulls whole bounded runs.
        assert boxed < 20


class TestDedupSpill:
    """A bounded (or revoked) dedup budget spills the key set to disk."""

    def test_bounded_budget_spills_and_dedup_stays_exact(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(
            context,
            ["bib-main", "bib-mirror"],
            dedup_keys=["bib.isbn"],
            dedup_budget_bytes=200,  # a handful of keys
        )
        collector.open()
        produced = 0
        while True:
            batch = collector.next_batch(16)
            if not batch:
                break
            produced += len(batch)
        # Duplicate suppression is exact despite the spills.
        assert produced == 20
        assert collector.dedup_spills >= 1
        assert collector._spilled_key_count >= 1
        # The resident set was released on every spill: usage stays bounded
        # (at most the keys remembered since the last spill).
        assert collector.budget.used_bytes <= 200
        # The spilled keys went through the simulated disk and membership
        # scans re-read them with real I/O charges.
        assert context.disk.stats.tuples_written >= collector._spilled_key_count
        assert context.disk.stats.bytes_read > 0

    def test_results_match_unbounded_run(self, bib_catalog):
        def run(dedup_budget_bytes):
            context = ExecutionContext(bib_catalog)
            collector = make_collector(
                context,
                ["bib-main", "bib-mirror", "bib-partial"],
                dedup_keys=["bib.isbn"],
                dedup_budget_bytes=dedup_budget_bytes,
            )
            collector.open()
            rows = []
            while True:
                batch = collector.next_batch(32)
                if not batch:
                    break
                rows.extend(batch.rows())
            collector.close()
            return rows

        unbounded = run(None)
        spilled = run(150)
        assert {row["isbn"] for row in spilled} == {row["isbn"] for row in unbounded}
        assert len(spilled) == len(unbounded) == 20

    def test_tuple_path_consults_spilled_keys(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(
            context,
            ["bib-main", "bib-mirror"],
            dedup_keys=["bib.isbn"],
            dedup_budget_bytes=200,
        )
        collector.open()
        rows = list(collector.iterate())
        assert len(rows) == 20
        assert collector.dedup_spills >= 1

    def test_revocation_spills_immediately(self, bib_catalog):
        context = ExecutionContext(bib_catalog)
        collector = make_collector(
            context,
            ["bib-main", "bib-mirror"],
            dedup_keys=["bib.isbn"],
            dedup_budget_bytes=64 * 1024,
        )
        collector.open()
        first = collector.next_batch(8)
        assert first
        held = collector.budget.used_bytes
        assert held > 0
        # A broker-style revocation shrinks the allotment below usage: the
        # key set moves to disk at once instead of silently overstaying.
        collector.budget.revoke_to(64)
        assert collector.dedup_spills == 1
        # The key payloads left memory; only the per-key hash digest (which
        # lets fresh keys skip the spill-file scan) stays charged.
        from repro.engine.operators.collector import DEDUP_DIGEST_BYTES

        assert (
            collector.budget.used_bytes
            == collector._spilled_key_count * DEDUP_DIGEST_BYTES
        )
        # ...and the rest of the union still deduplicates exactly.
        produced = len(first)
        while True:
            batch = collector.next_batch(16)
            if not batch:
                break
            produced += len(batch)
        assert produced == 20
