"""Fixture for rule ``lease-lifecycle``: a lease that leaks only on the
except-path.

The normal path releases the grant (``budget.close()``); the leak exists
solely on the exception edge out of ``source.load()`` — the path-sensitive
case the class-granularity ``memory-pairing`` heuristic could never see.
Never imported — parsed by the analyzer tests only.
"""


class LeakingBuild:
    def build(self, memory_pool, source) -> None:
        budget = memory_pool.grant("build", 1 << 20)  # VIOLATION: leaks if load() raises
        rows = source.load()
        self.rows = list(rows)
        budget.close()


class SuppressedBuild:
    def build(self, memory_pool, source) -> None:
        # repro: allow[lease-lifecycle] fixture twin, deliberately suppressed
        budget = memory_pool.grant("build", 1 << 20)
        rows = source.load()
        self.rows = list(rows)
        budget.close()
