"""Fixture for rule ``clock-taint``: wall-clock taint through a helper call.

The source (``time.time()``) lives in a helper; the violation is the
*sink* two assignments later in a different function — the interprocedural
case the syntactic ``wall-clock`` rule could never see.  Never imported —
the analyzer tests parse this file and assert the rule fires on exactly
the marked line and stays quiet on the suppressed twin.
"""

import time


def observe_now() -> float:
    return time.time()


class TaintedOperator:
    def open(self) -> None:
        started = observe_now()
        self.started_at_ms = started  # VIOLATION: machine time flows into state


class SuppressedOperator:
    def open(self) -> None:
        started = observe_now()
        # repro: allow[clock-taint] fixture twin, deliberately suppressed
        self.started_at_ms = started
