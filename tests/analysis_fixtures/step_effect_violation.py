"""Fixture for rule ``step-effect``: a clock mutation two calls below a
``peek_arrival`` probe.

The probe itself looks innocent; the effect sits two frames down the call
graph — the bottom-up summary propagation is what reaches it.  Never
imported — parsed by the analyzer tests only.
"""


class EffectfulProbe:
    def __init__(self, clock):
        self.clock = clock

    def peek_arrival(self):
        return self._peek_helper()

    def _peek_helper(self):
        return self._advance_and_read()

    def _advance_and_read(self):
        self.clock.consume_cpu(0.1)  # VIOLATION: probe mutates the clock
        return self.clock.now


class SuppressedProbe:
    def __init__(self, clock):
        self.clock = clock

    def peek_arrival(self):
        return self._quiet_helper()

    def _quiet_helper(self):
        return self._quiet_advance()

    def _quiet_advance(self):
        # repro: allow[step-effect] fixture twin, deliberately suppressed
        self.clock.consume_cpu(0.1)
        return self.clock.now
