"""Fixture for rule ``wire-safe``: live engine state pickled into a payload.

Never imported — parsed by the analyzer tests only.
"""


def leak_state(conn, clock):
    conn.send_bytes((b"sync", clock))  # VIOLATION: ship derived data, not the clock


def leak_state_suppressed(conn, clock):
    conn.send_bytes((b"sync", clock))  # repro: allow[wire-safe] fixture twin


def ship_derived_payload(conn, clock):
    # Compliant shape: snapshot live state into plain data, ship the snapshot.
    sync = {"now": clock.now}
    conn.send_bytes(sync)


def ship_framed_message(send_msg, conn, sync):
    # The connection argument of send_msg is plumbing, not payload.
    send_msg(conn, ("built", sync))
