"""Fixture for rule ``budget-mutation``: direct mutation of a usage counter.

Never imported — parsed by the analyzer tests only.
"""


def forge_usage(broker, nbytes: int) -> None:
    broker.used_bytes += nbytes  # VIOLATION: usage counters belong to their owners


def forge_usage_suppressed(broker, nbytes: int) -> None:
    broker.used_bytes += nbytes  # repro: allow[budget-mutation] fixture twin
