"""Fixture for rule ``bare-except``: a handler that catches everything.

Never imported — parsed by the analyzer tests only.
"""


def swallow_all(action) -> None:
    try:
        action()
    except:  # VIOLATION: catches KeyboardInterrupt/SystemExit too  # noqa: E722
        raise RuntimeError("failed")


def swallow_all_suppressed(action) -> None:
    try:
        action()
    except:  # repro: allow[bare-except] fixture twin  # noqa: E722
        raise RuntimeError("failed")
