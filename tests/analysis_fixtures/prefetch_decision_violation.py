"""Fixture for rule ``step-effect``: the prefetcher's decision hook as a
probe root — a source connection opened two calls below ``prefetch_decision``.

The scheduler consults ``prefetch_decision`` on every quantum, outside any
session's virtual-time slice; warming a source from inside the decision
would claim a connection slot the moment the server *considers* prefetching.
Never imported — parsed by the analyzer tests only.
"""


class EagerDecision:
    def __init__(self, catalog, clock):
        self.catalog = catalog
        self.clock = clock

    def prefetch_decision(self, now_ms):
        return self._best_candidate(now_ms)

    def _best_candidate(self, now_ms):
        return self._warm_and_score("parts", now_ms)

    def _warm_and_score(self, name, now_ms):
        source = self.catalog.source(name)
        source.open(at_ms=now_ms)  # VIOLATION: decision claims a slot
        return name


class SuppressedDecision:
    def __init__(self, catalog, clock):
        self.catalog = catalog
        self.clock = clock

    def prefetch_decision(self, now_ms):
        return self._quiet_candidate(now_ms)

    def _quiet_candidate(self, now_ms):
        return self._quiet_warm("parts", now_ms)

    def _quiet_warm(self, name, now_ms):
        source = self.catalog.source(name)
        # repro: allow[step-effect] fixture twin, deliberately suppressed
        source.open(at_ms=now_ms)
        return name
