"""Fixture for rule ``conftest-import``: importing the ambiguous module name.

Never imported (it would fail if it were) — parsed by the analyzer tests only.
"""

from conftest import tiny_tpcd  # VIOLATION: ambiguous between tests/ and benchmarks/

from conftest import helpers  # repro: allow[conftest-import] fixture twin

__all__ = ["tiny_tpcd", "helpers"]
