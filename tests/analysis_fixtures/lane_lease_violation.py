"""Fixture for rule ``lease-lifecycle`` check 2b: per-lane teardown where one
lane's lease return raising skips the remaining lanes' returns.

``teardown`` revokes each lane's grant in sequence with no ``finally``: if
``lane0``'s revoke raises (a revocation callback failing mid-flush), the
exception edge leaves the function before ``lane1``'s grant is ever
returned — exactly the per-lane leak the flow-sensitive check reports.  The
suppressed twin shows the pragma escape hatch; ``SafeTeardown`` shows the
finally-protected shape the rule wants.  Never imported — parsed by the
analyzer tests only.
"""


class LeakingTeardown:
    def teardown(self, memory_pool) -> None:
        memory_pool.revoke("join.lane0")  # VIOLATION: lane1's grant leaks if this raises
        memory_pool.revoke("join.lane1")


class SuppressedTeardown:
    def teardown(self, memory_pool) -> None:
        # repro: allow[lease-lifecycle] fixture twin, deliberately suppressed
        memory_pool.revoke("join.lane0")
        memory_pool.revoke("join.lane1")


class SafeTeardown:
    def teardown(self, memory_pool) -> None:
        try:
            memory_pool.revoke("join.lane0")
        finally:
            memory_pool.revoke("join.lane1")

    def setup(self, memory_pool, lanes: int) -> None:
        # The grant-collecting loop is *not* a leak: appending the handle to
        # a container owned by self transfers ownership (the container's
        # owner releases in its own teardown).
        self.budgets = []
        for index in range(lanes):
            budget = memory_pool.grant(f"join.lane{index}", 1 << 16)
            self.budgets.append(budget)
