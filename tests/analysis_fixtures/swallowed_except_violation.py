"""Fixture for rule ``swallowed-except``: a broad handler that does nothing.

Never imported — parsed by the analyzer tests only.
"""


def ignore_failures(action) -> None:
    try:
        action()
    except Exception:  # VIOLATION: the error silently disappears
        pass


def ignore_failures_suppressed(action) -> None:
    try:
        action()
    except Exception:  # repro: allow[swallowed-except] fixture twin
        pass
