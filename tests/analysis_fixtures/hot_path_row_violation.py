"""Fixture for rule ``hot-path-row``: Row boxing in a declared hot-path module.

The module-role marker below opts this file into the hot-path scope even
though its path is not one of the known storage modules.  Never imported —
parsed by the analyzer tests only.
"""
# repro: module-role[hot-path]


def box_row(Row, schema, values):
    return Row(schema, values)  # VIOLATION: Row construction on a hot path


def box_row_suppressed(Row, schema, values):
    return Row(schema, values)  # repro: allow[hot-path-row] fixture twin
