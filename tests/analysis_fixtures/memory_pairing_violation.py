"""Fixture for rule ``memory-pairing``: a reserve with no reachable release.

Never imported — parsed by the analyzer tests only.
"""


class LeakyOperator:
    def __init__(self, budget):
        self.budget = budget

    def open(self, nbytes: int) -> None:
        self.budget.reserve(nbytes)  # VIOLATION: no release/close in this class


class SuppressedOperator:
    def __init__(self, budget):
        self.budget = budget

    def open(self, nbytes: int) -> None:
        # repro: allow[memory-pairing] fixture twin: released by the pool owner
        self.budget.reserve(nbytes)
