"""Fixture for rule ``wall-clock``: one seeded violation plus a suppressed twin.

Never imported — the analyzer tests parse this file and assert the rule
fires on exactly the marked line and stays quiet on the suppressed one.
"""

import time


def stamp_now() -> float:
    return time.time()  # VIOLATION: wall clock outside the clock authorities


def stamp_now_suppressed() -> float:
    return time.time()  # repro: allow[wall-clock] fixture twin, deliberately suppressed
