"""The analyzer's dataflow core: CFG shape, call graph, effects, taint, cache.

These are unit tests for :mod:`repro.analysis.dataflow` — the machinery
underneath the flow-aware rules.  The rule-level behaviour (what fires
where) lives in ``test_analysis.py``; here we pin the *graphs*: which
edges a ``try/finally`` contributes, how a name call resolves through
imports, that effect summaries are transitive, and that the per-module
effect cache invalidates on content change.
"""

from __future__ import annotations

import ast
import json
import textwrap

from repro.analysis.dataflow import (
    AnalysisProject,
    TaintAnalysis,
    build_cfg,
    classify_effect_call,
    collect_call_sites,
    collect_module_facts,
    direct_effects,
    module_name_for,
    propagate_summaries,
)
from repro.analysis.dataflow.callgraph import CallGraph
from repro.analysis.dataflow.cfg import EXCEPT, FINALLY, STMT
from repro.analysis.dataflow.project import CACHE_ENV
from repro.analysis.linter import ModuleSource


def fn_from(source: str, name: str | None = None):
    """First (or named) function definition parsed from ``source``."""
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if name is None or node.name == name:
                return node
    raise AssertionError("no function definition found")


def node_at_line(cfg, line: int):
    """The statement node whose header starts at ``line`` (1-based in fn)."""
    matches = [
        n
        for n in cfg.statement_nodes()
        if n.stmt is not None and n.stmt.lineno == line
    ]
    assert matches, f"no statement node at line {line}"
    return matches[0]


def project_from(files: dict[str, str]) -> AnalysisProject:
    modules = [
        ModuleSource(path, textwrap.dedent(text)) for path, text in files.items()
    ]
    return AnalysisProject(modules)


class TestCfg:
    def test_straight_line_reaches_exit(self):
        cfg = build_cfg(fn_from("def f():\n    x = 1\n    y = 2\n"))
        node = node_at_line(cfg, 3)
        assert (cfg.exit, "normal") in cfg.successors(node.index)

    def test_raising_call_gets_except_edge_to_raise_exit(self):
        cfg = build_cfg(fn_from("def f(s):\n    s.load()\n"))
        node = node_at_line(cfg, 2)
        kinds = {kind for _t, kind in cfg.successors(node.index)}
        assert EXCEPT in kinds
        assert any(t == cfg.raise_exit for t, k in cfg.successors(node.index) if k == EXCEPT)

    def test_nonraising_call_gets_no_except_edge(self):
        cfg = build_cfg(fn_from("def f(xs):\n    xs.append(1)\n"))
        node = node_at_line(cfg, 2)
        assert all(kind != EXCEPT for _t, kind in cfg.successors(node.index))

    def test_try_except_routes_raise_to_handler(self):
        cfg = build_cfg(
            fn_from(
                """
                def f(s):
                    try:
                        s.load()
                    except ValueError:
                        s.recover()
                """
            )
        )
        load = node_at_line(cfg, 4)
        except_targets = [t for t, k in cfg.successors(load.index) if k == EXCEPT]
        assert except_targets
        # The handler body is reachable from the exceptional edge, not from
        # the raise-exit.
        assert cfg.raise_exit not in except_targets

    def test_finally_receives_both_normal_and_exceptional_flow(self):
        cfg = build_cfg(
            fn_from(
                """
                def f(s):
                    try:
                        s.load()
                    finally:
                        s.close()
                """
            )
        )
        load = node_at_line(cfg, 4)
        targets = cfg.successors(load.index)
        # Normal completion and the exception both funnel into the finally
        # placeholder; the finally tail can then fall through *or* re-raise.
        finally_targets = {t for t, _k in targets}
        close = node_at_line(cfg, 6)
        reachable_kinds = set()
        for target in finally_targets:
            for t2, _k2 in cfg.successors(target):
                if t2 == close.index:
                    reachable_kinds.add("found")
        assert "found" in reachable_kinds or close.index in finally_targets
        tail_targets = {t for t, _k in cfg.successors(close.index)}
        assert cfg.exit in tail_targets
        assert cfg.raise_exit in tail_targets

    def test_return_routes_through_enclosing_finally(self):
        cfg = build_cfg(
            fn_from(
                """
                def f(s):
                    try:
                        return s.load()
                    finally:
                        s.close()
                """
            )
        )
        ret = node_at_line(cfg, 4)
        # The return must NOT go straight to exit; it detours via finally.
        kinds = dict()
        for t, k in cfg.successors(ret.index):
            kinds[t] = k
        assert cfg.exit not in kinds
        assert FINALLY in kinds.values()

    def test_with_block_gets_exit_node_on_all_paths(self):
        cfg = build_cfg(
            fn_from(
                """
                def f(s):
                    with s.open() as h:
                        h.read()
                    return 1
                """
            )
        )
        with_exits = [n for n in cfg.nodes if n.kind == "with-exit"]
        assert len(with_exits) == 1
        read = node_at_line(cfg, 4)
        assert any(t == with_exits[0].index for t, _k in cfg.successors(read.index))

    def test_loop_has_back_edge(self):
        cfg = build_cfg(
            fn_from(
                """
                def f(xs):
                    for x in xs:
                        x = x
                    return 1
                """
            )
        )
        header = node_at_line(cfg, 3)
        body = node_at_line(cfg, 4)
        assert any(t == header.index for t, _k in cfg.successors(body.index))

    def test_nested_def_is_a_single_binding_node(self):
        cfg = build_cfg(
            fn_from(
                """
                def f(s):
                    def g():
                        s.load()
                    return g
                """,
                name="f",
            )
        )
        # The nested body contributes no nodes of its own — exactly one
        # statement node for the def plus one for the return.
        assert len(cfg.statement_nodes()) == 2


class TestCallGraph:
    def test_module_name_for_src_layout(self):
        assert module_name_for("src/repro/engine/executor.py") == "repro.engine.executor"
        assert module_name_for("src/repro/engine/__init__.py") == "repro.engine"
        assert (
            module_name_for("tests/analysis_fixtures/x.py") == "tests.analysis_fixtures.x"
        )

    def test_name_call_resolves_through_from_import(self):
        project = project_from(
            {
                "src/repro/util.py": """
                    def helper():
                        return 1
                """,
                "src/repro/user.py": """
                    from repro.util import helper

                    def caller():
                        return helper()
                """,
            }
        )
        graph = project.graph
        edges = graph.callees("repro.user.caller")
        assert [callee for callee, _site in edges] == ["repro.util.helper"]

    def test_self_attr_resolves_to_own_class_method(self):
        project = project_from(
            {
                "src/repro/a.py": """
                    class A:
                        def run(self):
                            return self.step()
                        def step(self):
                            return 1

                    class B:
                        def step(self):
                            return 2
                """,
            }
        )
        edges = project.graph.callees("repro.a.A.run")
        assert [callee for callee, _site in edges] == ["repro.a.A.step"]

    def test_self_attr_falls_back_to_all_methods_of_that_name(self):
        project = project_from(
            {
                "src/repro/a.py": """
                    class Base:
                        def run(self):
                            return self.step()

                    class ImplOne:
                        def step(self):
                            return 1

                    class ImplTwo:
                        def step(self):
                            return 2
                """,
            }
        )
        edges = project.graph.callees("repro.a.Base.run")
        assert {callee for callee, _site in edges} == {
            "repro.a.ImplOne.step",
            "repro.a.ImplTwo.step",
        }

    def test_constructor_call_targets_init(self):
        project = project_from(
            {
                "src/repro/a.py": """
                    class Thing:
                        def __init__(self):
                            self.x = 1

                    def make():
                        return Thing()
                """,
            }
        )
        edges = project.graph.callees("repro.a.make")
        assert [callee for callee, _site in edges] == ["repro.a.Thing.__init__"]

    def test_nested_function_resolution(self):
        project = project_from(
            {
                "src/repro/a.py": """
                    def outer():
                        def inner():
                            return 1
                        return inner()
                """,
            }
        )
        edges = project.graph.callees("repro.a.outer")
        assert [callee for callee, _site in edges] == ["repro.a.outer.inner"]

    def test_generator_detection_ignores_nested_defs(self):
        facts = collect_module_facts(
            ast.parse(
                textwrap.dedent(
                    """
                    def gen():
                        yield 1

                    def not_gen():
                        def inner():
                            yield 2
                        return inner
                    """
                )
            ),
            "src/repro/g.py",
        )
        assert facts.functions["repro.g.gen"].is_generator
        assert not facts.functions["repro.g.not_gen"].is_generator
        assert facts.functions["repro.g.not_gen.inner"].is_generator

    def test_call_sites_exclude_nested_defs(self):
        fn = fn_from(
            """
            def outer(s):
                s.load()
                def inner(t):
                    t.fetch()
            """,
            name="outer",
        )
        names = {site.name for site in collect_call_sites(fn)}
        assert names == {"load"}


class TestEffects:
    def test_classify_receiver_sensitivity(self):
        assert classify_effect_call("consume_cpu", "anything") == ("clock", "consume_cpu")
        assert classify_effect_call("charge", "clock") == ("clock", "charge")
        assert classify_effect_call("charge", "account") is None
        assert classify_effect_call("reserve", "budget") == ("budget", "reserve")
        assert classify_effect_call("reserve", "table") is None
        assert classify_effect_call("fill", "cache") == ("cache", "fill")
        assert classify_effect_call("open", "source") == ("source", "open")
        assert classify_effect_call("open", "window") is None

    def test_direct_effects_exclude_nested_defs(self):
        fn = fn_from(
            """
            def f(clock):
                def g(clock):
                    clock.consume_io(1)
                clock.consume_cpu(2)
            """,
            name="f",
        )
        details = {e.detail for e in direct_effects(fn, "x.py")}
        assert details == {"consume_cpu"}

    def test_summaries_are_transitive(self):
        project = project_from(
            {
                "src/repro/a.py": """
                    def top(clock):
                        return middle(clock)

                    def middle(clock):
                        return bottom(clock)

                    def bottom(clock):
                        clock.consume_cpu(1)

                    def pure():
                        return 1
                """,
            }
        )
        summaries = propagate_summaries(project.graph, project.direct_effects)
        assert {e.detail for e in summaries["repro.a.top"]} == {"consume_cpu"}
        assert summaries["repro.a.pure"] == frozenset()


class TestTaint:
    @staticmethod
    def _classify(call, info):
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "time" and func.attr == "time":
                return "time.time"
        return None

    def test_zero_parameter_function_body_is_analyzed(self):
        # Regression: the worklist must visit nodes at least once even when
        # the entry environment is empty (no parameters, no facts).
        project = project_from(
            {
                "src/repro/a.py": """
                    def observe():
                        return time.time()
                """,
            }
        )
        result = TaintAnalysis(project.graph, self._classify).run()
        assert ("src/repro/a.py", 3) in result.occurrences

    def test_taint_flows_through_helper_into_attribute_store(self):
        project = project_from(
            {
                "src/repro/a.py": """
                    def observe():
                        return time.time()

                    class Op:
                        def open(self):
                            started = observe()
                            self.started_at = started
                """,
            }
        )
        result = TaintAnalysis(project.graph, self._classify).run()
        sink_lines = {line for _p, line, _d in result.sinks}
        assert sink_lines == {8}
        ((_, _, desc),) = result.sinks.keys()
        assert desc == "attribute store to .started_at"

    def test_untainted_assignment_is_not_a_sink_hit(self):
        project = project_from(
            {
                "src/repro/a.py": """
                    class Op:
                        def open(self, n):
                            self.count = n + 1
                """,
            }
        )
        result = TaintAnalysis(project.graph, self._classify).run()
        assert not result.sinks and not result.occurrences


class TestEffectCache:
    def test_cache_stores_and_invalidates_on_content_change(self, tmp_path, monkeypatch):
        cache_file = tmp_path / "effects.json"
        monkeypatch.setenv(CACHE_ENV, str(cache_file))

        text_v1 = "def f(clock):\n    clock.consume_cpu(1)\n"
        project = project_from({"src/repro/a.py": text_v1})
        direct = project.direct_effects
        assert {e.detail for e in direct["repro.a.f"]} == {"consume_cpu"}
        stored = json.loads(cache_file.read_text(encoding="utf-8"))
        assert "src/repro/a.py" in stored["modules"]

        # Unchanged text: served from cache (same facts come back).
        again = project_from({"src/repro/a.py": text_v1}).direct_effects
        assert {e.detail for e in again["repro.a.f"]} == {"consume_cpu"}

        # Changed text: the stale entry must not leak through.
        text_v2 = "def f(clock):\n    clock.consume_io(2)\n"
        fresh = project_from({"src/repro/a.py": text_v2}).direct_effects
        assert {e.detail for e in fresh["repro.a.f"]} == {"consume_io"}

    def test_corrupt_cache_is_tolerated(self, tmp_path, monkeypatch):
        cache_file = tmp_path / "effects.json"
        cache_file.write_text("{not json", encoding="utf-8")
        monkeypatch.setenv(CACHE_ENV, str(cache_file))
        project = project_from(
            {"src/repro/a.py": "def f(clock):\n    clock.consume_cpu(1)\n"}
        )
        assert {e.detail for e in project.direct_effects["repro.a.f"]} == {"consume_cpu"}

    def test_empty_env_disables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "")
        project = project_from(
            {"src/repro/a.py": "def f(clock):\n    clock.consume_cpu(1)\n"}
        )
        assert {e.detail for e in project.direct_effects["repro.a.f"]} == {"consume_cpu"}
