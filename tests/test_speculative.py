"""The speculative source layer: partial-extent streaming and plan-aware prefetch.

Covers the PR-10 invariants:

* **causality** — a causal follower never observes a block at a virtual time
  before the block's fill time (property-tested over random fill/consume
  interleavings), and a cached prefix plus a live tail always reassembles the
  exact source extent;
* **stream sharing** — a second scan of an in-progress source attaches as a
  follower (prefix at CPU speed, shared live tail) instead of queueing for a
  connection slot, and a scan closed early republishes its partial extent
  before releasing the slot;
* **speculative leases** — the prefetcher's broker lease is granted only
  from free capacity, revoked ahead of every query lease, and keeps
  ``broker.used == sum(resident_bytes)`` exact through drops;
* **plan-aware prefetch** — observed plans drive warming decisions (hotness
  threshold, spare slots only), and warmed sources serve later sessions at
  local speed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.operators.scan import WrapperScan
from repro.network.cache import (
    NEED_TAIL,
    STARVED,
    PartialExtent,
    SourceCache,
    StreamFollowerFeed,
)
from repro.network.profiles import NetworkProfile
from repro.network.simclock import SimClock
from repro.network.source import DataSource
from repro.plan.physical import wrapper_scan
from repro.server import MemoryBroker, QueryServer, SessionStatus
from repro.server.prefetch import PlanAwarePrefetcher
from repro.storage.memory import MemoryPool
from repro.storage.schema import Schema
from repro.storage.tuples import Row

from helpers import make_relation, multiset

SCHEMA = Schema.of("s.k:int", "s.v:str")

#: Slow enough that a second reader arrives mid-stream of the first.
SLOW = NetworkProfile(name="slow", initial_latency_ms=40.0, bandwidth_kbps=64.0)

SPECULATIVE = EngineConfig(speculative_sources=True)


def rows(count: int) -> list[Row]:
    return [Row(SCHEMA, (i, f"v{i}")) for i in range(count)]


def source_catalog(
    count: int = 100, max_concurrent: int | None = None
) -> DataSourceCatalog:
    relation = make_relation(
        "src", ["k:int", "v:str"], [(i, f"v{i}") for i in range(count)]
    )
    catalog = DataSourceCatalog()
    catalog.register_source(
        DataSource("src", relation, SLOW, max_concurrent=max_concurrent)
    )
    return catalog


def speculative_context(
    catalog: DataSourceCatalog, cache: SourceCache, session: str
) -> ExecutionContext:
    return ExecutionContext(
        catalog,
        config=SPECULATIVE,
        source_cache=cache,
        session_id=session,
        query_name=session,
    )


# -- causality properties ------------------------------------------------------------


class TestPartialExtentCausality:
    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_follower_never_observes_a_future_fill(self, data):
        """Random fill/consume interleavings: observation time >= fill time."""
        total = data.draw(st.integers(min_value=5, max_value=40), label="rows")
        source_rows = rows(total)
        publisher_clock = SimClock()
        extent = PartialExtent("src", SCHEMA, 0.0, "publisher")
        extent.attach_publisher("publisher", publisher_clock, lambda: None)
        follower_clock = SimClock()
        feed = StreamFollowerFeed(extent, follower_clock, causal=True)

        published = 0
        consumed: list[Row] = []
        ops = data.draw(
            st.lists(
                st.tuples(st.sampled_from(["publish", "consume"]), st.integers(1, 6)),
                max_size=40,
            ),
            label="ops",
        )
        for op, width in ops:
            if op == "publish" and published < total:
                gap = data.draw(st.floats(min_value=0.5, max_value=25.0))
                publisher_clock.advance_to(publisher_clock.now + gap)
                chunk = source_rows[published : published + width]
                extent.publish(chunk, publisher_clock.now, "publisher")
                published += len(chunk)
            else:
                for _ in range(width):
                    got = feed.fetch()
                    if got is STARVED:
                        # Caught up with the live stream: the follower's wait
                        # hint lands strictly after the publisher's position.
                        assert feed.next_arrival() > publisher_clock.now
                        break
                    assert got is not NEED_TAIL  # never while the stream is live
                    assert got is not None
                    index = len(consumed)
                    assert follower_clock.now >= extent.fill_time_at(index)
                    consumed.append(got)

        # Publisher drains the source and completes; the follower's remaining
        # reads (prefix then EOS) must reassemble the extent exactly.
        if published < total:
            publisher_clock.advance_to(publisher_clock.now + 1.0)
            extent.publish(source_rows[published:], publisher_clock.now, "publisher")
        extent.complete = True
        extent.detach()
        while True:
            got = feed.fetch()
            if got is None:
                break
            index = len(consumed)
            assert follower_clock.now >= extent.fill_time_at(index)
            consumed.append(got)
        assert [r.values for r in consumed] == [r.values for r in source_rows]

    @settings(max_examples=30, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=60))
    def test_prefix_plus_tail_reassembles_exact_extent(self, cut):
        """A reader that consumes a cached prefix and fetches the live tail
        (taking over a detached extent at any cut point) sees the same rows,
        in the same order, as a reader with its own full connection."""
        catalog = source_catalog(count=60)
        cache = SourceCache()
        publisher = WrapperScan(
            "pub", speculative_context(catalog, cache, "pub"), "src"
        )
        publisher.open()
        for _ in range(cut):
            assert publisher.next() is not None
        publisher.close()  # early close republishes the partial extent

        reader = WrapperScan(
            "reader", speculative_context(catalog, cache, "reader"), "src"
        )
        reader.open()
        got = [row.values for row in reader.iterate()]
        reader.close()
        expected = [row.values for row in rows(60)]
        assert got == expected


# -- stream sharing ------------------------------------------------------------------


class TestStreamSharing:
    def test_follower_attaches_instead_of_queueing(self):
        """With one connection slot, the late scan shares the first scan's
        stream: no queueing, both sessions finish together."""
        catalog = source_catalog(max_concurrent=1)
        server = QueryServer(catalog, engine_config=SPECULATIVE)
        first = server.submit(wrapper_scan("src"), "first")
        second = server.submit(wrapper_scan("src"), "second", arrival_ms=100.0)
        stats = server.run()
        assert first.status == second.status == SessionStatus.COMPLETED
        assert multiset(second.result) == multiset(first.result)
        assert catalog.source("src").stats.connections_queued == 0
        assert stats.partial_extent_hits >= 1
        assert stats.per_source["src"].partial_hits >= 1

    def test_follower_faster_than_completion_based_admission(self):
        """The late session's completion beats the queue-for-a-slot baseline."""
        completions = {}
        for speculative in (False, True):
            catalog = source_catalog(max_concurrent=1)
            config = EngineConfig(speculative_sources=speculative)
            server = QueryServer(catalog, engine_config=config)
            server.submit(wrapper_scan("src"), "first")
            late = server.submit(wrapper_scan("src"), "late", arrival_ms=100.0)
            server.run()
            completions[speculative] = late.summary.completed_at_ms
        assert completions[True] < completions[False] / 1.5

    def test_early_close_republishes_before_releasing_slot(self):
        """A scan abandoned mid-stream detaches its extent (prefix kept) before
        the slot frees, so the next reader resumes from the cached prefix."""
        catalog = source_catalog(count=50)
        cache = SourceCache()
        publisher = WrapperScan(
            "pub", speculative_context(catalog, cache, "pub"), "src"
        )
        publisher.open()
        for _ in range(20):
            publisher.next()
        publisher.close()
        extent = cache.stream("src")
        assert extent is not None and not extent.is_live
        assert extent.row_count == 20

        reader_context = speculative_context(catalog, cache, "reader")
        reader = WrapperScan("reader", reader_context, "src")
        reader.open()
        got = [row.values for row in reader.iterate()]
        reader.close()
        assert got == [row.values for row in rows(50)]
        # The reader adopted the detached extent, fetched only the tail, and
        # completed it into a full cache entry.
        assert cache.source_counters("src").partial_hits == 1
        assert "src" in cache
        assert reader.wrapper.stats.tuples_fetched == 30

    def test_speculative_off_is_plain_completion_admission(self):
        """Flag off: no streams are ever registered, scans collect and fill at
        completion exactly as before the speculative layer existed."""
        catalog = source_catalog(max_concurrent=1)
        server = QueryServer(catalog)  # default config: speculative off
        assert server.prefetcher is None
        server.submit(wrapper_scan("src"), "first")
        server.submit(wrapper_scan("src"), "second", arrival_ms=100.0)
        stats = server.run()
        assert stats.partial_extent_hits == 0
        assert server.source_cache.stream("src") is None
        assert catalog.source("src").stats.connections_queued == 1


# -- speculative broker leases -------------------------------------------------------


class TestSpeculativeLeases:
    def test_granted_only_from_free_capacity(self):
        broker = MemoryBroker(1024 * 1024)
        pool = MemoryPool(broker=broker)
        query = pool.grant("join", 900 * 1024)
        speculative = pool.grant("prefetch", 400 * 1024, speculative=True)
        # Only the free remainder was granted; nothing was revoked for it.
        assert speculative.limit_bytes == 1024 * 1024 - 900 * 1024
        assert query.limit_bytes == 900 * 1024
        assert broker.stats.revocations == 0
        assert broker.stats.speculative_leases_granted == 1

    def test_full_broker_grants_zero_without_revoking(self):
        broker = MemoryBroker(512 * 1024)
        pool = MemoryPool(broker=broker)
        pool.grant("join", 512 * 1024)
        speculative = pool.grant("prefetch", 64 * 1024, speculative=True)
        assert speculative.limit_bytes == 0
        assert broker.stats.revocations == 0

    def test_revoked_first_despite_smaller_headroom(self):
        broker = MemoryBroker(1024 * 1024)
        pool = MemoryPool(broker=broker)
        query = pool.grant("join", 800 * 1024)  # headroom 800K - 64K floor
        speculative = pool.grant("prefetch", 128 * 1024, speculative=True)
        assert speculative.limit_bytes == 128 * 1024
        # A new query lease larger than the free capacity plus the whole
        # speculative lease: speculation is stripped to zero *first*, and only
        # then does the (much larger) query headroom contribute the rest.
        newcomer = pool.grant("join2", 300 * 1024)
        assert newcomer.limit_bytes == 300 * 1024
        assert speculative.limit_bytes == 0
        assert query.limit_bytes < 800 * 1024
        records = broker.revocations
        assert len(records) == 2
        assert records[0].speculative and records[0].taken_bytes == 128 * 1024
        assert not records[1].speculative
        assert broker.stats.speculative_revocations == 1
        assert broker.stats.speculative_bytes_revoked == 128 * 1024

    def test_prefetcher_drops_to_fit_and_invariant_holds(self):
        """Revoking the speculative lease makes the prefetcher drop warmed
        data immediately; ``broker.used == sum(resident)`` at the hook."""
        catalog = source_catalog(count=80, max_concurrent=2)
        config = EngineConfig(speculative_sources=True, prefetch_budget_bytes=1 << 20)
        server = QueryServer(catalog, engine_config=config, memory_capacity_bytes=1 << 20)
        observed = []

        def check(broker, record):
            observed.append(record)
            assert broker.used_bytes == sum(p.used_bytes for p in broker.pools)

        server.broker.on_revocation = check
        # Warm the source fully (two submissions cross the hotness threshold).
        server.submit(wrapper_scan("src"), "warm-1")
        server.submit(wrapper_scan("src"), "warm-2")
        server.run()
        prefetcher = server.prefetcher
        assert prefetcher.resident_bytes > 0
        assert "src" in server.source_cache
        # A query lease demanding the whole capacity victimizes speculation.
        pool = MemoryPool(name="pressure", broker=server.broker)
        pool.grant("big-join", 1 << 20)
        assert observed and observed[0].speculative
        assert prefetcher.resident_bytes == 0
        assert "src" not in server.source_cache
        assert prefetcher.summary().sources_dropped == 1


# -- plan-aware prefetch -------------------------------------------------------------


class TestPlanAwarePrefetch:
    def test_decision_needs_min_appearances(self):
        catalog = source_catalog()
        config = EngineConfig(speculative_sources=True, prefetch_budget_bytes=1 << 20)
        server = QueryServer(catalog, engine_config=config)
        prefetcher = server.prefetcher
        assert prefetcher.prefetch_decision(0.0) is None
        prefetcher.observe_spec(wrapper_scan("src"))
        assert prefetcher.prefetch_decision(0.0) is None
        prefetcher.observe_spec(wrapper_scan("src"))
        assert prefetcher.prefetch_decision(0.0) == "src"

    def test_decision_respects_spare_slots_and_cache_state(self):
        catalog = source_catalog(max_concurrent=1)
        config = EngineConfig(speculative_sources=True, prefetch_budget_bytes=1 << 20)
        server = QueryServer(catalog, engine_config=config)
        prefetcher = server.prefetcher
        for _ in range(2):
            prefetcher.observe_spec(wrapper_scan("src"))
        source = catalog.source("src")
        connection = source.open(at_ms=0.0)  # the only slot, busy
        assert prefetcher.prefetch_decision(1.0) is None
        connection.close(at_ms=1.0)
        assert prefetcher.prefetch_decision(2.0) == "src"
        # A cached extent removes the source from consideration.
        server.source_cache.fill("src", SCHEMA, rows(3), now_ms=2.0)
        assert prefetcher.prefetch_decision(3.0) is None

    def test_warmed_source_serves_later_sessions(self):
        catalog = source_catalog(max_concurrent=2)
        config = EngineConfig(speculative_sources=True, prefetch_budget_bytes=1 << 20)
        server = QueryServer(catalog, engine_config=config, memory_capacity_bytes=8 << 20)
        first = server.submit(wrapper_scan("src"), "first")
        second = server.submit(wrapper_scan("src"), "second", arrival_ms=150.0)
        stats = server.run()
        assert first.status == second.status == SessionStatus.COMPLETED
        assert multiset(first.result) == multiset(second.result)
        summary = stats.prefetch
        assert summary is not None
        assert summary.sources_warmed == 1
        assert summary.bytes_fetched > 0
        assert summary.bytes_wasted == 0
        assert summary.resident_bytes == server.prefetcher.resident_bytes
        assert stats.per_source["src"].partial_hits >= 1
        # The broker's live total includes the prefetched bytes.
        assert server.broker.used_bytes >= summary.resident_bytes

    def test_unused_prefetch_counts_as_wasted(self):
        catalog = source_catalog()
        config = EngineConfig(speculative_sources=True, prefetch_budget_bytes=1 << 20)
        server = QueryServer(catalog, engine_config=config)
        prefetcher = server.prefetcher
        for _ in range(2):
            prefetcher.observe_spec(wrapper_scan("src"))
        prefetcher.advance(horizon_ms=10_000.0)
        prefetcher.quiesce()
        summary = prefetcher.summary()
        assert summary.bytes_fetched > 0
        assert summary.bytes_used == 0
        assert summary.bytes_wasted == summary.bytes_fetched

    def test_zero_budget_config_disables_prefetcher(self):
        catalog = source_catalog()
        server = QueryServer(
            catalog, engine_config=EngineConfig(speculative_sources=True)
        )
        assert server.prefetcher is None  # streaming on, prefetch off

    def test_standalone_prefetcher_requires_spec_traffic(self):
        catalog = source_catalog()
        config = EngineConfig(speculative_sources=True, prefetch_budget_bytes=1 << 20)
        server = QueryServer(catalog, engine_config=config)
        prefetcher = server.prefetcher
        assert isinstance(prefetcher, PlanAwarePrefetcher)
        prefetcher.advance(horizon_ms=10_000.0)
        assert prefetcher.summary().sources_warmed == 0
