"""Shared helper functions for the test suite.

These used to live in ``tests/conftest.py`` and were imported with
``from conftest import ...``, which relies on the top-level module name
``conftest`` resolving to *this directory's* conftest.  When pytest collects
from the repo root it may import ``benchmarks/conftest.py`` under that name
first, poisoning ``sys.modules`` and breaking every such import.  Keeping the
helpers in a uniquely named module makes the imports unambiguous.
"""

from __future__ import annotations

from repro.storage.relation import Relation
from repro.storage.schema import Schema


def make_relation(name: str, columns: list[str], values: list[tuple]) -> Relation:
    """Helper used throughout the tests to build small relations."""
    schema = Schema.of(*columns)
    return Relation.from_values(name, schema, values)


def reference_join(left: Relation, right: Relation, left_key: str, right_key: str) -> Relation:
    """Order-insensitive reference equi-join used to validate engine operators."""
    return left.qualified().join(right.qualified(), [left_key], [right_key])


def attribute_multiset(relation) -> dict:
    """Multiset of rows as (attribute -> value) sets, ignoring column order.

    Useful when comparing engine output (whose column order depends on the
    chosen join order) with a reference result.
    """
    counts: dict = {}
    for row in relation:
        key = frozenset((name.rsplit(".", 1)[-1], value) for name, value in row.as_dict().items())
        counts[key] = counts.get(key, 0) + 1
    return counts


def multiset(relation_or_rows) -> dict:
    """Value-vector multiset for order-insensitive comparisons."""
    if isinstance(relation_or_rows, Relation):
        return relation_or_rows.multiset()
    counts: dict = {}
    for row in relation_or_rows:
        counts[row.values] = counts.get(row.values, 0) + 1
    return counts
