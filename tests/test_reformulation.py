"""Unit tests for repro.query.reformulation."""

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.catalog.source_desc import SourceDescription
from repro.errors import ReformulationError
from repro.network.profiles import lan, wide_area
from repro.network.source import DataSource, make_mirror
from repro.query.conjunctive import ConjunctiveQuery, JoinPredicate
from repro.query.reformulation import Reformulator

from helpers import make_relation


@pytest.fixture
def catalog():
    books = make_relation("book", ["isbn:int", "title:str"], [(i, f"b{i}") for i in range(10)])
    reviews = make_relation("review", ["isbn:int", "stars:int"], [(i, i % 5) for i in range(10)])
    catalog = DataSourceCatalog()
    primary = DataSource("books-main", books, lan())
    catalog.register_source(primary, SourceDescription("books-main", "book"))
    mirror = make_mirror(primary, "books-mirror", wide_area())
    catalog.register_source(mirror, SourceDescription("books-mirror", "book"))
    partial = make_mirror(primary, "books-partial", lan(), coverage=0.5, seed=1)
    catalog.register_source(
        partial, SourceDescription("books-partial", "book", complete=False, coverage=0.5)
    )
    catalog.register_source(DataSource("reviews-main", reviews, lan()))
    return catalog


@pytest.fixture
def query():
    return ConjunctiveQuery(
        name="q",
        relations=["book", "review"],
        join_predicates=[JoinPredicate("book", "isbn", "review", "isbn")],
    )


def test_every_relation_gets_a_leaf(catalog, query):
    reformulated = Reformulator(catalog).reformulate(query)
    assert set(reformulated.leaves) == {"book", "review"}
    assert reformulated.query is query


def test_disjunctive_leaf_lists_all_sources(catalog, query):
    reformulated = Reformulator(catalog).reformulate(query)
    leaf = reformulated.leaf("book")
    assert leaf.is_disjunctive
    assert set(leaf.source_names) == {"books-main", "books-mirror", "books-partial"}
    assert reformulated.disjunctive_relations == ["book"]


def test_primary_is_complete_and_cheapest(catalog, query):
    reformulated = Reformulator(catalog).reformulate(query)
    leaf = reformulated.leaf("book")
    # Complete sources first; among them the LAN source has the lower access cost.
    assert leaf.primary.source_name == "books-main"
    # The incomplete source ranks last.
    assert leaf.source_names[-1] == "books-partial"


def test_single_source_leaf_not_disjunctive(catalog, query):
    reformulated = Reformulator(catalog).reformulate(query)
    assert not reformulated.leaf("review").is_disjunctive


def test_all_source_names(catalog, query):
    reformulated = Reformulator(catalog).reformulate(query)
    assert "reviews-main" in reformulated.all_source_names
    assert len(reformulated.all_source_names) == 4


def test_missing_relation_raises(catalog):
    query = ConjunctiveQuery(name="q", relations=["magazine"])
    with pytest.raises(ReformulationError):
        Reformulator(catalog).reformulate(query)


def test_unknown_leaf_lookup_raises(catalog, query):
    reformulated = Reformulator(catalog).reformulate(query)
    with pytest.raises(ReformulationError):
        reformulated.leaf("magazine")
