"""Unit tests for repro.datagen.workload."""

import pytest

from repro.datagen.workload import (
    TPCDJoinGraph,
    figure3a_query,
    figure3b_query,
    figure5_queries,
    two_and_three_way_joins,
)


@pytest.fixture(scope="module")
def graph():
    return TPCDJoinGraph()


class TestJoinGraph:
    def test_tables_cover_tpcd(self, graph):
        assert "lineitem" in graph.tables
        assert "region" in graph.tables

    def test_edges_between(self, graph):
        edges = graph.edges_between({"part", "partsupp"})
        assert len(edges) == 1
        assert edges[0].tables() == frozenset({"part", "partsupp"})

    def test_is_connected(self, graph):
        assert graph.is_connected({"part", "partsupp", "supplier"})
        assert not graph.is_connected({"part", "orders"})
        assert graph.is_connected({"region"})
        assert not graph.is_connected(set())

    def test_connected_subsets_exclude(self, graph):
        subsets = graph.connected_subsets(4, exclude={"lineitem"})
        assert all("lineitem" not in s for s in subsets)
        assert len(subsets) >= 7

    def test_connected_subsets_deterministic_order(self, graph):
        assert graph.connected_subsets(3) == graph.connected_subsets(3)

    def test_query_for_builds_connected_query(self, graph):
        query = graph.query_for({"part", "partsupp", "supplier"})
        assert set(query.relations) == {"part", "partsupp", "supplier"}
        assert len(query.join_predicates) == 2
        assert query.join_connected()


class TestWorkloadQueries:
    def test_figure3a_query(self):
        query = figure3a_query()
        assert set(query.relations) == {"lineitem", "orders", "supplier"}
        assert query.join_connected()

    def test_figure3b_query(self):
        query = figure3b_query()
        assert set(query.relations) == {"partsupp", "part"}
        assert len(query.join_predicates) == 1

    def test_figure5_has_seven_four_table_queries(self):
        queries = figure5_queries()
        assert len(queries) == 7
        for query in queries:
            assert len(query.relations) == 4
            assert "lineitem" not in query.relations
            assert query.join_connected()
        assert [q.name for q in queries] == [f"Q{i}" for i in range(1, 8)]

    def test_two_and_three_way_joins_all_connected(self):
        queries = two_and_three_way_joins()
        assert queries
        assert all(q.join_connected() for q in queries)
        assert all(len(q.relations) in (2, 3) for q in queries)
