"""Unit tests for the optimizer's cost model."""

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.catalog.statistics import DEFAULT_JOIN_SELECTIVITY
from repro.network.profiles import lan, wide_area
from repro.network.source import DataSource
from repro.optimizer.cost_model import CardinalityEstimate, CostModel
from repro.query.conjunctive import ConjunctiveQuery, JoinPredicate

from helpers import make_relation


@pytest.fixture
def catalog():
    catalog = DataSourceCatalog()
    big = make_relation("big", ["k:int"], [(i,) for i in range(1000)])
    small = make_relation("small", ["k:int"], [(i,) for i in range(10)])
    tiny = make_relation("tiny", ["k:int"], [(i,) for i in range(10)])
    catalog.register_source(DataSource("big", big, lan()))
    catalog.register_source(DataSource("small", small, wide_area()))
    catalog.register_source(DataSource("tiny", tiny, lan()))
    catalog.register_source(
        DataSource("mystery", make_relation("mystery", ["k:int"], [(1,)]), lan()),
        publish_statistics=False,
    )
    return catalog


@pytest.fixture
def model(catalog):
    return CostModel(catalog)


class TestSourceEstimates:
    def test_known_cardinality_reliable(self, model):
        estimate = model.source_cardinality("big")
        assert estimate.value == 1000
        assert estimate.reliable

    def test_unknown_cardinality_defaults_unreliable(self, model, catalog):
        estimate = model.source_cardinality("mystery")
        assert estimate.value == catalog.statistics.default_cardinality
        assert not estimate.reliable

    def test_scan_cost_grows_with_cardinality(self, model):
        # Same link, 100x the tuples: the bigger source must cost more to scan.
        assert model.source_scan_cost("big") > model.source_scan_cost("tiny")

    def test_scan_cost_penalises_slow_links(self, model, catalog):
        # small is behind the wide-area link: per-tuple cost should be higher.
        big_cost = model.source_scan_cost("big") / 1000
        small_cost = model.source_scan_cost("small") / 10
        assert small_cost > big_cost


class TestJoinEstimates:
    def test_selectivity_known_vs_default(self, model, catalog):
        selectivity, reliable = model.join_selectivity(
            [JoinPredicate("big", "k", "small", "k")], 1000, 10
        )
        assert selectivity == DEFAULT_JOIN_SELECTIVITY
        assert not reliable
        catalog.statistics.set_join_selectivity("big.k", "small.k", 0.1)
        selectivity, reliable = model.join_selectivity(
            [JoinPredicate("big", "k", "small", "k")], 1000, 10
        )
        assert selectivity == 0.1
        assert reliable

    def test_cross_product_selectivity(self, model):
        selectivity, reliable = model.join_selectivity([], 10, 10)
        assert selectivity == 1.0
        assert reliable

    def test_join_cardinality_combines_reliability(self, model, catalog):
        catalog.statistics.set_join_selectivity("big.k", "small.k", 0.01)
        left = CardinalityEstimate(1000, True)
        right = CardinalityEstimate(10, True)
        estimate = model.join_cardinality(left, right, [JoinPredicate("big", "k", "small", "k")])
        assert estimate.value == 100
        assert estimate.reliable
        unreliable = model.join_cardinality(
            CardinalityEstimate(1000, False), right, [JoinPredicate("big", "k", "small", "k")]
        )
        assert not unreliable.reliable

    def test_join_cost_spill_penalty(self, model):
        left = CardinalityEstimate(10_000, True)
        right = CardinalityEstimate(10_000, True)
        output = CardinalityEstimate(10_000, True)
        roomy = model.join_cost(left, right, output, memory_limit_bytes=None)
        tight = model.join_cost(left, right, output, memory_limit_bytes=64 * 1024)
        assert tight > roomy

    def test_pipelined_join_builds_both_sides(self, model):
        left = CardinalityEstimate(1000, True)
        right = CardinalityEstimate(10, True)
        output = CardinalityEstimate(100, True)
        dpj = model.join_cost(left, right, output, None, pipelined=True)
        hybrid = model.join_cost(left, right, output, None, pipelined=False)
        assert dpj > hybrid  # hybrid only builds the small side

    def test_materialization_and_rescan_costs(self, model):
        assert model.materialization_cost(CardinalityEstimate(100, True)) > 0
        assert model.rescan_cost(100) > 0


class TestReliabilityCheck:
    def test_has_reliable_statistics(self, model, catalog):
        query = ConjunctiveQuery(
            name="q",
            relations=["big", "small"],
            join_predicates=[JoinPredicate("big", "k", "small", "k")],
        )
        sources = {"big": "big", "small": "small"}
        assert not model.has_reliable_statistics(query, sources)
        catalog.statistics.set_join_selectivity("big.k", "small.k", 0.1)
        assert model.has_reliable_statistics(query, sources)
        # A relation backed by a statistics-free source breaks reliability.
        query2 = ConjunctiveQuery(
            name="q2",
            relations=["big", "mystery"],
            join_predicates=[JoinPredicate("big", "k", "mystery", "k")],
        )
        catalog.statistics.set_join_selectivity("big.k", "mystery.k", 0.1)
        assert not model.has_reliable_statistics(query2, {"big": "big", "mystery": "mystery"})
