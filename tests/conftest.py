"""Shared fixtures for the test suite.

Fixtures build tiny deployments (a few dozen to a few hundred tuples) so the
whole suite runs in seconds while still exercising every code path the
benchmarks use at larger scale.

Plain helper *functions* live in :mod:`helpers` (``tests/helpers.py``) so test
modules can import them without relying on the ambiguous top-level module name
``conftest`` (see the module docstring there for the collision this avoids).
"""

from __future__ import annotations

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.datagen.tpcd import TPCDGenerator
from repro.engine.context import EngineConfig, ExecutionContext
from repro.network.profiles import lan
from repro.network.source import DataSource
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.tuples import Row

from helpers import make_relation


@pytest.fixture(scope="session")
def tiny_tpcd():
    """A very small TPC-D database shared (read-only) across tests."""
    return TPCDGenerator(scale_mb=0.3, seed=7).generate(
        ["region", "nation", "supplier", "customer", "part", "partsupp", "orders"]
    )


@pytest.fixture
def simple_schema() -> Schema:
    return Schema.of("id:int", "name:str", "score:float")


@pytest.fixture
def people_relation(simple_schema) -> Relation:
    rows = [
        Row(simple_schema, (1, "ada", 9.5)),
        Row(simple_schema, (2, "bob", 7.25)),
        Row(simple_schema, (3, "cyd", 8.0)),
        Row(simple_schema, (4, "dee", 5.5)),
    ]
    return Relation("people", simple_schema, rows)


@pytest.fixture
def orders_and_items():
    """Two tiny joinable relations (orders 1-*-> items)."""
    orders = make_relation(
        "ord", ["o_id:int", "o_cust:str"], [(1, "ada"), (2, "bob"), (3, "cyd")]
    )
    items = make_relation(
        "item",
        ["i_order:int", "i_sku:str", "i_qty:int"],
        [(1, "apple", 2), (1, "pear", 1), (2, "plum", 5), (4, "kiwi", 9)],
    )
    return orders, items


@pytest.fixture
def joinable_catalog(orders_and_items) -> DataSourceCatalog:
    """Catalog exposing the two tiny relations as LAN sources."""
    orders, items = orders_and_items
    catalog = DataSourceCatalog()
    catalog.register_source(DataSource("ord", orders, lan()))
    catalog.register_source(DataSource("item", items, lan()))
    return catalog


@pytest.fixture
def context(joinable_catalog) -> ExecutionContext:
    """A fresh execution context over the tiny joinable catalog."""
    return ExecutionContext(joinable_catalog, config=EngineConfig(), query_name="test")


@pytest.fixture
def tpcd_catalog(tiny_tpcd) -> DataSourceCatalog:
    """Catalog exposing the tiny TPC-D tables as LAN sources."""
    catalog = DataSourceCatalog()
    for table in tiny_tpcd.names:
        catalog.register_source(DataSource(table, tiny_tpcd[table], lan()))
    return catalog
