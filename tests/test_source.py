"""Unit tests for repro.network.source."""

import pytest

from repro.errors import SourceUnavailableError
from repro.network.profiles import NetworkProfile, dead, lan
from repro.network.source import DataSource, make_mirror

from helpers import make_relation


@pytest.fixture
def relation():
    return make_relation("books", ["isbn:int", "title:str"], [(i, f"t{i}") for i in range(10)])


@pytest.fixture
def source(relation):
    return DataSource("lib", relation, lan())


class TestDataSource:
    def test_exported_schema_is_qualified(self, source):
        assert source.exported_schema.names == ("books.isbn", "books.title")

    def test_cardinality_and_size(self, source, relation):
        assert source.cardinality == 10
        assert source.size_bytes == relation.size_bytes

    def test_set_profile(self, source):
        source.set_profile(dead())
        assert source.profile.unavailable


class TestSourceConnection:
    def test_fetch_streams_all_tuples_in_order(self, source):
        connection = source.open()
        arrivals = []
        while not connection.exhausted:
            row, arrival = connection.fetch()
            arrivals.append(arrival)
        assert len(arrivals) == 10
        assert arrivals == sorted(arrivals)
        assert source.stats.tuples_sent == 10

    def test_next_arrival_matches_fetch(self, source):
        connection = source.open()
        expected = connection.next_arrival()
        _, arrival = connection.fetch()
        assert arrival == expected

    def test_fetch_after_exhaustion_raises(self, source):
        connection = source.open()
        for _ in range(10):
            connection.fetch()
        assert connection.next_arrival() is None
        with pytest.raises(SourceUnavailableError):
            connection.fetch()

    def test_open_at_offset_shifts_arrivals(self, source):
        early = source.open(at_ms=0.0).next_arrival()
        late = source.open(at_ms=1000.0).next_arrival()
        assert late == pytest.approx(early + 1000.0)

    def test_closed_connection_rejects_fetch(self, source):
        connection = source.open()
        connection.close()
        assert connection.closed
        with pytest.raises(SourceUnavailableError):
            connection.fetch()
        assert connection.next_arrival() is None

    def test_unavailable_source_never_arrives(self, relation):
        source = DataSource("dead", relation, dead())
        connection = source.open()
        assert connection.next_arrival() == float("inf")
        assert not connection.exhausted
        with pytest.raises(SourceUnavailableError):
            connection.fetch()
        assert source.stats.failures == 1

    def test_drop_after_tuples_fails_mid_transfer(self, relation):
        profile = NetworkProfile(drop_after_tuples=3)
        source = DataSource("flaky", relation, profile)
        connection = source.open()
        for _ in range(3):
            connection.fetch()
        with pytest.raises(SourceUnavailableError):
            connection.fetch()
        assert connection.remaining() == 0

    def test_remaining_counts_down(self, source):
        connection = source.open()
        assert connection.remaining() == 10
        connection.fetch()
        assert connection.remaining() == 9


class TestMakeMirror:
    def test_full_mirror_has_same_rows(self, source):
        mirror = make_mirror(source, "mirror", lan())
        assert mirror.cardinality == source.cardinality
        assert mirror.relation.name == source.relation.name

    def test_partial_mirror_subset(self, source):
        mirror = make_mirror(source, "partial", lan(), coverage=0.5, seed=3)
        assert 0 < mirror.cardinality <= source.cardinality
        source_keys = set(source.relation.column("isbn"))
        assert set(mirror.relation.column("isbn")) <= source_keys

    def test_partial_mirror_deterministic(self, source):
        a = make_mirror(source, "m1", lan(), coverage=0.5, seed=3)
        b = make_mirror(source, "m2", lan(), coverage=0.5, seed=3)
        assert a.relation.multiset() == b.relation.multiset()

    def test_invalid_coverage_rejected(self, source):
        with pytest.raises(ValueError):
            make_mirror(source, "bad", lan(), coverage=0.0)
