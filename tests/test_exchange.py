"""Exchange / ExchangeSource: lane-count invariance, broker invariant, determinism.

The exchange promises result transparency — identical result multisets at any
lane count, across all three drive modes — plus the server-wide memory
invariant (``broker.used == sum(resident_bytes)`` at every revocation, with
per-lane budgets as individual leases) and a fully deterministic merge
(earliest event first, lane index as the tie-break).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_deployment, run_operator_tree
from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.iterators import Operator
from repro.engine.operators import Exchange
from repro.network.profiles import NetworkProfile, lan
from repro.network.source import DataSource
from repro.plan.physical import JoinImplementation, collector, join, wrapper_scan
from repro.server import QueryServer, SessionStatus
from repro.storage.batch import Batch
from repro.storage.hash_table import stable_bucket_of
from repro.storage.schema import Schema
from repro.storage.tuples import Row

from helpers import make_relation, multiset

SLOW = NetworkProfile(name="slow", initial_latency_ms=40.0, bandwidth_kbps=64.0)

#: The three drive modes (ROADMAP PR 1/2): columnar batches, row-backed
#: batches, and tuple-at-a-time.
DRIVE_MODES = {
    "columnar": {},
    "row-batch": {"columnar": False},
    "tuple": {"batch_size": None},
}


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(0.25, ["lineitem", "supplier", "orders"], seed=42)


def fig3a_plan(implementation=JoinImplementation.DOUBLE_PIPELINED, memory=None):
    inner = join(
        wrapper_scan("lineitem"),
        wrapper_scan("supplier"),
        ["lineitem.l_suppkey"],
        ["supplier.s_suppkey"],
        implementation=implementation,
        memory_limit_bytes=memory,
        operator_id="inner",
    )
    return join(
        inner,
        wrapper_scan("orders"),
        ["lineitem.l_orderkey"],
        ["orders.o_orderkey"],
        implementation=implementation,
        memory_limit_bytes=memory,
        operator_id="outer",
    )


def run_lanes(deployment, lanes, implementation=JoinImplementation.DOUBLE_PIPELINED, **drive):
    return run_operator_tree(
        fig3a_plan(implementation),
        deployment.catalog,
        engine_config=EngineConfig(exchange_lanes=lanes),
        **drive,
    )


class TestLaneCountInvariance:
    @pytest.mark.parametrize("drive", sorted(DRIVE_MODES))
    def test_join_multisets_identical_at_1_2_4_lanes(self, deployment, drive):
        kwargs = DRIVE_MODES[drive]
        reference = multiset(run_lanes(deployment, 1, **kwargs).relation)
        assert reference  # the workload actually joins
        for lanes in (2, 4):
            result = run_lanes(deployment, lanes, **kwargs)
            assert multiset(result.relation) == reference, f"{drive} @ {lanes} lanes"

    def test_hybrid_hash_lanes_match_serial(self, deployment):
        hybrid = JoinImplementation.HYBRID_HASH
        reference = multiset(run_lanes(deployment, 1, implementation=hybrid).relation)
        for lanes in (2, 4):
            result = run_lanes(deployment, lanes, implementation=hybrid)
            assert multiset(result.relation) == reference

    def test_exchange_is_inserted_only_above_one_lane(self, deployment):
        serial = run_lanes(deployment, 1)
        parallel = run_lanes(deployment, 2)
        assert not [
            op for op in serial.context.operators.values() if isinstance(op, Exchange)
        ]
        exchanges = [
            op for op in parallel.context.operators.values() if isinstance(op, Exchange)
        ]
        assert exchanges and all(len(x.lane_operators) == 2 for x in exchanges)

    @pytest.mark.parametrize("drive", sorted(DRIVE_MODES))
    def test_collector_dedup_multisets_identical_across_lanes(self, drive):
        bib = [(i, f"title{i}") for i in range(60)]
        catalog = DataSourceCatalog()
        main = make_relation("bib", ["isbn:int", "title:str"], bib)
        mirror = make_relation("bib", ["isbn:int", "title:str"], bib[20:] + bib[:10])
        catalog.register_source(DataSource("bib-main", main, lan()))
        catalog.register_source(DataSource("bib-mirror", mirror, lan()))
        spec = collector(
            [
                wrapper_scan("bib-main", operator_id="scan_main"),
                wrapper_scan("bib-mirror", operator_id="scan_mirror"),
            ],
            operator_id="coll",
        )
        spec.params["dedup_keys"] = ["bib.isbn"]
        kwargs = DRIVE_MODES[drive]
        reference = None
        for lanes in (1, 2, 4):
            result = run_operator_tree(
                spec,
                catalog,
                engine_config=EngineConfig(exchange_lanes=lanes),
                **kwargs,
            )
            # Dedup must hold globally even though each lane dedups locally:
            # hash partitioning on the dedup key sends every duplicate to the
            # same lane.
            assert result.cardinality == 60
            if reference is None:
                reference = multiset(result.relation)
            else:
                assert multiset(result.relation) == reference


def contended_catalog(rows: int = 1200) -> DataSourceCatalog:
    left = make_relation(
        "l", ["id:int", "tag:str"], [(i, f"tag{i % 7}") for i in range(rows)]
    )
    right = make_relation(
        "r", ["rid:int", "grade:str"], [(i, f"g{i % 5}") for i in range(rows)]
    )
    catalog = DataSourceCatalog()
    catalog.register_source(DataSource("l", left, SLOW))
    catalog.register_source(DataSource("r", right, SLOW))
    return catalog


def contended_join(prefix: str, memory: int):
    return join(
        wrapper_scan("l", operator_id=f"{prefix}_scan_l"),
        wrapper_scan("r", operator_id=f"{prefix}_scan_r"),
        ["l.id"],
        ["r.rid"],
        operator_id=f"{prefix}_join",
        memory_limit_bytes=memory,
    )


def resident_bytes(server) -> int:
    """Recompute resident bytes from live hash tables, lane operators included."""
    total = 0
    operators = []
    for session in server.sessions.values():
        operators.extend(session.context.operators.values())
    for operator in list(operators):
        if isinstance(operator, Exchange):
            operators.extend(operator.lane_operators)
    for operator in operators:
        for table in getattr(operator, "_tables", None) or ():
            total += table.resident_bytes
        inner = getattr(operator, "_inner_table", None)
        if inner is not None:
            total += inner.resident_bytes
    return total


class TestBrokerInvariantAcrossLanes:
    def run_contended(self, lanes: int):
        server = QueryServer(
            contended_catalog(),
            engine_config=EngineConfig(exchange_lanes=lanes),
            memory_capacity_bytes=96 * 1024,
        )
        server.broker.floor_bytes = 8 * 1024
        checks = []

        def check(broker, record):
            checks.append((broker.used_bytes, resident_bytes(server)))

        server.broker.on_revocation = check
        a = server.submit(contended_join("a", memory=80 * 1024), "a")
        b = server.submit(contended_join("b", memory=80 * 1024), "b", arrival_ms=400.0)
        server.run()
        return server, a, b, checks

    @pytest.mark.parametrize("lanes", [1, 2, 4])
    def test_broker_used_equals_resident_at_every_revocation(self, lanes):
        server, a, b, checks = self.run_contended(lanes)
        assert a.status == b.status == SessionStatus.COMPLETED
        assert checks, "expected broker pressure to trigger revocations"
        for broker_used, resident in checks:
            assert broker_used == resident
        # Quiescence: every lane's lease was returned at teardown.
        assert server.broker.used_bytes == 0
        assert resident_bytes(server) == 0

    def test_lane_results_match_serial_under_pressure(self):
        _, a1, b1, _ = self.run_contended(1)
        _, a2, b2, checks = self.run_contended(2)
        assert checks  # the parallel run also revoked (per-lane victim leases)
        assert multiset(a2.result) == multiset(a1.result)
        assert multiset(b2.result) == multiset(b1.result)


class _StaticProducer(Operator):
    """Leaf producer serving pre-built batches (all available immediately)."""

    def __init__(self, operator_id, context, schema, batches):
        super().__init__(operator_id, context)
        self._schema = schema
        self._batches = list(batches)

    @property
    def output_schema(self):
        return self._schema

    def peek_arrival(self):
        if self.state in ("closed", "deactivated") or not self._batches:
            return None
        return self.context.clock.now

    def _next_batch(self, max_rows):
        if not self._batches:
            return Batch.empty(self._schema)
        return self._batches.pop(0)


def build_tie_exchange():
    """Two lanes fed rows that all arrive at t=0: every merge step ties."""
    schema = Schema.of("id:int")
    context = ExecutionContext(
        DataSourceCatalog(),
        config=EngineConfig(per_tuple_cpu_ms=0.0, validate_plans=False),
        query_name="tie",
    )
    rows = [Row(schema, (value,), 0.0) for value in range(16)]
    producer = _StaticProducer(
        "src", context, schema, [Batch.from_rows(schema, rows)]
    )
    xchg = Exchange(
        "xchg",
        context,
        [producer],
        partition_keys=[["id"]],
        lanes=2,
        build_lane=lambda index, lane_context, sources: sources[0],
        output_schema=schema,
    )
    # Routing uses the process-stable hash (lane assignment must agree
    # across parent and worker processes), not the builtin-hash bucket_of.
    expected_lane = {value: stable_bucket_of((value,), 2) for value in range(16)}
    return xchg, expected_lane


class TestDeterministicTieBreaking:
    def test_equal_event_times_emit_in_lane_index_order(self):
        # With zero CPU cost and identical arrivals, both lanes always share
        # the same next-event time; the merge must prefer the lower lane
        # index, so lane 0's rows all precede lane 1's.
        xchg, expected_lane = build_tie_exchange()
        xchg.open()
        emitted = [row.values[0] for row in xchg.iterate()]
        xchg.close()
        lane_sequence = [expected_lane[value] for value in emitted]
        assert sorted(lane_sequence) == lane_sequence, (
            f"tie-broken emission interleaved lanes: {lane_sequence}"
        )
        # Within a lane, input order is preserved (routing is order-stable).
        for lane in (0, 1):
            in_lane = [value for value in emitted if expected_lane[value] == lane]
            assert in_lane == sorted(in_lane)

    def test_repeat_runs_are_bit_identical(self, deployment):
        first = run_lanes(deployment, 4)
        second = run_lanes(deployment, 4)
        assert [row.values for row in first.relation.rows] == [
            row.values for row in second.relation.rows
        ]
        assert first.completion_time_ms == second.completion_time_ms
        assert first.time_to_first_tuple_ms == second.time_to_first_tuple_ms


class TestExchangeStreamSemantics:
    def test_union_peek_arrival_scans_remaining_children(self, joinable_catalog):
        # Satellite regression: the union's peek must report the earliest
        # arrival across *remaining* children, not end-of-stream when the
        # current child is exhausted while later ones still hold data.
        from repro.engine.operators import Union, WrapperScan

        context = ExecutionContext(joinable_catalog, query_name="u")
        drained = WrapperScan("s0", context, "ord")
        pending = WrapperScan("s1", context, "ord")
        union = Union("u", context, [drained, pending])
        union.open()
        while drained.next() is not None:
            pass  # exhaust child 0 directly
        assert drained.peek_arrival() is None
        assert union.peek_arrival() is not None
