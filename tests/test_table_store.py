"""Unit tests for repro.storage.table_store."""

import pytest

from repro.errors import StorageError
from repro.storage.table_store import LocalStore

from helpers import make_relation


@pytest.fixture
def store():
    return LocalStore()


def test_materialize_and_get(store):
    rel = make_relation("r1", ["a:int"], [(1,), (2,)])
    info = store.materialize(rel, at_time=42.0)
    assert info.cardinality == 2
    assert info.materialized_at == 42.0
    assert store.get("r1") is rel
    assert "r1" in store


def test_get_missing_raises(store):
    with pytest.raises(StorageError):
        store.get("missing")
    with pytest.raises(StorageError):
        store.info("missing")


def test_rematerialize_replaces(store):
    store.materialize(make_relation("r", ["a:int"], [(1,)]))
    store.materialize(make_relation("r", ["a:int"], [(1,), (2,)]))
    assert store.info("r").cardinality == 2
    assert len(store) == 1


def test_drop_and_clear(store):
    store.materialize(make_relation("a", ["x:int"], [(1,)]))
    store.materialize(make_relation("b", ["x:int"], [(1,)]))
    store.drop("a")
    store.drop("not-there")  # no error
    assert store.names() == ["b"]
    store.clear()
    assert len(store) == 0


def test_total_bytes(store):
    rel = make_relation("a", ["x:int"], [(1,), (2,)])
    store.materialize(rel)
    assert store.total_bytes == rel.size_bytes


def test_iteration(store):
    store.materialize(make_relation("a", ["x:int"], [(1,)]))
    assert list(store) == ["a"]
