"""The multicore (``process``) exchange backend: parity and graceful failure.

The backend's contract is strict determinism equivalence with inline: for the
same plan and catalog, process lanes must produce the *identical result
multiset* and the *identical virtual-time accounting* (completion, time to
first tuple, clock breakdown, broker interaction sequence).  Real wall-clock
is the only thing allowed to differ — that's the point.

Failure handling: a lane worker that dies (killed, raises, fails at import)
must surface as :class:`QueryExecutionError` on the parent promptly — no
hang — with every broker lease released and every worker process reaped.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.bench.harness import build_deployment, run_operator_tree
from repro.engine.context import EngineConfig
from repro.errors import ExecutionError, QueryExecutionError
from repro.plan.physical import join, wrapper_scan
from repro.server import QueryServer, SessionStatus

from helpers import multiset
from test_exchange import contended_catalog, contended_join

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="the process backend targets POSIX multiprocessing"
)


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(0.25, ["lineitem", "supplier", "orders"], seed=42)


def fig3a_plan(memory=None):
    # Explicit operator ids everywhere: auto-generated scan ids are a global
    # counter, so two plan builds would disagree on operator-stat keys.
    inner = join(
        wrapper_scan("lineitem", operator_id="scan_li"),
        wrapper_scan("supplier", operator_id="scan_su"),
        ["lineitem.l_suppkey"],
        ["supplier.s_suppkey"],
        memory_limit_bytes=memory,
        operator_id="inner",
    )
    return join(
        inner,
        wrapper_scan("orders", operator_id="scan_or"),
        ["lineitem.l_orderkey"],
        ["orders.o_orderkey"],
        memory_limit_bytes=memory,
        operator_id="outer",
    )


def run_fig3a(deployment, backend, lanes, memory=None):
    return run_operator_tree(
        fig3a_plan(memory),
        deployment.catalog,
        engine_config=EngineConfig(exchange_lanes=lanes, exchange_backend=backend),
    )


def clock_breakdown(result):
    stats = result.context.clock.stats
    return (stats.wait_ms, stats.cpu_ms, stats.io_ms)


def assert_runs_identical(inline, process):
    assert multiset(process.relation) == multiset(inline.relation)
    assert process.completion_time_ms == inline.completion_time_ms
    assert process.time_to_first_tuple_ms == inline.time_to_first_tuple_ms
    assert clock_breakdown(process) == clock_breakdown(inline)
    inline_ops = inline.context.stats.operator_stats
    process_ops = process.context.stats.operator_stats
    assert set(process_ops) == set(inline_ops)
    for key, expected in inline_ops.items():
        got = process_ops[key]
        assert (got.tuples_produced, got.tuples_consumed, got.overflow_events) == (
            expected.tuples_produced,
            expected.tuples_consumed,
            expected.overflow_events,
        ), key


class TestStandaloneParity:
    """Free-running mode: real parallelism, virtual accounting unchanged."""

    @pytest.mark.parametrize("lanes", [2, 4])
    def test_fig3a_parity(self, deployment, lanes):
        inline = run_fig3a(deployment, "inline", lanes)
        process = run_fig3a(deployment, "process", lanes)
        assert multiset(inline.relation)  # the workload actually joins
        assert_runs_identical(inline, process)

    def test_spill_workload_parity(self):
        # Memory-starved joins overflow to disk inside the workers; the
        # spills' virtual I/O must fold back onto the parent lane clocks.
        def starved(backend):
            return run_operator_tree(
                contended_join("a", memory=128 * 1024),
                contended_catalog(rows=3000),
                engine_config=EngineConfig(
                    exchange_lanes=2, exchange_backend=backend
                ),
            )

        inline = starved("inline")
        process = starved("process")
        overflows = sum(
            stats.overflow_events
            for stats in inline.context.stats.operator_stats.values()
        )
        assert overflows > 0, "expected the starved workload to spill"
        assert_runs_identical(inline, process)

    def test_wire_report_bounded(self, deployment):
        from repro.engine.operators import Exchange

        process = run_fig3a(deployment, "process", 2)
        exchanges = [
            op
            for op in process.context.operators.values()
            if isinstance(op, Exchange)
        ]
        assert exchanges
        for exchange in exchanges:
            assert exchange.wire_report is not None
            for lane_report in exchange.wire_report:
                to_worker = lane_report["to_worker"]
                assert to_worker["batches"] > 0
                assert to_worker["payload_bytes"] > 0
                # Dictionary deltas ride inside the payload frames.
                assert to_worker["dict_bytes_shipped"] <= to_worker["payload_bytes"]

    def test_spawn_start_method(self, deployment, monkeypatch):
        # Everything shipped to a worker must survive pickling (spawn), not
        # just inherit address space (fork).
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        inline = run_fig3a(deployment, "inline", 2)
        process = run_fig3a(deployment, "process", 2)
        assert_runs_identical(inline, process)

    def test_hand_built_exchange_requires_lane_spec(self):
        from test_exchange import build_tie_exchange

        xchg, _ = build_tie_exchange()
        xchg.backend_name = "process"
        with pytest.raises(ExecutionError, match="picklable lane spec"):
            xchg.open()
        # The refusal happens before any worker spawns; inline cleanup applies.
        xchg.close()


class TestLockstepServerParity:
    """Broker-backed mode: revocation-for-revocation identical to inline."""

    def run_contended(self, backend):
        server = QueryServer(
            contended_catalog(),
            engine_config=EngineConfig(exchange_lanes=2, exchange_backend=backend),
            memory_capacity_bytes=96 * 1024,
        )
        server.broker.floor_bytes = 8 * 1024
        victims = []
        server.broker.on_revocation = lambda broker, record: victims.append(
            (record.victim, record.requestor, record.new_limit_bytes)
        )
        a = server.submit(contended_join("a", memory=80 * 1024), "a")
        b = server.submit(contended_join("b", memory=80 * 1024), "b", arrival_ms=400.0)
        stats = server.run()
        return server, a, b, victims, stats

    def test_revocation_sequence_and_results_match_inline(self):
        inline = self.run_contended("inline")
        process = self.run_contended("process")
        server_i, a_i, b_i, victims_i, stats_i = inline
        server_p, a_p, b_p, victims_p, stats_p = process
        assert a_p.status == b_p.status == SessionStatus.COMPLETED
        # Mid-build revocations happened, and hit the same leases in the
        # same order at the same resulting limits.
        assert victims_i and victims_p == victims_i
        assert multiset(a_p.result) == multiset(a_i.result)
        assert multiset(b_p.result) == multiset(b_i.result)
        assert stats_p.makespan_ms == stats_i.makespan_ms
        # Quiescence: every mirror lease was returned on both paths.
        assert server_i.broker.used_bytes == 0
        assert server_p.broker.used_bytes == 0


class TestWorkerFailure:
    """A dead lane must fail the query cleanly: no hang, no leaked leases."""

    @pytest.mark.parametrize("mode", ["raise", "exit", "import"])
    def test_injected_crash_raises_query_execution_error(
        self, deployment, monkeypatch, mode
    ):
        monkeypatch.setenv("REPRO_CRASH_LANE", "1")
        monkeypatch.setenv("REPRO_CRASH_MODE", mode)
        with pytest.raises(QueryExecutionError):
            run_fig3a(deployment, "process", 2)

    def test_killed_lane_raises_promptly(self, deployment, monkeypatch):
        from repro.parallel import backend as backend_module

        original_spawn = backend_module.ProcessLanes._spawn

        def spawn_then_kill(self):
            original_spawn(self)
            os.kill(self.states[1].process.pid, signal.SIGKILL)

        monkeypatch.setattr(backend_module.ProcessLanes, "_spawn", spawn_then_kill)
        with pytest.raises(QueryExecutionError, match="worker died"):
            run_fig3a(deployment, "process", 2)

    def test_crashed_worker_processes_are_reaped(self, deployment, monkeypatch):
        from repro.parallel import backend as backend_module

        spawned = []
        original_spawn = backend_module.ProcessLanes._spawn

        def recording_spawn(self):
            original_spawn(self)
            spawned.extend(state.process for state in self.states)

        monkeypatch.setattr(backend_module.ProcessLanes, "_spawn", recording_spawn)
        monkeypatch.setenv("REPRO_CRASH_LANE", "0")
        monkeypatch.setenv("REPRO_CRASH_MODE", "raise")
        with pytest.raises(QueryExecutionError):
            run_fig3a(deployment, "process", 2)
        assert spawned
        for process in spawned:
            assert not process.is_alive()

    def test_server_crash_releases_broker_leases(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRASH_LANE", "0")
        monkeypatch.setenv("REPRO_CRASH_MODE", "raise")
        server = QueryServer(
            contended_catalog(rows=200),
            engine_config=EngineConfig(exchange_lanes=2, exchange_backend="process"),
            memory_capacity_bytes=96 * 1024,
        )
        session = server.submit(contended_join("a", memory=64 * 1024), "a")
        server.run()  # a session's failure is contained, not propagated
        assert session.status == SessionStatus.FAILED
        assert session.error
        assert server.broker.used_bytes == 0
