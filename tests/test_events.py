"""Unit tests for repro.engine.events and repro.engine.event_handler."""

import pytest

from repro.engine.event_handler import EventHandler
from repro.engine.events import EventQueue
from repro.errors import RuleError
from repro.plan.rules import (
    Compare,
    Event,
    EventType,
    Rule,
    constant,
    deactivate,
    event_value,
    replan,
    reschedule,
)

from test_rules import FakeContext


class TestEventQueue:
    def test_fifo_order(self):
        queue = EventQueue()
        queue.emit(EventType.OPENED, "a")
        queue.emit(EventType.CLOSED, "a")
        assert queue.pop().event_type == EventType.OPENED
        assert queue.pop().event_type == EventType.CLOSED
        assert queue.pop() is None

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.emit(EventType.OPENED, "a")
        assert queue
        assert len(queue) == 1

    def test_drain(self):
        queue = EventQueue()
        queue.emit(EventType.OPENED, "a")
        queue.emit(EventType.OPENED, "b")
        drained = queue.drain()
        assert [e.subject for e in drained] == ["a", "b"]
        assert not queue
        assert queue.total_enqueued == 2

    def test_emit_returns_event_with_time(self):
        queue = EventQueue()
        event = queue.emit(EventType.TIMEOUT, "src", value=None, at_time=12.5)
        assert event.at_time == 12.5
        assert "timeout(src)" in str(event)


def make_handler(context=None, log=None):
    log = log if log is not None else []

    def executor(action, event):
        log.append((action.action_type.value, action.target, event.subject))

    return EventHandler(context or FakeContext(), executor), log


class TestEventHandler:
    def test_matching_rule_fires_once(self):
        handler, log = make_handler()
        handler.register(Rule("r1", "own", EventType.CLOSED, "frag1", actions=[replan()]))
        queue = EventQueue()
        queue.emit(EventType.CLOSED, "frag1")
        queue.emit(EventType.CLOSED, "frag1")
        fired = handler.process(queue)
        assert fired == 1  # firing makes the rule inactive
        assert len(log) == 1
        assert handler.rules_fired == 1
        assert handler.events_processed == 2

    def test_condition_gate(self):
        handler, log = make_handler()
        handler.register(
            Rule(
                "r1",
                "own",
                EventType.THRESHOLD,
                "src",
                condition=Compare(event_value(), ">=", constant(10)),
                actions=[deactivate("other")],
            )
        )
        handler.process_event(Event(EventType.THRESHOLD, "src", value=5))
        assert log == []
        handler.process_event(Event(EventType.THRESHOLD, "src", value=11))
        assert log == [("deactivate", "other", "src")]

    def test_non_matching_subject_ignored(self):
        handler, log = make_handler()
        handler.register(Rule("r1", "own", EventType.TIMEOUT, "srcA", actions=[reschedule()]))
        handler.process_event(Event(EventType.TIMEOUT, "srcB"))
        assert log == []

    def test_inactive_owner_suppresses_rule(self):
        handler, log = make_handler()
        handler.register(Rule("r1", "coll1", EventType.TIMEOUT, "srcA", actions=[reschedule()]))
        handler.deactivate_owner("coll1")
        handler.process_event(Event(EventType.TIMEOUT, "srcA"))
        assert log == []
        handler.reactivate_owner("coll1")
        handler.process_event(Event(EventType.TIMEOUT, "srcA"))
        assert len(log) == 1

    def test_all_actions_of_a_rule_execute_in_order(self):
        handler, log = make_handler()
        handler.register(
            Rule(
                "r1",
                "own",
                EventType.TIMEOUT,
                "srcA",
                actions=[deactivate("x"), deactivate("y"), reschedule()],
            )
        )
        handler.process_event(Event(EventType.TIMEOUT, "srcA"))
        assert [entry[0] for entry in log] == ["deactivate", "deactivate", "reschedule"]
        assert handler.actions_executed == 3

    def test_multiple_rules_same_event(self):
        handler, log = make_handler()
        handler.register(Rule("r1", "own", EventType.CLOSED, "f", actions=[replan()]))
        handler.register(Rule("r2", "own", EventType.CLOSED, "f", actions=[reschedule()]))
        handler.process_event(Event(EventType.CLOSED, "f"))
        assert len(log) == 2

    def test_earlier_rule_can_deactivate_later_rule_owner(self):
        context = FakeContext()
        fired = []

        handler = None

        def executor(action, event):
            fired.append(action.action_type.value)
            if action.action_type.value == "deactivate":
                handler.deactivate_owner(action.target)

        handler = EventHandler(context, executor)
        handler.register(Rule("r1", "own1", EventType.CLOSED, "f", actions=[deactivate("own2")]))
        handler.register(Rule("r2", "own2", EventType.CLOSED, "f", actions=[replan()]))
        handler.process_event(Event(EventType.CLOSED, "f"))
        # r2's owner was deactivated by r1 before r2 could fire.
        assert fired == ["deactivate"]

    def test_duplicate_rule_name_rejected(self):
        handler, _ = make_handler()
        handler.register(Rule("r1", "own", EventType.CLOSED, "f", actions=[replan()]))
        with pytest.raises(RuleError):
            handler.register(Rule("r1", "own", EventType.OPENED, "f", actions=[replan()]))

    def test_rule_lookup(self):
        handler, _ = make_handler()
        rule = Rule("r1", "own", EventType.CLOSED, "f", actions=[replan()])
        handler.register(rule)
        assert handler.rule("r1") is rule
        with pytest.raises(RuleError):
            handler.rule("missing")
        assert handler.active_rules == [rule]
