"""Unit tests for repro.datagen.tpcd."""

import pytest

from repro.datagen.tpcd import (
    SF1_CARDINALITIES,
    TABLE_SCHEMAS,
    TPCDGenerator,
    cardinality,
    scale_factor_for_megabytes,
)


class TestScaling:
    def test_scale_factor_for_megabytes(self):
        assert scale_factor_for_megabytes(10) == pytest.approx(0.01)
        assert scale_factor_for_megabytes(50) == pytest.approx(0.05)
        with pytest.raises(ValueError):
            scale_factor_for_megabytes(0)

    def test_dimension_tables_do_not_scale(self):
        assert cardinality("region", 0.001) == SF1_CARDINALITIES["region"]
        assert cardinality("nation", 10.0) == SF1_CARDINALITIES["nation"]

    def test_fact_tables_scale_linearly(self):
        assert cardinality("supplier", 0.01) == round(SF1_CARDINALITIES["supplier"] * 0.01)
        assert cardinality("orders", 0.01) == round(SF1_CARDINALITIES["orders"] * 0.01)


class TestGeneration:
    def test_requested_tables_only(self):
        db = TPCDGenerator(scale_mb=0.2).generate(["part", "supplier"])
        assert set(db.names) == {"part", "supplier"}

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            TPCDGenerator().generate(["warehouse"])

    def test_deterministic_given_seed(self):
        a = TPCDGenerator(scale_mb=0.2, seed=11).generate(["supplier"])
        b = TPCDGenerator(scale_mb=0.2, seed=11).generate(["supplier"])
        assert a["supplier"].multiset() == b["supplier"].multiset()

    def test_different_seeds_differ(self):
        a = TPCDGenerator(scale_mb=0.2, seed=1).generate(["supplier"])
        b = TPCDGenerator(scale_mb=0.2, seed=2).generate(["supplier"])
        assert a["supplier"].multiset() != b["supplier"].multiset()

    def test_schemas_match_declared(self, tiny_tpcd):
        for table in tiny_tpcd.names:
            assert tiny_tpcd[table].schema.names == TABLE_SCHEMAS[table].names

    def test_cardinality_ratios_preserved(self, tiny_tpcd):
        cards = tiny_tpcd.cardinalities()
        # partsupp ~ 4x part, orders ~ 10x customer (TPC-D ratios).
        assert cards["partsupp"] == pytest.approx(4 * cards["part"], rel=0.3)
        assert cards["orders"] == pytest.approx(10 * cards["customer"], rel=0.3)

    def test_foreign_keys_reference_parents(self, tiny_tpcd):
        nation_keys = set(tiny_tpcd["nation"].column("n_nationkey"))
        assert set(tiny_tpcd["supplier"].column("s_nationkey")) <= nation_keys
        assert set(tiny_tpcd["customer"].column("c_nationkey")) <= nation_keys
        part_keys = set(tiny_tpcd["part"].column("p_partkey"))
        assert set(tiny_tpcd["partsupp"].column("ps_partkey")) <= part_keys
        customer_keys = set(tiny_tpcd["customer"].column("c_custkey"))
        assert set(tiny_tpcd["orders"].column("o_custkey")) <= customer_keys

    def test_primary_keys_unique(self, tiny_tpcd):
        for table, key in [
            ("region", "r_regionkey"),
            ("nation", "n_nationkey"),
            ("supplier", "s_suppkey"),
            ("customer", "c_custkey"),
            ("part", "p_partkey"),
            ("orders", "o_orderkey"),
        ]:
            rel = tiny_tpcd[table]
            assert rel.distinct_count(key) == rel.cardinality

    def test_lineitem_references_orders(self):
        db = TPCDGenerator(scale_mb=0.1, seed=3).generate(["orders", "lineitem"])
        order_keys = set(db["orders"].column("o_orderkey"))
        assert set(db["lineitem"].column("l_orderkey")) <= order_keys

    def test_total_bytes_positive(self, tiny_tpcd):
        assert tiny_tpcd.total_bytes > 0

    def test_fk_skew_changes_distribution(self):
        uniform = TPCDGenerator(scale_mb=0.3, seed=5, fk_skew=0.0).generate(["orders"])
        skewed = TPCDGenerator(scale_mb=0.3, seed=5, fk_skew=1.5).generate(["orders"])
        uniform_top = max(
            uniform["orders"].column("o_custkey").count(k)
            for k in set(uniform["orders"].column("o_custkey"))
        )
        skewed_top = max(
            skewed["orders"].column("o_custkey").count(k)
            for k in set(skewed["orders"].column("o_custkey"))
        )
        assert skewed_top > uniform_top
