"""Static plan validation: malformed trees rejected, real plans admitted.

The validator runs by default (``EngineConfig(validate_plans=True)``) in two
places — ``build_operator`` for single trees and ``QueryServer.submit_plan``
for full plans — so these tests exercise both wiring points plus the
validator's own finding codes: ``schema-mismatch``, ``unbound-key``,
``encoding-mismatch``, ``sub-floor-allotment``.
"""

from __future__ import annotations

import pytest

from repro.analysis.plan_check import check_tree, validate_plan, validate_tree
from repro.engine.builder import build_operator
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.iterators import Operator
from repro.errors import PlanValidationError
from repro.optimizer.memory_alloc import MIN_JOIN_ALLOTMENT_BYTES
from repro.plan.fragments import Fragment, QueryPlan
from repro.plan.physical import (
    OperatorSpec,
    OperatorType,
    exchange,
    join,
    project_,
    table_scan,
    union_,
    wrapper_scan,
)
from repro.server import QueryServer, SessionStatus

from helpers import multiset, reference_join


def good_join(memory_limit_bytes: int | None = None) -> OperatorSpec:
    return join(
        wrapper_scan("ord"),
        wrapper_scan("item"),
        ["ord.o_id"],
        ["item.i_order"],
        memory_limit_bytes=memory_limit_bytes,
    )


def codes(findings) -> set[str]:
    return {finding.code for finding in findings}


class TestTreeValidation:
    def test_well_formed_join_is_clean(self, joinable_catalog):
        assert validate_tree(good_join(), joinable_catalog) == []

    def test_unknown_join_key_rejected(self, joinable_catalog):
        spec = join(
            wrapper_scan("ord"), wrapper_scan("item"), ["ord.nope"], ["item.i_order"]
        )
        findings = validate_tree(spec, joinable_catalog)
        assert codes(findings) == {"unbound-key"}
        assert "'ord.nope'" in findings[0].message
        assert "ord.o_id" in findings[0].message  # actionable: shows the real schema
        with pytest.raises(PlanValidationError) as excinfo:
            check_tree(spec, joinable_catalog)
        assert excinfo.value.findings == findings

    def test_union_arity_mismatch_rejected(self, joinable_catalog):
        spec = union_([wrapper_scan("ord"), wrapper_scan("item")])  # 2 cols vs 3
        findings = validate_tree(spec, joinable_catalog)
        assert codes(findings) == {"schema-mismatch"}
        assert "input #1" in findings[0].message

    def test_compatible_union_is_clean(self, joinable_catalog):
        spec = union_([wrapper_scan("ord"), wrapper_scan("ord")])
        assert validate_tree(spec, joinable_catalog) == []

    def test_projection_of_missing_attribute_rejected(self, joinable_catalog):
        spec = project_(wrapper_scan("ord"), ["ord.o_id", "ord.ghost"])
        findings = validate_tree(spec, joinable_catalog)
        assert codes(findings) == {"schema-mismatch"}
        assert "ord.ghost" in findings[0].message

    def test_self_join_duplicate_names_rejected(self, joinable_catalog):
        spec = join(
            wrapper_scan("ord"), wrapper_scan("ord"), ["ord.o_id"], ["ord.o_id"]
        )
        findings = validate_tree(spec, joinable_catalog)
        assert codes(findings) == {"schema-mismatch"}
        assert "duplicate attribute names" in findings[0].message

    def test_dependent_join_unbound_bind_key_rejected(self, joinable_catalog):
        spec = OperatorSpec(
            "dj",
            OperatorType.DEPENDENT_JOIN,
            children=[wrapper_scan("ord"), wrapper_scan("item")],
            params={
                "source": "item",
                "left_keys": ["ord.ghost"],
                "right_keys": ["item.i_order"],
            },
        )
        findings = [f for f in validate_tree(spec, joinable_catalog) if f.operator_id == "dj"]
        assert codes(findings) == {"unbound-key"}
        assert "bind key" in findings[0].message

    def test_unknown_source_stops_schema_propagation(self, joinable_catalog):
        # An unregistered source stays the catalog's CatalogError at build
        # time; the validator must not guess (or crash on) its schema.
        spec = join(
            wrapper_scan("ghost_source"), wrapper_scan("item"), ["x"], ["item.i_order"]
        )
        assert validate_tree(spec, joinable_catalog) == []


class TestExchangeValidation:
    def test_well_formed_exchange_is_clean(self, joinable_catalog):
        spec = exchange(good_join(), ["ord.o_id"], 2)
        assert validate_tree(spec, joinable_catalog) == []

    def test_unbound_partition_key_rejected(self, joinable_catalog):
        spec = exchange(good_join(), ["ord.ghost"], 2)
        findings = validate_tree(spec, joinable_catalog)
        assert codes(findings) == {"unbound-key"}
        assert "'ord.ghost'" in findings[0].message
        assert "routed" in findings[0].message  # says why the key matters

    def test_non_positive_lane_count_rejected(self, joinable_catalog):
        findings = validate_tree(exchange(good_join(), ["ord.o_id"], 0), joinable_catalog)
        assert codes(findings) == {"bad-lane-count"}
        assert "0" in findings[0].message

    def test_bool_lane_count_rejected(self, joinable_catalog):
        # bool is an int subtype; the validator must not accept lanes=True.
        spec = exchange(good_join(), ["ord.o_id"], 2)
        spec.params["lanes"] = True
        findings = validate_tree(spec, joinable_catalog)
        assert codes(findings) == {"bad-lane-count"}

    def test_unknown_backend_rejected(self, joinable_catalog):
        spec = exchange(good_join(), ["ord.o_id"], 2)
        spec.params["backend"] = "threads"
        findings = validate_tree(spec, joinable_catalog)
        assert codes(findings) == {"bad-lane-count"}
        assert "'threads'" in findings[0].message
        assert "inline" in findings[0].message and "process" in findings[0].message

    def test_known_backends_accepted(self, joinable_catalog):
        for backend in ("inline", "process"):
            spec = exchange(good_join(), ["ord.o_id"], 2)
            spec.params["backend"] = backend
            assert validate_tree(spec, joinable_catalog) == []

    def test_schema_passes_through_unchanged(self, joinable_catalog):
        # The exchange is transparent: a parent projecting the child schema
        # still validates above it.
        spec = project_(exchange(good_join(), ["ord.o_id"], 2), ["ord.o_id", "item.i_sku"])
        assert validate_tree(spec, joinable_catalog) == []


class TestEncodingConsistency:
    def mismatched(self) -> OperatorSpec:
        # o_cust is str (dictionary-encoded), i_qty is int (plain codes).
        return join(
            wrapper_scan("ord"), wrapper_scan("item"), ["ord.o_cust"], ["item.i_qty"]
        )

    def test_mixed_key_encoding_rejected(self, joinable_catalog):
        findings = validate_tree(self.mismatched(), joinable_catalog)
        assert codes(findings) == {"encoding-mismatch"}
        assert "dictionary-encoded" in findings[0].message

    def test_clean_when_encoding_disabled(self, joinable_catalog):
        assert validate_tree(self.mismatched(), joinable_catalog, encoded=False) == []

    def test_declared_translation_is_the_escape_hatch(self, joinable_catalog):
        spec = self.mismatched()
        spec.params["key_translation"] = "decode"
        assert validate_tree(spec, joinable_catalog) == []

    def test_both_sides_encoded_is_clean(self, joinable_catalog):
        spec = join(
            wrapper_scan("ord"), wrapper_scan("item"), ["ord.o_cust"], ["item.i_sku"]
        )
        assert validate_tree(spec, joinable_catalog) == []


class TestBuilderWiring:
    def test_malformed_tree_rejected_before_building(self, context):
        spec = join(
            wrapper_scan("ord"), wrapper_scan("item"), ["ord.nope"], ["item.i_order"]
        )
        with pytest.raises(PlanValidationError) as excinfo:
            build_operator(spec, context)
        assert "unbound-key" in str(excinfo.value)
        assert excinfo.value.findings  # every violation is carried, not just one
        assert not context.operators  # nothing was instantiated

    def test_validation_can_be_opted_out(self, context):
        spec = join(
            wrapper_scan("ord"), wrapper_scan("item"), ["ord.nope"], ["item.i_order"]
        )
        operator = build_operator(spec, context, validate=False)
        assert isinstance(operator, Operator)

    def test_config_flag_disables_validation(self, joinable_catalog):
        context = ExecutionContext(
            joinable_catalog, config=EngineConfig(validate_plans=False)
        )
        spec = join(
            wrapper_scan("ord"), wrapper_scan("item"), ["ord.nope"], ["item.i_order"]
        )
        assert isinstance(build_operator(spec, context), Operator)

    def test_valid_tree_builds_and_runs_unchanged(self, context, orders_and_items):
        operator = build_operator(good_join(), context)
        operator.open()
        produced = list(operator.iterate())
        orders, items = orders_and_items
        expected = reference_join(orders, items, "ord.o_id", "item.i_order")
        assert multiset(produced) == multiset(expected)

    def test_sub_floor_allotment_allowed_on_hand_built_trees(self, context):
        # Tests and benchmarks force overflow with tiny allotments; the floor
        # is an admission-time (plan-level) invariant only.
        operator = build_operator(good_join(memory_limit_bytes=256), context)
        assert isinstance(operator, Operator)


class TestPlanValidation:
    def plan(self, root: OperatorSpec) -> QueryPlan:
        return QueryPlan(
            query_name="q", fragments=[Fragment("f1", root, result_name="answer")]
        )

    def test_cross_fragment_schema_propagates(self, joinable_catalog):
        scan_frag = Fragment("f1", wrapper_scan("ord"), result_name="ord_mat")
        consumer = join(
            table_scan("ord_mat"), wrapper_scan("item"), ["ord.o_id"], ["item.i_order"]
        )
        plan = QueryPlan(
            query_name="q",
            fragments=[scan_frag, Fragment("f2", consumer, result_name="answer")],
            dependencies={"f2": {"f1"}},
        )
        assert validate_plan(plan, joinable_catalog) == []
        bad_consumer = join(
            table_scan("ord_mat"), wrapper_scan("item"), ["ord.ghost"], ["item.i_order"]
        )
        bad_plan = QueryPlan(
            query_name="q",
            fragments=[scan_frag, Fragment("f2", bad_consumer, result_name="answer")],
            dependencies={"f2": {"f1"}},
        )
        assert codes(validate_plan(bad_plan, joinable_catalog)) == {"unbound-key"}

    def test_sub_floor_allotment_rejected_at_plan_level(self, joinable_catalog):
        plan = self.plan(good_join(memory_limit_bytes=MIN_JOIN_ALLOTMENT_BYTES - 1))
        findings = validate_plan(plan, joinable_catalog)
        assert codes(findings) == {"sub-floor-allotment"}
        assert validate_plan(plan, joinable_catalog, enforce_floor=False) == []

    def test_floor_exactly_met_is_clean(self, joinable_catalog):
        plan = self.plan(good_join(memory_limit_bytes=MIN_JOIN_ALLOTMENT_BYTES))
        assert validate_plan(plan, joinable_catalog) == []


class TestServerAdmission:
    def test_malformed_plan_rejected_at_submit(self, joinable_catalog):
        server = QueryServer(joinable_catalog)
        bad = join(
            wrapper_scan("ord"), wrapper_scan("item"), ["ord.nope"], ["item.i_order"]
        )
        plan = QueryPlan(
            query_name="bad", fragments=[Fragment("f1", bad, result_name="answer")]
        )
        with pytest.raises(PlanValidationError):
            server.submit_plan(plan, "bad")
        assert "bad" not in server.sessions  # no half-admitted session remains

    def test_validation_opt_out_at_submit(self, joinable_catalog):
        server = QueryServer(joinable_catalog)
        bad = join(
            wrapper_scan("ord"), wrapper_scan("item"), ["ord.nope"], ["item.i_order"]
        )
        plan = QueryPlan(
            query_name="bad", fragments=[Fragment("f1", bad, result_name="answer")]
        )
        session = server.submit_plan(
            plan, "bad", engine_config=EngineConfig(validate_plans=False)
        )
        assert session.session_id == "bad"

    def test_good_plan_admitted_and_runs(self, joinable_catalog, orders_and_items):
        server = QueryServer(joinable_catalog)
        plan = QueryPlan(
            query_name="good",
            fragments=[Fragment("f1", good_join(), result_name="answer")],
        )
        session = server.submit_plan(plan, "good")
        server.run()
        assert session.status == SessionStatus.COMPLETED
        orders, items = orders_and_items
        expected = reference_join(orders, items, "ord.o_id", "item.i_order")
        assert multiset(session.result) == multiset(expected)
