"""Unit tests for memory allocation and rule generation."""

import pytest

from repro.errors import OptimizationError
from repro.optimizer.memory_alloc import (
    MIN_JOIN_ALLOTMENT_BYTES,
    JoinMemoryRequest,
    allocate_memory,
)
from repro.optimizer.rulegen import (
    overflow_method_rule,
    replan_rule,
    rules_for_fragment,
    timeout_replan_rule,
    timeout_reschedule_rule,
)
from repro.plan.fragments import Fragment
from repro.plan.physical import OverflowMethod, join, wrapper_scan
from repro.plan.rules import ActionType, Event, EventType
from repro.storage.memory import MB

from test_rules import FakeContext


class TestAllocateMemory:
    def test_empty_requests(self):
        assert allocate_memory([], 10 * MB) == {}

    def test_unbounded_pool_gives_unbounded_budgets(self):
        requests = [JoinMemoryRequest("j1", MB), JoinMemoryRequest("j2", MB)]
        allocations = allocate_memory(requests, None)
        assert allocations == {"j1": None, "j2": None}

    def test_proportional_to_build_size(self):
        requests = [JoinMemoryRequest("big", 8 * MB), JoinMemoryRequest("small", 2 * MB)]
        allocations = allocate_memory(requests, 10 * MB)
        assert allocations["big"] > allocations["small"]
        assert sum(allocations.values()) <= 10 * MB

    def test_floor_respected(self):
        requests = [JoinMemoryRequest("tiny", 1), JoinMemoryRequest("huge", 100 * MB)]
        allocations = allocate_memory(requests, 10 * MB)
        assert allocations["tiny"] >= MIN_JOIN_ALLOTMENT_BYTES

    def test_pool_too_small_raises(self):
        requests = [JoinMemoryRequest(f"j{i}", MB) for i in range(10)]
        with pytest.raises(OptimizationError):
            allocate_memory(requests, MIN_JOIN_ALLOTMENT_BYTES * 5)

    def test_total_never_exceeds_pool(self):
        requests = [JoinMemoryRequest(f"j{i}", (i + 1) * MB) for i in range(5)]
        pool = 3 * MB
        allocations = allocate_memory(requests, pool)
        assert sum(allocations.values()) <= pool + MIN_JOIN_ALLOTMENT_BYTES * len(requests)


def make_fragment(reliable=False, estimate=100):
    root = join(
        wrapper_scan("a", operator_id="scan_a"),
        wrapper_scan("b", operator_id="scan_b"),
        ["a.k"],
        ["b.k"],
        operator_id="join_ab",
    )
    return Fragment(
        fragment_id="frag1",
        root=root,
        result_name="res1",
        estimated_cardinality=estimate,
        estimate_reliable=reliable,
        covers=frozenset({"a", "b"}),
    )


class TestRuleGeneration:
    def test_replan_rule_fires_on_2x_error_in_both_directions(self):
        fragment = make_fragment()
        rule = replan_rule(fragment, estimated_cardinality=100, factor=2.0)
        ctx = FakeContext()
        assert rule.condition.evaluate(ctx, Event(EventType.CLOSED, "frag1", value=200))
        assert rule.condition.evaluate(ctx, Event(EventType.CLOSED, "frag1", value=50))
        assert not rule.condition.evaluate(ctx, Event(EventType.CLOSED, "frag1", value=120))
        assert rule.actions[0].action_type == ActionType.REOPTIMIZE

    def test_timeout_rules(self):
        reschedule = timeout_reschedule_rule("srcA", owner="frag1")
        assert reschedule.event_type == EventType.TIMEOUT
        assert reschedule.actions[0].action_type == ActionType.RESCHEDULE
        replan = timeout_replan_rule("srcA", owner="frag1")
        assert replan.actions[0].action_type == ActionType.REOPTIMIZE

    def test_overflow_rule_targets_join(self):
        fragment = make_fragment()
        rule = overflow_method_rule(fragment.root, OverflowMethod.SYMMETRIC_FLUSH, owner="frag1")
        assert rule.subject == "join_ab"
        assert rule.actions[0].argument == "symmetric_flush"

    def test_rules_for_fragment_unreliable_estimate(self):
        fragment = make_fragment(reliable=False)
        rules = rules_for_fragment(fragment, overflow_method=OverflowMethod.LEFT_FLUSH)
        names = {rule.name for rule in rules}
        assert any(name.startswith("replan-") for name in names)
        assert any(name.startswith("reschedule-frag1-a") for name in names)
        assert any(name.startswith("overflow-") for name in names)

    def test_rules_for_fragment_reliable_estimate_no_replan(self):
        fragment = make_fragment(reliable=True)
        rules = rules_for_fragment(fragment)
        assert not any(rule.name.startswith("replan-") for rule in rules)

    def test_rules_for_fragment_no_reschedule_when_disabled(self):
        fragment = make_fragment()
        rules = rules_for_fragment(fragment, reschedule_on_timeout=False)
        assert not any(rule.name.startswith("reschedule-") for rule in rules)
