"""Unit tests for repro.storage.tuples."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import Schema
from repro.storage.tuples import Row, rows_from_dicts


@pytest.fixture
def schema():
    return Schema.of("t.id:int", "t.name:str")


class TestRow:
    def test_arity_mismatch_rejected(self, schema):
        with pytest.raises(SchemaError):
            Row(schema, (1,))

    def test_index_and_name_access(self, schema):
        row = Row(schema, (7, "ada"))
        assert row[0] == 7
        assert row["t.name"] == "ada"
        assert row["name"] == "ada"

    def test_get_with_default(self, schema):
        row = Row(schema, (7, "ada"))
        assert row.get("missing", "fallback") == "fallback"
        assert row.get("id") == 7

    def test_as_dict(self, schema):
        row = Row(schema, (7, "ada"))
        assert row.as_dict() == {"t.id": 7, "t.name": "ada"}

    def test_with_arrival_copies(self, schema):
        row = Row(schema, (7, "ada"), arrival=1.0)
        later = row.with_arrival(5.0)
        assert later.arrival == 5.0
        assert row.arrival == 1.0
        assert later.values == row.values

    def test_project(self, schema):
        row = Row(schema, (7, "ada"))
        projected = row.project(["t.name"])
        assert projected.values == ("ada",)
        assert projected.schema.names == ("t.name",)

    def test_key(self, schema):
        row = Row(schema, (7, "ada"))
        assert row.key(["name", "id"]) == ("ada", 7)

    def test_concat_takes_later_arrival(self, schema):
        other_schema = Schema.of("u.x:int")
        left = Row(schema, (1, "a"), arrival=3.0)
        right = Row(other_schema, (9,), arrival=8.0)
        joined = left.concat(right)
        assert joined.values == (1, "a", 9)
        assert joined.arrival == 8.0
        assert joined.schema.names == ("t.id", "t.name", "u.x")

    def test_size_bytes_matches_schema(self, schema):
        row = Row(schema, (1, "a"))
        assert row.size_bytes == schema.tuple_size

    def test_iteration_and_len(self, schema):
        row = Row(schema, (1, "a"))
        assert list(row) == [1, "a"]
        assert len(row) == 2


class TestRowsFromDicts:
    def test_accepts_base_and_qualified_keys(self, schema):
        rows = rows_from_dicts(schema, [{"t.id": 1, "name": "ada"}])
        assert rows[0].values == (1, "ada")

    def test_missing_attribute_rejected(self, schema):
        with pytest.raises(SchemaError):
            rows_from_dicts(schema, [{"id": 1}])
