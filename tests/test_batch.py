"""Unit and property tests for the columnar Batch abstraction."""

from __future__ import annotations

import array as array_module

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.batch import Batch, BatchCursor, gather_join, transpose_rows
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.tuples import Row

SCHEMA = Schema.of("t.k:int", "t.name:str", "t.qty:int")


def make_rows(pairs):
    return [Row.make(SCHEMA, tuple(values), arrival) for values, arrival in pairs]


SAMPLE = make_rows(
    [
        ((1, "a", 10), 0.5),
        ((2, "b", 20), 1.5),
        ((1, "c", 30), 2.5),
        ((3, "d", 40), 3.0),
    ]
)


# -- construction and conversion ------------------------------------------------


def test_from_rows_exposes_columns():
    batch = Batch.from_rows(SCHEMA, SAMPLE)
    assert not batch.is_columnar
    assert len(batch) == 4
    assert batch.columns == [[1, 2, 1, 3], ["a", "b", "c", "d"], [10, 20, 30, 40]]
    assert batch.arrivals == [0.5, 1.5, 2.5, 3.0]


def test_from_columns_materializes_rows_lazily():
    columns = [[1, 2], ["x", "y"], [5, 6]]
    batch = Batch.from_columns(SCHEMA, columns, [1.0, 2.0])
    assert batch.is_columnar
    rows = batch.rows()
    assert [row.values for row in rows] == [(1, "x", 5), (2, "y", 6)]
    assert [row.arrival for row in rows] == [1.0, 2.0]
    assert all(row.schema is SCHEMA for row in rows)
    # Cached: second call returns the same list.
    assert batch.rows() is rows


def test_empty_batch_is_falsy_end_of_stream_sentinel():
    batch = Batch.empty(SCHEMA)
    assert not batch
    assert len(batch) == 0
    assert batch.rows() == []
    assert batch.columns == [[], [], []]


def test_getitem_without_materializing_all_rows():
    batch = Batch.from_columns(SCHEMA, [[1, 2], ["x", "y"], [5, 6]], [1.0, 2.0])
    row = batch[1]
    assert row.values == (2, "y", 6)
    assert row.arrival == 2.0


def test_take_and_slice_match_row_semantics():
    batch = Batch.from_rows(SCHEMA, SAMPLE).with_schema(SCHEMA)
    columnar = Batch.from_columns(SCHEMA, batch.columns, list(batch.arrivals))
    taken = columnar.take([2, 0])
    assert [row.values for row in taken] == [(1, "c", 30), (1, "a", 10)]
    assert taken.arrivals == [2.5, 0.5]
    sliced = columnar.slice(1, 3)
    assert [row.values for row in sliced] == [(2, "b", 20), (1, "c", 30)]


def test_select_columns_aliases_column_lists():
    batch = Batch.from_columns(SCHEMA, [[1, 2], ["x", "y"], [5, 6]], [1.0, 2.0])
    projected = batch.select_columns([2, 0], Schema.of("t.qty:int", "t.k:int"))
    assert projected.columns[0] is batch.columns[2]
    assert projected.columns[1] is batch.columns[0]
    assert [row.values for row in projected] == [(5, 1), (6, 2)]


def test_key_tuples_both_representations():
    row_backed = Batch.from_rows(SCHEMA, SAMPLE)
    columnar = Batch.from_columns(SCHEMA, row_backed.columns, list(row_backed.arrivals))
    for batch in (row_backed, columnar):
        assert batch.key_tuples((0,)) == [(1,), (2,), (1,), (3,)]
        assert batch.key_tuples((0, 2)) == [(1, 10), (2, 20), (1, 30), (3, 40)]


def test_concat_columnar_and_mixed():
    first = Batch.from_columns(SCHEMA, [[1], ["a"], [10]], [0.5])
    second = Batch.from_rows(SCHEMA, SAMPLE[1:2])
    both = Batch.concat(SCHEMA, [first, second])
    assert [row.values for row in both] == [(1, "a", 10), (2, "b", 20)]
    all_columnar = Batch.concat(
        SCHEMA, [first, Batch.from_columns(SCHEMA, [[9], ["z"], [90]], [4.0])]
    )
    assert all_columnar.is_columnar
    assert all_columnar.columns == [[1, 9], ["a", "z"], [10, 90]]


def test_gather_join_matches_row_concat():
    right_schema = Schema.of("r.k:int", "r.v:str")
    right_rows = [
        Row.make(right_schema, (1, "R1"), 2.0),
        Row.make(right_schema, (1, "R2"), 0.1),
    ]
    left = Batch.from_columns(SCHEMA, [[1, 2], ["a", "b"], [10, 20]], [1.0, 3.0])
    out_schema = SCHEMA.join(right_schema)
    joined = gather_join(left, [0, 0], right_rows, out_schema)
    expected = [
        left[0].concat(right_rows[0], out_schema),
        left[0].concat(right_rows[1], out_schema),
    ]
    assert [row.values for row in joined] == [row.values for row in expected]
    assert joined.arrivals == [row.arrival for row in expected]
    # aligned=True (identity take) must agree with the general path.
    aligned = gather_join(left, [0, 1], right_rows, out_schema, aligned=True)
    general = gather_join(left, [0, 1], right_rows, out_schema)
    assert [row.values for row in aligned] == [row.values for row in general]
    assert aligned.arrivals == general.arrivals


def test_batch_cursor_slices_and_rows():
    batch = Batch.from_rows(SCHEMA, SAMPLE)
    cursor = BatchCursor(batch)
    first = cursor.take(3)
    assert len(first) == 3 and len(cursor) == 1
    assert cursor.next_row().values == SAMPLE[3].values
    assert not cursor
    assert cursor.next_row() is None
    assert not cursor.take(5)


def test_relation_column_block_serves_pending_without_boxing():
    relation = Relation("t", SCHEMA)
    relation.extend_batch(
        Batch.from_columns(SCHEMA, [[1, 2], ["a", "b"], [10, 20]], [0.0, 0.0])
    )
    relation.extend_batch(
        Batch.from_columns(SCHEMA, [[3, 4], ["c", "d"], [30, 40]], [0.0, 0.0])
    )
    columns, count = relation.column_block(1, 2)  # spans both pending batches
    assert count == 2
    assert columns == [[2, 3], ["b", "c"], [20, 30]]
    columns, count = relation.column_block(3, 5)
    assert count == 1 and columns == [[4], ["d"], [40]]
    columns, count = relation.column_block(9, 5)
    assert count == 0
    # The blocks were served straight from the buffered column lists.
    assert relation._rows == [] and len(relation) == 4
    # After something reads rows, blocks come from the transposed row list.
    assert len(relation.rows) == 4
    columns, count = relation.column_block(0, 2)
    assert count == 2 and columns == [[1, 2], ["a", "b"], [10, 20]]


def test_relation_extend_batch_lazy_materialization():
    relation = Relation("t", SCHEMA)
    relation.extend_batch(Batch.from_columns(SCHEMA, [[1, 2], ["a", "b"], [1, 2]], [0.0, 0.0]))
    assert len(relation) == 2
    assert relation.cardinality == 2
    # Column access served straight from the buffered batch.
    assert relation.column("t.k") == [1, 2]
    relation.extend_batch(Batch.from_rows(SCHEMA, SAMPLE[:1]))
    assert len(relation) == 3
    assert [row.values for row in relation] == [(1, "a", 1), (2, "b", 2), (1, "a", 10)]


# -- hypothesis: Batch <-> Row round trips --------------------------------------

values_strategy = st.tuples(
    st.integers(min_value=-100, max_value=100),
    st.text(alphabet="abcdef", min_size=0, max_size=4),
    st.integers(min_value=0, max_value=50),
)
rows_strategy = st.lists(
    st.tuples(values_strategy, st.floats(min_value=0.0, max_value=1e6)),
    min_size=0,
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_row_batch_row_round_trip(pairs):
    """rows -> from_rows -> columns -> from_columns -> rows is the identity."""
    rows = make_rows(pairs)
    row_backed = Batch.from_rows(SCHEMA, rows)
    columns = [list(column) for column in row_backed.columns]
    rebuilt = Batch.from_columns(SCHEMA, columns, list(row_backed.arrivals))
    assert len(rebuilt) == len(rows)
    assert [row.values for row in rebuilt.rows()] == [row.values for row in rows]
    assert [row.arrival for row in rebuilt.rows()] == [row.arrival for row in rows]
    # And back again: transposing the materialized rows recovers the columns.
    assert transpose_rows(rebuilt.rows()) == (columns if rows else [])


@settings(max_examples=60, deadline=None)
@given(rows_strategy, st.integers(min_value=1, max_value=7))
def test_cursor_reassembles_batch(pairs, chunk):
    rows = make_rows(pairs)
    cursor = BatchCursor(Batch.from_rows(SCHEMA, rows))
    reassembled = []
    while cursor:
        part = cursor.take(chunk)
        assert 0 < len(part) <= chunk
        reassembled.extend(part.rows())
    assert [row.values for row in reassembled] == [row.values for row in rows]


@settings(max_examples=60, deadline=None)
@given(rows_strategy, st.data())
def test_take_matches_row_selection(pairs, data):
    rows = make_rows(pairs)
    batch = Batch.from_rows(SCHEMA, rows)
    columnar = Batch.from_columns(SCHEMA, batch.columns, list(batch.arrivals))
    if rows:
        indices = data.draw(
            st.lists(st.integers(min_value=0, max_value=len(rows) - 1), max_size=20)
        )
    else:
        indices = []
    taken = columnar.take(indices)
    assert [row.values for row in taken] == [rows[i].values for i in indices]
    assert taken.arrivals == pytest.approx([rows[i].arrival for i in indices])


class TestTypedColumns:
    """Typed (array-backed) columns: construction, stability, fallback."""

    def setup_method(self):
        self.schema = Schema.of("id:int", "score:float", "name:str")

    def test_build_columns_types_numeric_attributes(self):
        from repro.storage.columns import build_columns

        columns = build_columns(
            self.schema, [[1, 2, 3], [0.5, 1.5, 2.5], ["a", "b", "c"]]
        )
        assert isinstance(columns[0], array_module.array)
        assert columns[0].typecode == "q"
        assert columns[1].typecode == "d"
        assert isinstance(columns[2], list)

    def test_typed_transpose_from_rows(self):
        from repro.storage.batch import typed_transpose

        rows = [Row(self.schema, (i, i * 0.5, f"n{i}")) for i in range(4)]
        columns = typed_transpose(self.schema, rows)
        assert columns[0].typecode == "q"
        assert list(columns[0]) == [0, 1, 2, 3]
        assert list(columns[1]) == [0.0, 0.5, 1.0, 1.5]

    def test_build_column_falls_back_on_mixed_types(self):
        from repro.storage.columns import build_column

        column = build_column("int", [1, 2, "oops", 4])
        assert isinstance(column, list)
        assert column == [1, 2, "oops", 4]

    def test_take_and_slice_preserve_storage_class(self):
        from repro.storage.batch import typed_transpose

        rows = [Row(self.schema, (i, float(i), f"n{i}")) for i in range(6)]
        batch = Batch.from_columns(
            self.schema, typed_transpose(self.schema, rows), [0.0] * 6
        )
        taken = batch.take([1, 3, 5])
        assert isinstance(taken.columns[0], array_module.array)
        assert list(taken.columns[0]) == [1, 3, 5]
        sliced = batch.slice(2, 4)
        assert isinstance(sliced.columns[1], array_module.array)
        assert list(sliced.columns[1]) == [2.0, 3.0]
        assert [row.values for row in sliced] == [(2, 2.0, "n2"), (3, 3.0, "n3")]

    def test_concat_preserves_storage_class(self):
        from repro.storage.batch import typed_transpose

        def typed_batch(lo, hi):
            rows = [Row(self.schema, (i, float(i), f"n{i}")) for i in range(lo, hi)]
            return Batch.from_columns(
                self.schema, typed_transpose(self.schema, rows), [0.0] * (hi - lo)
            )

        merged = Batch.concat(self.schema, [typed_batch(0, 3), typed_batch(3, 5)])
        assert isinstance(merged.columns[0], array_module.array)
        assert list(merged.columns[0]) == [0, 1, 2, 3, 4]

    def test_concat_degrades_on_misfit_values(self):
        from repro.storage.batch import typed_transpose

        rows = [Row(self.schema, (i, float(i), f"n{i}")) for i in range(3)]
        typed = Batch.from_columns(
            self.schema, typed_transpose(self.schema, rows), [0.0] * 3
        )
        # A later part carrying a non-int id must degrade the column, not raise.
        loose = Batch.from_columns(self.schema, [["x"], [9.0], ["z"]], [0.0])
        merged = Batch.concat(self.schema, [typed, loose])
        assert isinstance(merged.columns[0], list)
        assert merged.columns[0] == [0, 1, 2, "x"]
        assert len(merged) == 4

    def test_append_value_degrades_typed_column(self):
        from repro.storage.columns import append_value, empty_columns

        columns = empty_columns(self.schema)
        append_value(columns, 0, 7)
        append_value(columns, 0, "mixed")
        assert columns[0] == [7, "mixed"]

    def test_extend_column_repairs_partial_extension(self):
        from repro.storage.columns import empty_columns, extend_column

        columns = empty_columns(self.schema)
        columns[0].extend([1, 2])
        extend_column(columns, 0, [3, "bad", 5], base_length=2)
        assert columns[0] == [1, 2, 3, "bad", 5]

