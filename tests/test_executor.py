"""Unit tests for the query executor (fragments, events, rule actions)."""

from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.executor import ExecutionStatus, QueryExecutor
from repro.network.profiles import dead, lan
from repro.plan.fragments import Fragment, FragmentStatus, QueryPlan
from repro.plan.physical import OverflowMethod, join, table_scan, wrapper_scan
from repro.plan.rules import (
    Compare,
    EventType,
    Rule,
    constant,
    deactivate,
    event_value,
    replan,
    reschedule,
    return_error,
    select_fragment,
    set_overflow_method,
)

from helpers import multiset, reference_join


def join_fragment(fragment_id="f1", result="res1", memory=None, estimate=None, reliable=True):
    root = join(
        wrapper_scan("ord", operator_id=f"{fragment_id}_scan_ord"),
        wrapper_scan("item", operator_id=f"{fragment_id}_scan_item"),
        ["ord.o_id"],
        ["item.i_order"],
        operator_id=f"{fragment_id}_join",
        memory_limit_bytes=memory,
        estimated_cardinality=estimate,
    )
    return Fragment(
        fragment_id=fragment_id,
        root=root,
        result_name=result,
        estimated_cardinality=estimate,
        estimate_reliable=reliable,
        covers=frozenset({"ord", "item"}),
    )


class TestBasicExecution:
    def test_single_fragment_completes_with_answer(self, joinable_catalog, context):
        plan = QueryPlan(query_name="q", fragments=[join_fragment()])
        outcome = QueryExecutor(context).execute(plan)
        assert outcome.status == ExecutionStatus.COMPLETED
        assert outcome.answer is not None
        expected = reference_join(
            joinable_catalog.source("ord").relation,
            joinable_catalog.source("item").relation,
            "o_id",
            "i_order",
        )
        assert multiset(outcome.answer) == multiset(expected)
        assert outcome.completed_fragments == ["f1"]
        assert outcome.observed_cardinalities == {"res1": 3}
        assert plan.fragments[0].status == FragmentStatus.COMPLETED

    def test_output_timeline_recorded_for_final_fragment(self, context):
        plan = QueryPlan(query_name="q", fragments=[join_fragment()])
        outcome = QueryExecutor(context).execute(plan)
        assert outcome.stats.output_timeline.total == 3
        assert outcome.stats.time_to_first_tuple is not None

    def test_multi_fragment_plan_with_dependency(self, context):
        first = join_fragment("f1", "join1_result")
        second_root = table_scan("join1_result", operator_id="f2_scan")
        second = Fragment(fragment_id="f2", root=second_root, result_name="final")
        plan = QueryPlan(
            query_name="q",
            fragments=[first, second],
            dependencies={"f2": {"f1"}},
        )
        outcome = QueryExecutor(context).execute(plan)
        assert outcome.status == ExecutionStatus.COMPLETED
        assert outcome.answer.cardinality == 3
        assert "join1_result" in context.local_store

    def test_fragment_stats_and_catalog_feedback(self, context):
        plan = QueryPlan(query_name="q", fragments=[join_fragment(estimate=100)])
        outcome = QueryExecutor(context).execute(plan)
        frag_stats = outcome.stats.fragment_stats[0]
        assert frag_stats.result_cardinality == 3
        assert frag_stats.estimated_cardinality == 100
        assert context.catalog.statistics.cardinality("res1") == 3


class TestRuleDrivenAdaptivity:
    def test_replan_rule_stops_execution_for_reoptimization(self, context):
        first = join_fragment("f1", "res1", estimate=50, reliable=False)
        first.rules = [
            Rule(
                "replan-f1",
                "f1",
                EventType.CLOSED,
                "f1",
                condition=Compare(event_value(), "<=", constant(50), scale=0.5),
                actions=[replan()],
            )
        ]
        second = Fragment(
            fragment_id="f2", root=table_scan("res1", operator_id="f2_scan"), result_name="final"
        )
        plan = QueryPlan(query_name="q", fragments=[first, second], dependencies={"f2": {"f1"}})
        outcome = QueryExecutor(context).execute(plan)
        assert outcome.status == ExecutionStatus.NEEDS_REOPTIMIZATION
        assert outcome.completed_fragments == ["f1"]
        assert outcome.remaining_fragments == ["f2"]
        assert outcome.stats.reoptimizations == 1

    def test_replan_rule_not_triggered_when_estimate_close(self, context):
        first = join_fragment("f1", "res1", estimate=3)
        first.rules = [
            Rule(
                "replan-f1",
                "f1",
                EventType.CLOSED,
                "f1",
                condition=Compare(event_value(), ">=", constant(3), scale=2.0),
                actions=[replan()],
            )
        ]
        second = Fragment(
            fragment_id="f2", root=table_scan("res1", operator_id="f2_scan"), result_name="final"
        )
        plan = QueryPlan(query_name="q", fragments=[first, second], dependencies={"f2": {"f1"}})
        outcome = QueryExecutor(context).execute(plan)
        assert outcome.status == ExecutionStatus.COMPLETED

    def test_timeout_rule_requests_reschedule(self, joinable_catalog):
        joinable_catalog.source("ord").set_profile(dead())
        context = ExecutionContext(joinable_catalog, config=EngineConfig(default_timeout_ms=100.0))
        fragment = join_fragment("f1", "res1")
        fragment.rules = [
            Rule("rescue", "f1", EventType.TIMEOUT, "ord", actions=[reschedule()])
        ]
        plan = QueryPlan(query_name="q", fragments=[fragment])
        outcome = QueryExecutor(context).execute(plan)
        joinable_catalog.source("ord").set_profile(lan())
        assert outcome.status == ExecutionStatus.RESCHEDULE_REQUESTED
        assert "ord" in outcome.failed_sources
        assert outcome.remaining_fragments == ["f1"]

    def test_unhandled_timeout_fails(self, joinable_catalog):
        joinable_catalog.source("ord").set_profile(dead())
        context = ExecutionContext(joinable_catalog, config=EngineConfig(default_timeout_ms=100.0))
        plan = QueryPlan(query_name="q", fragments=[join_fragment()])
        outcome = QueryExecutor(context).execute(plan)
        joinable_catalog.source("ord").set_profile(lan())
        assert outcome.status == ExecutionStatus.FAILED
        assert plan.fragments[0].status == FragmentStatus.FAILED

    def test_set_overflow_method_action(self, context):
        fragment = join_fragment("f1", "res1", memory=100_000)
        fragment.rules = [
            Rule(
                "pick-overflow",
                "f1",
                EventType.OPENED,
                "f1_join",
                actions=[set_overflow_method("f1_join", OverflowMethod.SYMMETRIC_FLUSH.value)],
            )
        ]
        plan = QueryPlan(query_name="q", fragments=[fragment])
        QueryExecutor(context).execute(plan)
        assert context.operator("f1_join").overflow_method == OverflowMethod.SYMMETRIC_FLUSH

    def test_return_error_action_fails_query(self, context):
        fragment = join_fragment("f1", "res1")
        fragment.rules = [
            Rule(
                "abort",
                "f1",
                EventType.OPENED,
                "f1_join",
                actions=[return_error("policy violation")],
            )
        ]
        plan = QueryPlan(query_name="q", fragments=[fragment])
        outcome = QueryExecutor(context).execute(plan)
        assert outcome.status == ExecutionStatus.FAILED
        assert "policy violation" in outcome.error

    def test_deactivate_fragment_action_skips_it(self, context):
        first = join_fragment("f1", "res1")
        second = join_fragment("f2", "res2")
        first.rules = [
            Rule("skip-f2", "f1", EventType.CLOSED, "f1", actions=[deactivate("f2")])
        ]
        plan = QueryPlan(query_name="q", fragments=[first, second])
        outcome = QueryExecutor(context).execute(plan)
        assert outcome.status == ExecutionStatus.COMPLETED
        assert plan.fragments[1].status == FragmentStatus.SKIPPED
        assert outcome.completed_fragments == ["f1"]

    def test_select_fragment_contingent_planning(self, context):
        first = join_fragment("f1", "res1")
        alt_a = join_fragment("f2a", "res2a")
        alt_b = join_fragment("f2b", "res2b")
        first.rules = [
            Rule(
                "choose-b",
                "f1",
                EventType.CLOSED,
                "f1",
                actions=[select_fragment("f2b")],
            )
        ]
        plan = QueryPlan(
            query_name="q",
            fragments=[first, alt_a, alt_b],
            choice_groups={"next": ["f2a", "f2b"]},
        )
        outcome = QueryExecutor(context).execute(plan)
        assert outcome.status == ExecutionStatus.COMPLETED
        assert plan.fragment("f2a").status == FragmentStatus.SKIPPED
        assert plan.fragment("f2b").status == FragmentStatus.COMPLETED
