"""Unit tests for repro.query.parser."""

import pytest

from repro.errors import QueryError
from repro.query.parser import parse_query


def test_paper_example_query_parses():
    query = parse_query(
        "Select * from A,B,C,D,E "
        "where A.ssn = B.ssn and B.ssn = C.ssn and C.ssn = D.ssn and D.ssn = E.ssn",
        name="paper",
    )
    assert query.relations == ("A", "B", "C", "D", "E")
    assert len(query.join_predicates) == 4
    assert query.projection == ()
    assert query.join_connected()


def test_projection_list():
    query = parse_query("select a.x, b.y from a, b where a.k = b.k")
    assert query.projection == ("a.x", "b.y")


def test_selection_predicates_with_literals():
    query = parse_query(
        "select * from part where part.p_size > 10 and part.p_brand = 'Brand#13'"
    )
    assert len(query.selections) == 2
    sizes = {(s.attr, s.op, s.value) for s in query.selections}
    assert ("p_size", ">", 10) in sizes
    assert ("p_brand", "=", "Brand#13") in sizes


def test_float_literal():
    query = parse_query("select * from t where t.x <= 2.5")
    assert query.selections[0].value == 2.5


def test_case_insensitive_keywords_and_semicolon():
    query = parse_query("SELECT * FROM a, b WHERE a.x = b.y;")
    assert len(query.join_predicates) == 1


def test_no_where_clause():
    query = parse_query("select * from a")
    assert query.relations == ("a",)
    assert query.join_predicates == ()


def test_unqualified_attribute_rejected():
    with pytest.raises(QueryError):
        parse_query("select * from a where x = 3")


def test_unquoted_string_literal_rejected():
    with pytest.raises(QueryError):
        parse_query("select * from a where a.x = hello")


def test_non_equi_join_between_attributes_rejected():
    with pytest.raises(QueryError):
        parse_query("select * from a, b where a.x < b.y")


def test_garbage_rejected():
    with pytest.raises(QueryError):
        parse_query("delete from users")


def test_malformed_relation_list_rejected():
    with pytest.raises(QueryError):
        parse_query("select * from a b c")
