"""Unit tests for repro.query.conjunctive."""

import pytest

from repro.errors import QueryError
from repro.query.conjunctive import ConjunctiveQuery, JoinPredicate, SelectionPredicate


class TestJoinPredicate:
    def test_qualified_names(self):
        pred = JoinPredicate("a", "x", "b", "y")
        assert pred.left_qualified == "a.x"
        assert pred.right_qualified == "b.y"
        assert pred.tables() == frozenset({"a", "b"})
        assert pred.involves("a") and not pred.involves("c")

    def test_self_join_rejected(self):
        with pytest.raises(QueryError):
            JoinPredicate("a", "x", "a", "y")

    def test_oriented(self):
        pred = JoinPredicate("a", "x", "b", "y")
        flipped = pred.oriented("b")
        assert flipped.left_table == "b"
        assert flipped.right_qualified == "a.x"
        assert pred.oriented("a") is pred
        with pytest.raises(QueryError):
            pred.oriented("c")


class TestSelectionPredicate:
    def test_evaluate_all_operators(self):
        assert SelectionPredicate("t", "a", "=", 5).evaluate(5)
        assert SelectionPredicate("t", "a", "!=", 5).evaluate(4)
        assert SelectionPredicate("t", "a", "<", 5).evaluate(4)
        assert SelectionPredicate("t", "a", "<=", 5).evaluate(5)
        assert SelectionPredicate("t", "a", ">", 5).evaluate(6)
        assert SelectionPredicate("t", "a", ">=", 5).evaluate(5)
        assert not SelectionPredicate("t", "a", ">", 5).evaluate(5)

    def test_invalid_operator(self):
        with pytest.raises(QueryError):
            SelectionPredicate("t", "a", "like", "x")


class TestConjunctiveQuery:
    def make_query(self):
        return ConjunctiveQuery(
            name="q",
            relations=["a", "b", "c"],
            join_predicates=[JoinPredicate("a", "x", "b", "x"), JoinPredicate("b", "y", "c", "y")],
            selections=[SelectionPredicate("a", "z", ">", 10)],
        )

    def test_requires_relations(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(name="q", relations=[])

    def test_duplicate_relations_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(name="q", relations=["a", "a"])

    def test_predicates_must_reference_query_relations(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                name="q", relations=["a"], join_predicates=[JoinPredicate("a", "x", "b", "y")]
            )
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                name="q", relations=["a"], selections=[SelectionPredicate("b", "x", "=", 1)]
            )

    def test_predicates_between_orients_to_left_set(self):
        query = self.make_query()
        preds = query.predicates_between(["b"], ["a"])
        assert len(preds) == 1
        assert preds[0].left_table == "b"
        assert preds[0].right_table == "a"

    def test_predicates_between_no_match(self):
        query = self.make_query()
        assert query.predicates_between(["a"], ["c"]) == []

    def test_selections_on(self):
        query = self.make_query()
        assert len(query.selections_on("a")) == 1
        assert query.selections_on("b") == []

    def test_join_connected(self):
        assert self.make_query().join_connected()
        disconnected = ConjunctiveQuery(
            name="q2",
            relations=["a", "b", "c"],
            join_predicates=[JoinPredicate("a", "x", "b", "x")],
        )
        assert not disconnected.join_connected()
        assert ConjunctiveQuery(name="single", relations=["a"]).join_connected()

    def test_subquery_restricts_predicates(self):
        query = self.make_query()
        sub = query.subquery(["a", "b"])
        assert set(sub.relations) == {"a", "b"}
        assert len(sub.join_predicates) == 1
        assert len(sub.selections) == 1
        with pytest.raises(QueryError):
            query.subquery([])

    def test_str_renders_sql_like(self):
        text = str(self.make_query())
        assert text.startswith("SELECT *")
        assert "FROM a, b, c" in text
        assert "WHERE" in text

    def test_is_join_query(self):
        assert self.make_query().is_join_query
        assert not ConjunctiveQuery(name="s", relations=["a"]).is_join_query
