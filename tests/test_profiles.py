"""Unit tests for repro.network.profiles."""

import pytest

from repro.network.profiles import NetworkProfile, bursty, dead, lan, slow_start, wide_area


class TestNetworkProfile:
    def test_transfer_time_scales_with_bytes(self):
        profile = NetworkProfile(bandwidth_kbps=100.0)
        assert profile.transfer_ms(2048) == pytest.approx(2 * profile.transfer_ms(1024))

    def test_transfer_requires_positive_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkProfile(bandwidth_kbps=0.0).transfer_ms(10)

    def test_arrival_schedule_monotone_and_after_latency(self):
        profile = NetworkProfile(initial_latency_ms=100.0, bandwidth_kbps=10.0)
        arrivals = profile.arrival_schedule([512] * 5)
        assert arrivals == sorted(arrivals)
        assert arrivals[0] >= 100.0

    def test_arrival_schedule_deterministic_given_seed(self):
        profile = NetworkProfile(jitter_ms=20.0, seed=3)
        sizes = [100] * 10
        assert profile.arrival_schedule(sizes) == profile.arrival_schedule(sizes)

    def test_different_seed_changes_jittered_schedule(self):
        sizes = [100] * 10
        a = NetworkProfile(jitter_ms=20.0, seed=1).arrival_schedule(sizes)
        b = NetworkProfile(jitter_ms=20.0, seed=2).arrival_schedule(sizes)
        assert a != b

    def test_burst_gaps_increase_spread(self):
        sizes = [100] * 20
        smooth = NetworkProfile(bandwidth_kbps=100.0).arrival_schedule(sizes)
        gappy = NetworkProfile(
            bandwidth_kbps=100.0, burst_size=5, burst_gap_ms=50.0
        ).arrival_schedule(sizes)
        assert gappy[-1] > smooth[-1]

    def test_with_overrides(self):
        profile = lan().with_overrides(initial_latency_ms=99.0)
        assert profile.initial_latency_ms == 99.0
        assert profile.bandwidth_kbps == lan().bandwidth_kbps

    def test_start_offset_shifts_schedule(self):
        profile = NetworkProfile(initial_latency_ms=10.0, bandwidth_kbps=100.0)
        base = profile.arrival_schedule([100], start_ms=0.0)
        shifted = profile.arrival_schedule([100], start_ms=500.0)
        assert shifted[0] == pytest.approx(base[0] + 500.0)


class TestCannedProfiles:
    def test_lan_is_fast(self):
        assert lan().bandwidth_kbps > wide_area().bandwidth_kbps

    def test_wide_area_matches_paper_measurements(self):
        profile = wide_area()
        assert profile.bandwidth_kbps == pytest.approx(82.1)
        assert profile.initial_latency_ms == pytest.approx(145.0)

    def test_dead_profile_unavailable(self):
        assert dead().unavailable

    def test_slow_start_latency_parameter(self):
        assert slow_start(delay_ms=1234.0).initial_latency_ms == 1234.0

    def test_bursty_has_gaps(self):
        profile = bursty()
        assert profile.burst_size > 0
        assert profile.burst_gap_ms > 0

    def test_overrides_via_kwargs(self):
        assert lan(seed=9).seed == 9
