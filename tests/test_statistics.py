"""Unit tests for repro.catalog.statistics."""

import pytest

from repro.catalog.statistics import (
    DEFAULT_JOIN_SELECTIVITY,
    DEFAULT_SELECTION_SELECTIVITY,
    SourceStatistics,
    StatisticsRegistry,
)
from repro.errors import CatalogError


class TestSourceStatistics:
    def test_cardinality_or_default(self):
        assert SourceStatistics().cardinality_or(42) == 42
        assert SourceStatistics(cardinality=7).cardinality_or(42) == 7
        assert not SourceStatistics().has_cardinality

    def test_distinct_or_accepts_base_and_qualified(self):
        stats = SourceStatistics(distinct_values={"a": 10, "t.b": 20})
        assert stats.distinct_or("t.a", 5) == 10
        assert stats.distinct_or("t.b", 5) == 20
        assert stats.distinct_or("t.c", 5) == 5


class TestStatisticsRegistry:
    def test_unknown_source_uses_default(self):
        registry = StatisticsRegistry(default_cardinality=1000)
        assert registry.cardinality("mystery") == 1000
        assert not registry.knows_cardinality("mystery")

    def test_set_and_get_source(self):
        registry = StatisticsRegistry()
        registry.set_source("s", SourceStatistics(cardinality=5))
        assert registry.cardinality("s") == 5
        assert registry.knows_cardinality("s")
        assert registry.sources_with_statistics() == ["s"]

    def test_update_cardinality_creates_entry(self):
        registry = StatisticsRegistry()
        registry.update_cardinality("intermediate", 77)
        assert registry.cardinality("intermediate") == 77

    def test_join_selectivity_symmetric_and_default(self):
        registry = StatisticsRegistry()
        assert registry.join_selectivity("a.x", "b.y") == DEFAULT_JOIN_SELECTIVITY
        registry.set_join_selectivity("a.x", "b.y", 0.25)
        assert registry.join_selectivity("a.x", "b.y") == 0.25
        assert registry.join_selectivity("b.y", "a.x") == 0.25
        assert registry.knows_join_selectivity("b.y", "a.x")

    def test_join_selectivity_validation(self):
        registry = StatisticsRegistry()
        with pytest.raises(CatalogError):
            registry.set_join_selectivity("a.x", "b.y", 0.0)
        with pytest.raises(CatalogError):
            registry.set_join_selectivity("a.x", "b.y", 1.5)

    def test_selection_selectivity(self):
        registry = StatisticsRegistry()
        assert registry.selection_selectivity("a.x") == DEFAULT_SELECTION_SELECTIVITY
        registry.set_selection_selectivity("a.x", 0.5)
        assert registry.selection_selectivity("a.x") == 0.5
        with pytest.raises(CatalogError):
            registry.set_selection_selectivity("a.x", 2.0)

    def test_invalid_default_cardinality(self):
        with pytest.raises(CatalogError):
            StatisticsRegistry(default_cardinality=0)
