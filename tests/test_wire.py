"""The columnar wire format (``storage/wire.py``) and stable partition hashing.

Round-trip law: for any batch the engine can hold, ``decode(encode(batch))``
reproduces the identical contents *and the identical representation* — typed
arrays stay typed, dictionary columns stay dictionary-coded against a mirror
dictionary, run-length arrivals stay run-length, row-backed batches stay
row-backed.  Representation matters because operators branch on it.

Delta law: a dictionary entry crosses one encoder/decoder link at most once.
After the first ship, only codes travel.

Routing law: ``stable_bucket_of`` is a pure function of the key *values* —
independent of ``PYTHONHASHSEED``, process, or platform — because the
process backend routes in the parent while lane hash tables consume in
workers.
"""

from __future__ import annotations

import subprocess
import sys
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.batch import Batch
from repro.storage.columns import DictColumn, Dictionary, RunLengthArrivals
from repro.storage.hash_table import stable_bucket_of
from repro.storage.schema import Schema
from repro.storage.tuples import Row
from repro.storage.wire import WireDecoder, WireEncoder, WireFormatError, pack, unpack

INT64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
FLOATS = st.floats(allow_nan=False, allow_infinity=False, width=64)
ARRIVALS = st.lists(st.floats(min_value=0, max_value=1e6), max_size=32)
STRINGS = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)), max_size=12
)


def roundtrip(batch: Batch) -> Batch:
    encoder, decoder = WireEncoder(), WireDecoder()
    return decoder.decode_batch(unpack(pack(encoder.encode_batch(batch))))


def column_equal(decoded, original) -> bool:
    if type(decoded) is not type(original):
        return False
    if type(original) is array:
        return decoded.typecode == original.typecode and (
            decoded.tobytes() == original.tobytes()
        )
    return list(decoded) == list(original)


class TestColumnRoundTrip:
    @settings(deadline=None)
    @given(values=st.lists(INT64, max_size=64), typecode=st.sampled_from("qd"))
    def test_typed_arrays_ship_byte_for_byte(self, values, typecode):
        if typecode == "d":
            values = [float(v) for v in values]
        column = array(typecode, values)
        schema = Schema.of("a:int" if typecode == "q" else "a:float")
        batch = Batch.from_columns(schema, [column], [0.0] * len(values))
        decoded = roundtrip(batch)
        assert decoded.is_columnar
        out = decoded.wire_parts()[0][0]
        assert column_equal(out, column)

    @settings(deadline=None)
    @given(
        values=st.lists(
            st.one_of(INT64, FLOATS, STRINGS, st.none()), max_size=32
        )
    )
    def test_object_columns_roundtrip(self, values):
        schema = Schema.of("a:str")
        batch = Batch.from_columns(schema, [list(values)], [0.0] * len(values))
        decoded = roundtrip(batch)
        out = decoded.wire_parts()[0][0]
        assert column_equal(out, list(values))

    @settings(deadline=None)
    @given(values=st.lists(STRINGS, max_size=48))
    def test_dict_columns_roundtrip_as_dict_columns(self, values):
        column = DictColumn()
        column.extend(values)
        schema = Schema.of("a:str")
        batch = Batch.from_columns(schema, [column], [0.0] * len(values))
        decoded = roundtrip(batch)
        out = decoded.wire_parts()[0][0]
        assert type(out) is DictColumn
        assert list(out) == values
        # Code vectors align exactly — the mirror assigned identical codes.
        assert out.codes.tobytes() == column.codes.tobytes()

    @settings(deadline=None)
    @given(values=st.lists(STRINGS, min_size=0, max_size=32))
    def test_degraded_string_columns_stay_plain_lists(self, values):
        # A degraded column (dictionary overflow / frozen / misfit values) is
        # a plain list; it must not resurrect as a DictColumn on the far side.
        schema = Schema.of("a:str")
        batch = Batch.from_columns(schema, [list(values)], [0.0] * len(values))
        out = roundtrip(batch).wire_parts()[0][0]
        assert type(out) is list
        assert out == list(values)


class TestArrivalRoundTrip:
    @settings(deadline=None)
    @given(
        runs=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.integers(min_value=1, max_value=5),
            ),
            max_size=16,
        )
    )
    def test_run_length_arrivals_ship_as_runs(self, runs):
        arrivals = RunLengthArrivals()
        for value, count in runs:
            for _ in range(count):
                arrivals.append(value)
        total = len(arrivals)
        schema = Schema.of("a:int")
        batch = Batch.from_columns(schema, [array("q", range(total))], arrivals)
        decoded = roundtrip(batch)
        out = decoded.arrivals
        assert type(out) is RunLengthArrivals
        assert out.to_list() == arrivals.to_list()
        # Representation preserved: runs stay runs (wire_runs not None).
        assert (out.wire_runs() is None) == (arrivals.wire_runs() is None)

    def test_degraded_arrivals_stay_degraded(self):
        # Strictly increasing stamps never merge; past the degrade threshold
        # the container flips to its plain-list form, and the receiver must
        # reconstruct exactly that form.
        arrivals = RunLengthArrivals([float(i) for i in range(200)])
        assert arrivals.wire_runs() is None, "expected the container to degrade"
        schema = Schema.of("a:int")
        batch = Batch.from_columns(schema, [array("q", range(200))], arrivals)
        out = roundtrip(batch).arrivals
        assert type(out) is RunLengthArrivals
        assert out.wire_runs() is None
        assert out.to_list() == arrivals.to_list()


class TestBatchRoundTrip:
    @settings(deadline=None)
    @given(
        rows=st.lists(
            st.tuples(INT64, STRINGS, st.floats(min_value=0, max_value=1e6)),
            max_size=32,
        )
    )
    def test_row_backed_batches_stay_row_backed(self, rows):
        schema = Schema.of("a:int", "b:str")
        batch = Batch.from_rows(
            schema, [Row.make(schema, (a, b), arrival) for a, b, arrival in rows]
        )
        decoded = roundtrip(batch)
        assert not decoded.is_columnar
        assert [(r.values, r.arrival) for r in decoded.rows()] == [
            ((a, b), arrival) for a, b, arrival in rows
        ]

    def test_empty_batch_roundtrips(self):
        schema = Schema.of("a:int")
        decoded = roundtrip(Batch.empty(schema))
        assert len(decoded) == 0 and not decoded
        assert decoded.is_columnar

    @settings(deadline=None)
    @given(
        ints=st.lists(INT64, min_size=4, max_size=4),
        strings=st.lists(STRINGS, min_size=4, max_size=4),
    )
    def test_mixed_column_batch_roundtrips(self, ints, strings):
        dict_column = DictColumn()
        dict_column.extend(strings)
        schema = Schema.of("a:int", "b:str", "c:str")
        batch = Batch.from_columns(
            schema,
            [array("q", ints), dict_column, list(strings)],
            [0.0, 0.0, 1.0, 1.0],
        )
        columns = roundtrip(batch).wire_parts()[0]
        assert type(columns[0]) is array and columns[0].tobytes() == array(
            "q", ints
        ).tobytes()
        assert type(columns[1]) is DictColumn and list(columns[1]) == strings
        assert type(columns[2]) is list and columns[2] == strings

    def test_schema_identity_is_preserved_across_batches(self):
        # One schema object crosses once (a ref ever after) and every decoded
        # batch of the stream shares the single decoded schema object.
        encoder, decoder = WireEncoder(), WireDecoder()
        schema = Schema.of("a:int")
        decoded = [
            decoder.decode_batch(
                unpack(pack(encoder.encode_batch(
                    Batch.from_columns(schema, [array("q", [i])], [0.0])
                )))
            )
            for i in range(3)
        ]
        assert decoded[0].schema is decoded[1].schema is decoded[2].schema


class TestDictionaryDeltas:
    @settings(deadline=None)
    @given(
        ships=st.lists(st.lists(STRINGS, max_size=16), min_size=1, max_size=5)
    )
    def test_each_distinct_string_crosses_once(self, ships):
        dictionary = Dictionary()
        schema = Schema.of("a:str")
        encoder, decoder = WireEncoder(), WireDecoder()
        shipped_strings: list[str] = []
        seen: set[str] = set()
        for values in ships:
            column = DictColumn(dictionary)
            column.extend(values)
            encoded = encoder.encode_batch(
                Batch.from_columns(schema, [column], [0.0] * len(values))
            )
            # The dictionary delta of this frame contains exactly the
            # never-before-shipped entries, in first-seen order.
            delta = encoded[2][0][3]
            expected_new = [v for v in values if v not in seen and not seen.add(v)]
            assert delta == expected_new
            shipped_strings.extend(delta)
            decoded = decoder.decode_batch(unpack(pack(encoded)))
            assert list(decoded.wire_parts()[0][0]) == values
        distinct = {v for values in ships for v in values}
        assert sorted(shipped_strings) == sorted(distinct)
        assert encoder.dict_entries_shipped == len(distinct)

    def test_codes_not_strings_after_first_delta(self):
        dictionary = Dictionary()
        schema = Schema.of("a:str")
        encoder = WireEncoder()
        first = DictColumn(dictionary)
        first.extend(["x", "y", "x"])
        encoder.encode_batch(Batch.from_columns(schema, [first], [0.0] * 3))
        repeat = DictColumn(dictionary)
        repeat.extend(["y", "x", "y", "x"])
        encoded = encoder.encode_batch(
            Batch.from_columns(schema, [repeat], [0.0] * 4)
        )
        kind, wire_id, base, delta, frozen, code_buffer = encoded[2][0]
        assert kind == "dict"
        assert delta == []  # nothing new: only the code buffer travels
        assert base == 2
        assert bytes(code_buffer) == repeat.codes.tobytes()
        assert encoder.dict_entries_shipped == 2

    def test_shared_dictionary_ships_once_for_both_columns(self):
        dictionary = Dictionary()
        left = DictColumn(dictionary)
        left.extend(["a", "b"])
        right = DictColumn(dictionary)
        right.extend(["b", "c"])
        schema = Schema.of("l:str", "r:str")
        encoder, decoder = WireEncoder(), WireDecoder()
        decoded = decoder.decode_batch(
            unpack(pack(encoder.encode_batch(
                Batch.from_columns(schema, [left, right], [0.0, 0.0])
            )))
        )
        out_left, out_right = decoded.wire_parts()[0]
        # Columns sharing a dictionary on the sender share its mirror.
        assert out_left.dictionary is out_right.dictionary
        assert encoder.dict_entries_shipped == 3

    def test_misaligned_delta_is_rejected(self):
        dictionary = Dictionary()
        column = DictColumn(dictionary)
        column.extend(["a", "b"])
        schema = Schema.of("a:str")
        encoder, decoder = WireEncoder(), WireDecoder()
        first = encoder.encode_batch(
            Batch.from_columns(schema, [column], [0.0, 0.0])
        )
        second = encoder.encode_batch(
            Batch.from_columns(schema, [column], [0.0, 0.0])
        )
        # Skipping the first frame leaves the mirror empty; the second frame's
        # empty delta then claims 2 existing entries, which must not decode
        # into a silently misaligned dictionary.
        del first
        with pytest.raises(WireFormatError):
            decoder.decode_batch(unpack(pack(second)))


class TestFraming:
    @settings(deadline=None)
    @given(
        message=st.recursive(
            st.one_of(INT64, FLOATS, STRINGS, st.none(), st.binary(max_size=64)),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.tuples(children, children),
            ),
            max_leaves=16,
        )
    )
    def test_pack_unpack_identity(self, message):
        assert unpack(pack(message)) == message

    def test_out_of_band_buffers_roundtrip(self):
        payload = ("frame", array("q", range(1000)), array("d", [0.5] * 1000))
        kind, ints, floats = unpack(pack(payload))
        assert kind == "frame"
        assert array("q", ints).tobytes() == array("q", range(1000)).tobytes()


class TestStablePartitionHashing:
    #: Pinned routing: these exact assignments are part of the on-the-wire
    #: contract between the parent's pump loop and lane workers.  A change
    #: here silently reshuffles every partitioned stream.
    PINNED = {
        ((0,), 2): 1,
        ((1,), 2): 1,
        ((7,), 2): 0,
        (("tag3",), 2): 0,
        ((3.5,), 4): 1,
        ((None,), 4): 2,
        ((True,), 4): 0,
        ((42, "x"), 4): 3,
        ((7,), 8): 6,
        ((1,), 8): 3,
    }

    def test_pinned_assignments(self):
        for (key, lanes), expected in self.PINNED.items():
            assert stable_bucket_of(key, lanes) == expected, (key, lanes)

    @settings(deadline=None)
    @given(
        key=st.tuples(st.one_of(INT64, FLOATS, STRINGS, st.none(), st.booleans())),
        lanes=st.integers(min_value=1, max_value=16),
    )
    def test_bucket_in_range_and_deterministic(self, key, lanes):
        bucket = stable_bucket_of(key, lanes)
        assert 0 <= bucket < lanes
        assert stable_bucket_of(tuple(key), lanes) == bucket

    def test_independent_of_hash_seed(self):
        # The builtin ``hash`` for strings varies per process (PYTHONHASHSEED);
        # routing must not.  Compute assignments under two adversarial seeds
        # in fresh interpreters and require identical results.
        program = (
            "import sys; sys.path.insert(0, 'src');"
            "from repro.storage.hash_table import stable_bucket_of;"
            "keys = [(i,) for i in range(32)]"
            " + [(f'tag{i}',) for i in range(32)]"
            " + [(i / 8,) for i in range(32)] + [(None,), (True,), (False,)];"
            "print([stable_bucket_of(k, 4) for k in keys])"
        )
        outputs = set()
        for seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                check=True,
                cwd="/root/repo",
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, "stable_bucket_of varied with PYTHONHASHSEED"
