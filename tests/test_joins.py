"""Unit tests for the join operators (nested loops, hybrid hash, dependent)."""

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import ExecutionContext
from repro.engine.operators.joins.dependent import DependentJoin
from repro.engine.operators.joins.hybrid_hash import HybridHashJoin
from repro.engine.operators.joins.nested_loops import NestedLoopsJoin
from repro.engine.operators.scan import WrapperScan
from repro.network.profiles import lan, wide_area
from repro.network.source import DataSource
from repro.storage.memory import MB

from helpers import multiset, reference_join


def expected_join(catalog):
    ord_rel = catalog.source("ord").relation
    item_rel = catalog.source("item").relation
    return reference_join(ord_rel, item_rel, "o_id", "i_order")


def scans(context):
    return (
        WrapperScan("scan_ord", context, "ord"),
        WrapperScan("scan_item", context, "item"),
    )


class TestNestedLoopsJoin:
    def test_matches_reference(self, joinable_catalog, context):
        left, right = scans(context)
        join = NestedLoopsJoin("nl", context, left, right, ["ord.o_id"], ["item.i_order"])
        join.open()
        rows = list(join.iterate())
        expected = expected_join(joinable_catalog)
        assert multiset(rows) == multiset(expected)

    def test_output_schema_concatenated(self, context):
        left, right = scans(context)
        join = NestedLoopsJoin("nl", context, left, right, ["ord.o_id"], ["item.i_order"])
        assert join.output_schema.names == (
            "ord.o_id", "ord.o_cust", "item.i_order", "item.i_sku", "item.i_qty"
        )

    def test_key_validation(self, context):
        left, right = scans(context)
        with pytest.raises(Exception):
            NestedLoopsJoin("nl", context, left, right, ["ord.o_id"], [])


class TestHybridHashJoin:
    def test_matches_reference_with_ample_memory(self, joinable_catalog, context):
        left, right = scans(context)
        join = HybridHashJoin(
            "hh", context, left, right, ["ord.o_id"], ["item.i_order"], memory_limit_bytes=10 * MB
        )
        join.open()
        rows = list(join.iterate())
        assert multiset(rows) == multiset(expected_join(joinable_catalog))

    def test_matches_reference_with_tiny_memory(self, joinable_catalog):
        context = ExecutionContext(joinable_catalog)
        left, right = (
            WrapperScan("scan_ord", context, "ord"),
            WrapperScan("scan_item", context, "item"),
        )
        # Budget fits roughly one tuple: every bucket spills.
        join = HybridHashJoin(
            "hh", context, left, right, ["ord.o_id"], ["item.i_order"],
            memory_limit_bytes=100, bucket_count=4,
        )
        join.open()
        rows = list(join.iterate())
        assert multiset(rows) == multiset(expected_join(joinable_catalog))
        assert context.disk.stats.tuples_written > 0
        assert context.stats.operator("hh").overflow_events > 0

    def test_first_output_waits_for_inner(self, tpcd_catalog):
        """The hybrid hash join cannot emit anything before the build side finishes."""
        context = ExecutionContext(tpcd_catalog)
        outer = WrapperScan("outer", context, "partsupp")
        inner = WrapperScan("inner", context, "part")
        join = HybridHashJoin(
            "hh", context, outer, inner, ["partsupp.ps_partkey"], ["part.p_partkey"]
        )
        join.open()
        first = join.next()
        assert first is not None
        # The inner relation must be fully consumed before the first output.
        assert inner.wrapper.exhausted

    def test_releases_memory_on_close(self, joinable_catalog, context):
        left, right = scans(context)
        join = HybridHashJoin(
            "hh", context, left, right, ["ord.o_id"], ["item.i_order"], memory_limit_bytes=MB
        )
        join.open()
        list(join.iterate())
        join.close()
        assert context.memory_pool.granted_bytes == 0


class TestDependentJoin:
    @pytest.fixture
    def catalog_with_lookup(self, orders_and_items):
        orders, items = orders_and_items
        catalog = DataSourceCatalog()
        catalog.register_source(DataSource("ord", orders, lan()))
        catalog.register_source(DataSource("item", items, wide_area()))
        return catalog

    def test_matches_reference(self, catalog_with_lookup):
        context = ExecutionContext(catalog_with_lookup)
        left = WrapperScan("scan_ord", context, "ord")
        join = DependentJoin(
            "dj", context, left, "item", ["ord.o_id"], ["item.i_order"]
        )
        join.open()
        rows = list(join.iterate())
        expected = expected_join(catalog_with_lookup)
        assert multiset(rows) == multiset(expected)
        assert join.probes == 3  # one parameterized fetch per left tuple

    def test_each_probe_pays_source_latency(self, catalog_with_lookup):
        context = ExecutionContext(catalog_with_lookup)
        left = WrapperScan("scan_ord", context, "ord")
        join = DependentJoin("dj", context, left, "item", ["ord.o_id"], ["item.i_order"])
        join.open()
        list(join.iterate())
        # Three probes at >=145ms each dominate the tiny scan time.
        assert context.clock.now >= 3 * wide_area().initial_latency_ms

    def test_key_arity_checked(self, catalog_with_lookup):
        context = ExecutionContext(catalog_with_lookup)
        left = WrapperScan("scan_ord", context, "ord")
        with pytest.raises(Exception):
            DependentJoin("dj", context, left, "item", ["ord.o_id"], [])
