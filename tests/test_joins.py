"""Unit tests for the join operators (nested loops, hybrid hash, dependent)."""

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.operators.joins.dependent import DependentJoin
from repro.engine.operators.joins.hybrid_hash import HybridHashJoin
from repro.engine.operators.joins.nested_loops import NestedLoopsJoin
from repro.engine.operators.scan import WrapperScan
from repro.network.profiles import lan, wide_area
from repro.network.source import DataSource
from repro.storage.memory import MB

from helpers import make_relation, multiset, reference_join


def expected_join(catalog):
    ord_rel = catalog.source("ord").relation
    item_rel = catalog.source("item").relation
    return reference_join(ord_rel, item_rel, "o_id", "i_order")


def scans(context):
    return (
        WrapperScan("scan_ord", context, "ord"),
        WrapperScan("scan_item", context, "item"),
    )


class TestNestedLoopsJoin:
    def test_matches_reference(self, joinable_catalog, context):
        left, right = scans(context)
        join = NestedLoopsJoin("nl", context, left, right, ["ord.o_id"], ["item.i_order"])
        join.open()
        rows = list(join.iterate())
        expected = expected_join(joinable_catalog)
        assert multiset(rows) == multiset(expected)

    def test_output_schema_concatenated(self, context):
        left, right = scans(context)
        join = NestedLoopsJoin("nl", context, left, right, ["ord.o_id"], ["item.i_order"])
        assert join.output_schema.names == (
            "ord.o_id", "ord.o_cust", "item.i_order", "item.i_sku", "item.i_qty"
        )

    def test_key_validation(self, context):
        left, right = scans(context)
        with pytest.raises(Exception):
            NestedLoopsJoin("nl", context, left, right, ["ord.o_id"], [])


class TestHybridHashJoin:
    def test_matches_reference_with_ample_memory(self, joinable_catalog, context):
        left, right = scans(context)
        join = HybridHashJoin(
            "hh", context, left, right, ["ord.o_id"], ["item.i_order"], memory_limit_bytes=10 * MB
        )
        join.open()
        rows = list(join.iterate())
        assert multiset(rows) == multiset(expected_join(joinable_catalog))

    def test_matches_reference_with_tiny_memory(self, joinable_catalog):
        context = ExecutionContext(joinable_catalog)
        left, right = (
            WrapperScan("scan_ord", context, "ord"),
            WrapperScan("scan_item", context, "item"),
        )
        # Budget fits roughly one tuple: every bucket spills.
        join = HybridHashJoin(
            "hh", context, left, right, ["ord.o_id"], ["item.i_order"],
            memory_limit_bytes=100, bucket_count=4,
        )
        join.open()
        rows = list(join.iterate())
        assert multiset(rows) == multiset(expected_join(joinable_catalog))
        assert context.disk.stats.tuples_written > 0
        assert context.stats.operator("hh").overflow_events > 0

    def test_first_output_waits_for_inner(self, tpcd_catalog):
        """The hybrid hash join cannot emit anything before the build side finishes."""
        context = ExecutionContext(tpcd_catalog)
        outer = WrapperScan("outer", context, "partsupp")
        inner = WrapperScan("inner", context, "part")
        join = HybridHashJoin(
            "hh", context, outer, inner, ["partsupp.ps_partkey"], ["part.p_partkey"]
        )
        join.open()
        first = join.next()
        assert first is not None
        # The inner relation must be fully consumed before the first output.
        assert inner.wrapper.exhausted

    def test_releases_memory_on_close(self, joinable_catalog, context):
        left, right = scans(context)
        join = HybridHashJoin(
            "hh", context, left, right, ["ord.o_id"], ["item.i_order"], memory_limit_bytes=MB
        )
        join.open()
        list(join.iterate())
        join.close()
        assert context.memory_pool.granted_bytes == 0


class TestDependentJoin:
    @pytest.fixture
    def catalog_with_lookup(self, orders_and_items):
        orders, items = orders_and_items
        catalog = DataSourceCatalog()
        catalog.register_source(DataSource("ord", orders, lan()))
        catalog.register_source(DataSource("item", items, wide_area()))
        return catalog

    def test_matches_reference(self, catalog_with_lookup):
        context = ExecutionContext(catalog_with_lookup)
        left = WrapperScan("scan_ord", context, "ord")
        join = DependentJoin(
            "dj", context, left, "item", ["ord.o_id"], ["item.i_order"]
        )
        join.open()
        rows = list(join.iterate())
        expected = expected_join(catalog_with_lookup)
        assert multiset(rows) == multiset(expected)
        assert join.probes == 3  # one parameterized fetch per left tuple

    def test_each_probe_pays_source_latency(self, catalog_with_lookup):
        context = ExecutionContext(catalog_with_lookup)
        left = WrapperScan("scan_ord", context, "ord")
        join = DependentJoin("dj", context, left, "item", ["ord.o_id"], ["item.i_order"])
        join.open()
        list(join.iterate())
        # Three probes at >=145ms each dominate the tiny scan time.
        assert context.clock.now >= 3 * wide_area().initial_latency_ms

    def test_key_arity_checked(self, catalog_with_lookup):
        context = ExecutionContext(catalog_with_lookup)
        left = WrapperScan("scan_ord", context, "ord")
        with pytest.raises(Exception):
            DependentJoin("dj", context, left, "item", ["ord.o_id"], [])


class TestDependentJoinProbeCache:
    """The §8 caching extension: duplicate bind keys pay source latency once."""

    @pytest.fixture
    def dup_key_catalog(self):
        """Left input with heavily duplicated bind keys over a slow lookup source."""
        items = make_relation(
            "item",
            ["i_order:int", "i_sku:str"],
            [(i % 3, f"sku{i}") for i in range(12)],  # keys 0,1,2 repeated 4x
        )
        orders = make_relation(
            "ord", ["o_id:int", "o_cust:str"], [(0, "ada"), (1, "bob"), (5, "eve")]
        )
        catalog = DataSourceCatalog()
        catalog.register_source(DataSource("item", items, lan()))
        catalog.register_source(DataSource("ord", orders, wide_area()))
        return catalog

    def _run(self, catalog, probe_cache, batch_size=None, context=None):
        context = context or ExecutionContext(catalog)
        left = WrapperScan("scan_item", context, "item")
        join = DependentJoin(
            "dj", context, left, "ord", ["item.i_order"], ["ord.o_id"],
            probe_cache=probe_cache,
        )
        join.open()
        if batch_size is None:
            rows = list(join.iterate())
        else:
            rows = []
            while True:
                batch = join.next_batch(batch_size)
                if not batch:
                    break
                rows.extend(batch)
        join.close()
        return join, rows, context

    def test_duplicate_keys_probe_once(self, dup_key_catalog):
        join, rows, context = self._run(dup_key_catalog, probe_cache=True)
        # 12 left tuples but only 3 distinct bind keys (one of them empty).
        assert join.probes == 3
        assert join.cache_hits == 9
        assert context.stats.operator("dj").cache_hits == 9
        # key 0 and 1 match one order each (4 duplicates each); key 2 matches none.
        assert len(rows) == 8

    def test_memoized_probes_save_latency(self, dup_key_catalog):
        cached_join, cached_rows, cached_context = self._run(
            dup_key_catalog, probe_cache=True
        )
        uncached_join, uncached_rows, uncached_context = self._run(
            dup_key_catalog, probe_cache=False
        )
        assert multiset(cached_rows) == multiset(uncached_rows)
        assert uncached_join.probes == 12
        assert uncached_join.cache_hits == 0
        # Nine deduplicated probes at wide-area initial latency each.
        latency = wide_area().initial_latency_ms
        saved = uncached_context.clock.now - cached_context.clock.now
        assert saved >= 9 * latency * 0.9
        assert uncached_context.clock.now >= 12 * latency
        assert cached_context.clock.now < 4 * latency

    @pytest.mark.parametrize("batch_size", [1, 4, 64])
    def test_batch_drive_hits_the_memo_identically(self, dup_key_catalog, batch_size):
        tuple_join, tuple_rows, _ = self._run(dup_key_catalog, probe_cache=True)
        batch_join, batch_rows, _ = self._run(
            dup_key_catalog, probe_cache=True, batch_size=batch_size
        )
        assert multiset(batch_rows) == multiset(tuple_rows)
        assert batch_join.probes == tuple_join.probes == 3
        assert batch_join.cache_hits == tuple_join.cache_hits == 9

    def test_full_extent_source_cache_skips_probe_latency(self, dup_key_catalog):
        """A source read to completion earlier serves probes at local speed."""
        config = EngineConfig(enable_source_caching=True)
        context = ExecutionContext(dup_key_catalog, config=config)
        # A prior scan reads "ord" to completion, depositing it in the cache.
        scan = WrapperScan("warm", context, "ord")
        scan.open()
        while scan.next() is not None:
            pass
        scan.close()
        assert "ord" in context.source_cache
        warm_time = context.clock.now
        join, rows, _ = self._run(dup_key_catalog, probe_cache=True, context=context)
        assert join._cached_extent
        assert len(rows) == 8
        # All probes are local: no wide-area initial latency is paid at all.
        assert context.clock.now - warm_time < wide_area().initial_latency_ms
