"""Unit tests for repro.catalog.catalog and source descriptions."""

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.catalog.source_desc import SourceDescription
from repro.catalog.statistics import SourceStatistics
from repro.errors import CatalogError
from repro.network.profiles import lan, wide_area
from repro.network.source import DataSource

from helpers import make_relation


@pytest.fixture
def books():
    return make_relation("book", ["isbn:int", "title:str"], [(i, f"b{i}") for i in range(6)])


@pytest.fixture
def catalog(books):
    cat = DataSourceCatalog()
    cat.register_source(DataSource("lib1", books, lan()))
    return cat


class TestSourceDescription:
    def test_defaults(self):
        desc = SourceDescription("s", "book")
        assert desc.complete
        assert desc.coverage == 1.0
        assert desc.source_attribute("isbn") == "isbn"

    def test_attribute_mapping_roundtrip(self):
        desc = SourceDescription("s", "book", attribute_map={"isbn": "id"})
        assert desc.source_attribute("isbn") == "id"
        assert desc.mediated_attribute("id") == "isbn"
        assert desc.mediated_attribute("other") == "other"

    def test_incomplete_requires_consistent_coverage(self):
        with pytest.raises(CatalogError):
            SourceDescription("s", "book", complete=True, coverage=0.5)
        SourceDescription("s", "book", complete=False, coverage=0.5)

    def test_invalid_coverage(self):
        with pytest.raises(CatalogError):
            SourceDescription("s", "book", complete=False, coverage=0.0)

    def test_requires_names(self):
        with pytest.raises(CatalogError):
            SourceDescription("", "book")
        with pytest.raises(CatalogError):
            SourceDescription("s", "")


class TestDataSourceCatalog:
    def test_register_and_lookup(self, catalog):
        assert "lib1" in catalog
        assert catalog.source("lib1").name == "lib1"
        assert catalog.description("lib1").mediated_relation == "book"
        assert catalog.source_names == ["lib1"]

    def test_duplicate_registration_rejected(self, catalog, books):
        with pytest.raises(CatalogError):
            catalog.register_source(DataSource("lib1", books, lan()))

    def test_unknown_lookups_raise(self, catalog):
        with pytest.raises(CatalogError):
            catalog.source("nope")
        with pytest.raises(CatalogError):
            catalog.description("nope")

    def test_description_source_mismatch_rejected(self, books):
        catalog = DataSourceCatalog()
        with pytest.raises(CatalogError):
            catalog.register_source(
                DataSource("x", books, lan()),
                description=SourceDescription("other", "book"),
            )

    def test_auto_published_statistics(self, catalog, books):
        stats = catalog.statistics.source("lib1")
        assert stats.cardinality == books.cardinality
        assert stats.transfer_rate_kbps == lan().bandwidth_kbps
        assert catalog.has_reliable_cardinality("lib1")

    def test_unpublished_statistics(self, books):
        catalog = DataSourceCatalog()
        catalog.register_source(DataSource("dark", books, lan()), publish_statistics=False)
        assert not catalog.has_reliable_cardinality("dark")
        assert catalog.cardinality_estimate("dark") == catalog.statistics.default_cardinality

    def test_explicit_statistics_win(self, books):
        catalog = DataSourceCatalog()
        catalog.register_source(
            DataSource("s", books, lan()), statistics=SourceStatistics(cardinality=999)
        )
        assert catalog.cardinality_estimate("s") == 999

    def test_sources_for_relation_and_mirrors(self, catalog, books):
        catalog.register_source(
            DataSource("lib2", books, wide_area()),
            description=SourceDescription("lib2", "book", complete=False, coverage=0.7),
        )
        assert catalog.sources_for_relation("book") == ["lib1", "lib2"]
        assert catalog.complete_sources_for_relation("book") == ["lib1"]
        assert catalog.mediated_relations() == ["book"]

    def test_record_observed_cardinality(self, catalog):
        catalog.record_observed_cardinality("intermediate_r1", 55)
        assert catalog.statistics.cardinality("intermediate_r1") == 55
