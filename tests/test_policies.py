"""Unit tests for collector policies (core.policies)."""

import pytest

from repro.catalog.overlap import OverlapCatalog
from repro.core.policies import (
    apply_policy,
    contact_all_policy,
    primary_with_fallback_policy,
    race_policy,
)
from repro.plan.physical import collector, wrapper_scan
from repro.plan.rules import ActionType, EventType, validate_rule_set


@pytest.fixture
def collector_spec():
    children = [
        wrapper_scan("src-a", operator_id="scan_a"),
        wrapper_scan("src-b", operator_id="scan_b"),
        wrapper_scan("src-c", operator_id="scan_c"),
    ]
    return collector(children, operator_id="coll1")


def test_contact_all_policy(collector_spec):
    policy = contact_all_policy(collector_spec)
    assert policy.initially_active == ["scan_a", "scan_b", "scan_c"]
    assert policy.rules == []


def test_primary_with_fallback_orders_by_overlap(collector_spec):
    overlap = OverlapCatalog()
    overlap.set_overlap("src-a", "src-c", 0.9)
    overlap.set_overlap("src-a", "src-b", 0.2)
    policy = primary_with_fallback_policy(
        collector_spec,
        source_of_child={"scan_a": "src-a", "scan_b": "src-b", "scan_c": "src-c"},
        overlap=overlap,
    )
    assert policy.initially_active == ["scan_a"]
    # First fallback rules target the best-covering mirror (src-c / scan_c).
    first_fallbacks = [r for r in policy.rules if r.subject == "scan_a"]
    assert all(a.argument == "scan_c" for r in first_fallbacks for a in r.actions)
    validate_rule_set(policy.rules)
    # Both timeout and error trigger the fallback.
    assert {r.event_type for r in first_fallbacks} == {EventType.TIMEOUT, EventType.ERROR}


def test_race_policy_matches_paper_example(collector_spec):
    policy = race_policy(collector_spec, threshold=10, racers=2)
    assert policy.initially_active == ["scan_a", "scan_b"]
    win_rules = [r for r in policy.rules if r.event_type == EventType.THRESHOLD]
    assert len(win_rules) == 2
    for rule in win_rules:
        assert rule.actions[0].action_type == ActionType.DEACTIVATE
    timeout_rules = [r for r in policy.rules if r.event_type == EventType.TIMEOUT]
    assert len(timeout_rules) == 2
    for rule in timeout_rules:
        activations = [a for a in rule.actions if a.action_type == ActionType.ACTIVATE]
        assert activations and activations[0].argument == "scan_c"
    validate_rule_set(policy.rules)


def test_apply_policy_writes_params(collector_spec):
    policy = race_policy(collector_spec, threshold=5)
    rules = apply_policy(collector_spec, policy)
    assert collector_spec.params["initially_active"] == ["scan_a", "scan_b"]
    assert collector_spec.params["policy"] == "race"
    assert rules == list(policy.rules)


def test_policy_rejects_non_collector():
    spec = wrapper_scan("x")
    with pytest.raises(ValueError):
        contact_all_policy(spec)
