"""Unit tests for scans, select, project, union, and materialize operators."""

import pytest

from repro.engine.context import ExecutionContext
from repro.engine.operators.materialize import Materialize
from repro.engine.operators.project import Project
from repro.engine.operators.scan import TableScan, WrapperScan
from repro.engine.operators.select import Select
from repro.engine.operators.union import Union
from repro.errors import ExecutionError, SourceTimeoutError
from repro.network.profiles import slow_start
from repro.plan.rules import EventType
from repro.query.conjunctive import SelectionPredicate

from helpers import make_relation


class TestOperatorBase:
    def test_next_before_open_raises(self, context):
        scan = WrapperScan("s", context, "ord")
        with pytest.raises(ExecutionError):
            scan.next()

    def test_open_emits_opened_event(self, context):
        scan = WrapperScan("s", context, "ord")
        scan.open()
        events = context.events.drain()
        assert any(e.event_type == EventType.OPENED and e.subject == "s" for e in events)

    def test_close_emits_closed_event_with_cardinality(self, context):
        scan = WrapperScan("s", context, "ord")
        scan.open()
        list(scan.iterate())
        context.events.drain()
        scan.close()
        events = context.events.drain()
        closed = [e for e in events if e.event_type == EventType.CLOSED and e.subject == "s"]
        assert closed and closed[0].value == 3

    def test_deactivated_operator_returns_none(self, context):
        scan = WrapperScan("s", context, "ord")
        scan.open()
        scan.deactivate()
        assert scan.next() is None
        assert scan.peek_arrival() is None


class TestWrapperScan:
    def test_streams_all_rows_with_qualified_schema(self, context):
        scan = WrapperScan("s", context, "ord")
        scan.open()
        rows = list(scan.iterate())
        assert len(rows) == 3
        assert scan.output_schema.names == ("ord.o_id", "ord.o_cust")
        assert scan.tuples_produced == 3

    def test_arrival_times_monotone(self, context):
        scan = WrapperScan("s", context, "ord")
        scan.open()
        arrivals = [row.arrival for row in scan.iterate()]
        assert arrivals == sorted(arrivals)

    def test_peek_arrival_before_and_after_eof(self, context):
        scan = WrapperScan("s", context, "ord")
        scan.open()
        assert scan.peek_arrival() is not None
        list(scan.iterate())
        assert scan.peek_arrival() is None

    def test_threshold_events_emitted(self, context):
        scan = WrapperScan("s", context, "ord")
        scan.open()
        list(scan.iterate())
        events = context.events.drain()
        thresholds = [e for e in events if e.event_type == EventType.THRESHOLD]
        assert [e.value for e in thresholds] == [1, 2, 3]

    def test_timeout_emits_event_and_raises(self, joinable_catalog):
        joinable_catalog.source("ord").set_profile(slow_start(delay_ms=10_000.0))
        context = ExecutionContext(joinable_catalog)
        scan = WrapperScan("s", context, "ord", timeout_ms=50.0)
        scan.open()
        with pytest.raises(SourceTimeoutError):
            scan.next()
        events = context.events.drain()
        assert any(e.event_type == EventType.TIMEOUT and e.subject == "ord" for e in events)
        assert any(e.event_type == EventType.TIMEOUT and e.subject == "s" for e in events)


class TestTableScan:
    def test_scans_materialized_relation(self, context):
        rel = make_relation("cached", ["x:int"], [(1,), (2,)])
        context.local_store.materialize(rel)
        scan = TableScan("t", context, "cached")
        scan.open()
        assert [row["x"] for row in scan.iterate()] == [1, 2]

    def test_missing_relation_raises_on_open(self, context):
        scan = TableScan("t", context, "ghost")
        with pytest.raises(Exception):
            scan.open()


class TestSelectProject:
    def test_select_filters(self, context):
        scan = WrapperScan("s", context, "ord")
        select = Select(
            "sel", context, scan, [SelectionPredicate("ord", "o_id", ">=", 2)]
        )
        select.open()
        assert [row["o_id"] for row in select.iterate()] == [2, 3]

    def test_select_multiple_predicates_conjunctive(self, context):
        scan = WrapperScan("s", context, "ord")
        select = Select(
            "sel",
            context,
            scan,
            [
                SelectionPredicate("ord", "o_id", ">=", 2),
                SelectionPredicate("ord", "o_cust", "=", "bob"),
            ],
        )
        select.open()
        assert [row["o_cust"] for row in select.iterate()] == ["bob"]

    def test_project_restricts_schema(self, context):
        scan = WrapperScan("s", context, "ord")
        project = Project("p", context, scan, ["ord.o_cust"])
        project.open()
        rows = list(project.iterate())
        assert project.output_schema.names == ("ord.o_cust",)
        assert [row.values for row in rows] == [("ada",), ("bob",), ("cyd",)]


class TestUnion:
    def test_union_concatenates_children(self, context):
        a = WrapperScan("a", context, "ord")
        b = WrapperScan("b", context, "ord")
        union = Union("u", context, [a, b])
        union.open()
        assert len(list(union.iterate())) == 6

    def test_union_requires_children(self, context):
        with pytest.raises(ExecutionError):
            Union("u", context, [])


class TestMaterialize:
    def test_materializes_into_local_store(self, context):
        scan = WrapperScan("s", context, "ord")
        mat = Materialize("m", context, scan, result_name="ord_copy")
        mat.open()
        rows = list(mat.iterate())
        mat.close()
        stored = context.local_store.get("ord_copy")
        assert stored.cardinality == len(rows) == 3
        assert context.local_store.info("ord_copy").materialized_at == context.clock.now
