"""Unit tests for the Optimizer facade (plans, fragmentation, re-optimization)."""

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.network.profiles import lan, wide_area
from repro.network.source import DataSource, make_mirror
from repro.optimizer.optimizer import (
    Optimizer,
    OptimizerConfig,
    PlanningStrategy,
    ReoptimizationMode,
)
from repro.plan.physical import JoinImplementation, OperatorType
from repro.query.conjunctive import ConjunctiveQuery, JoinPredicate
from repro.query.reformulation import Reformulator
from repro.storage.memory import MB

from helpers import make_relation


def chain_catalog(sizes, with_mirror=False, publish=True):
    catalog = DataSourceCatalog()
    primary = None
    for name, size in sizes:
        rel = make_relation(name, ["k:int"], [(i,) for i in range(size)])
        source = DataSource(name, rel, lan())
        catalog.register_source(source, publish_statistics=publish)
        if primary is None:
            primary = source
    if with_mirror:
        mirror = make_mirror(primary, f"{primary.name}-mirror", wide_area())
        from repro.catalog.source_desc import SourceDescription

        catalog.register_source(
            mirror, SourceDescription(mirror.name, primary.relation.name)
        )
    return catalog


def chain_query(names):
    predicates = [JoinPredicate(names[i], "k", names[i + 1], "k") for i in range(len(names) - 1)]
    return ConjunctiveQuery(name="q", relations=names, join_predicates=predicates)


SIZES = [("a", 200), ("b", 10), ("c", 100), ("d", 20)]
NAMES = [name for name, _ in SIZES]


@pytest.fixture
def setup():
    catalog = chain_catalog(SIZES)
    optimizer = Optimizer(catalog)
    reformulated = Reformulator(catalog).reformulate(chain_query(NAMES))
    return catalog, optimizer, reformulated


class TestStrategies:
    def test_pipeline_strategy_single_fragment(self, setup):
        _, optimizer, reformulated = setup
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.PIPELINE)
        assert len(result.plan.fragments) == 1
        assert not result.plan.partial
        join_count = sum(
            1
            for node in result.plan.fragments[0].root.walk()
            if node.operator_type == OperatorType.JOIN
        )
        assert join_count == 3

    def test_materialize_strategy_fragment_per_join(self, setup):
        _, optimizer, reformulated = setup
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.MATERIALIZE)
        assert len(result.plan.fragments) == 3
        # No replan rules in the plain materialize strategy.
        assert not any(
            rule.name.startswith("replan-") for rule in result.plan.all_rules()
        )

    def test_materialize_replan_attaches_replan_rules(self, setup):
        _, optimizer, reformulated = setup
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.MATERIALIZE_REPLAN)
        replan_rules = [r for r in result.plan.all_rules() if r.name.startswith("replan-")]
        # Join selectivities are unknown, so every non-final fragment gets one.
        assert len(replan_rules) >= 1

    def test_partial_strategy_emits_only_first_fragment(self, setup):
        _, optimizer, reformulated = setup
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.PARTIAL)
        assert result.plan.partial
        assert len(result.plan.fragments) == 1
        assert len(result.plan.fragments[0].covers) == 2

    def test_two_relation_query_not_partial(self):
        catalog = chain_catalog(SIZES[:2])
        optimizer = Optimizer(catalog)
        reformulated = Reformulator(catalog).reformulate(chain_query(NAMES[:2]))
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.PARTIAL)
        assert not result.plan.partial
        assert len(result.plan.fragments) == 1

    def test_should_plan_partially_without_statistics(self):
        catalog = chain_catalog(SIZES, publish=False)
        optimizer = Optimizer(catalog)
        reformulated = Reformulator(catalog).reformulate(chain_query(NAMES))
        assert optimizer.should_plan_partially(reformulated)


class TestPhysicalChoices:
    def test_join_order_puts_small_relations_first(self, setup):
        catalog, optimizer, reformulated = setup
        # Make selectivities known so the optimizer trusts its estimates.
        for pred in reformulated.query.join_predicates:
            catalog.statistics.set_join_selectivity(pred.left_qualified, pred.right_qualified, 0.01)
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.MATERIALIZE)
        first_fragment = result.plan.fragments[0]
        # The first join should involve the small relations (b or d), not a x c.
        assert first_fragment.covers != frozenset({"a", "c"})

    def test_dpj_chosen_by_default(self, setup):
        _, optimizer, reformulated = setup
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.PIPELINE)
        joins = [
            node
            for node in result.plan.fragments[0].root.walk()
            if node.operator_type == OperatorType.JOIN
        ]
        assert all(n.implementation == JoinImplementation.DOUBLE_PIPELINED.value for n in joins)

    def test_hybrid_hash_chosen_for_large_reliable_inputs(self):
        catalog = chain_catalog([("a", 5000), ("b", 5000)])
        for pred in [JoinPredicate("a", "k", "b", "k")]:
            catalog.statistics.set_join_selectivity(pred.left_qualified, pred.right_qualified, 0.001)
        optimizer = Optimizer(catalog, OptimizerConfig(dpj_max_build_bytes=64 * 1024))
        reformulated = Reformulator(catalog).reformulate(chain_query(["a", "b"]))
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.PIPELINE)
        joins = [
            node
            for node in result.plan.fragments[0].root.walk()
            if node.operator_type == OperatorType.JOIN
        ]
        assert joins[0].implementation == JoinImplementation.HYBRID_HASH.value

    def test_memory_pool_divided_across_joins(self, setup):
        catalog, _, reformulated = setup
        optimizer = Optimizer(catalog, OptimizerConfig(memory_pool_bytes=4 * MB))
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.MATERIALIZE)
        limits = [
            node.memory_limit_bytes
            for fragment in result.plan.fragments
            for node in fragment.root.walk()
            if node.operator_type == OperatorType.JOIN
        ]
        assert all(limit is not None for limit in limits)
        assert sum(limits) <= 4 * MB + 3 * 64 * 1024

    def test_disjunctive_leaf_becomes_collector(self):
        catalog = chain_catalog(SIZES[:2], with_mirror=True)
        optimizer = Optimizer(catalog)
        reformulated = Reformulator(catalog).reformulate(chain_query(NAMES[:2]))
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.PIPELINE)
        collectors = result.plan.collectors()
        assert len(collectors) == 1
        assert len(collectors[0].children) == 2
        assert collectors[0].params["dedup_keys"]


class TestReoptimization:
    def test_reoptimize_produces_plan_over_remaining_relations(self, setup):
        _, optimizer, reformulated = setup
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.MATERIALIZE_REPLAN)
        first = result.plan.fragments[0]
        new_result = optimizer.reoptimize(
            result,
            reformulated,
            [(first.covers, first.result_name, 5)],
            mode=ReoptimizationMode.SAVED_STATE,
        )
        assert new_result.plan.fragments
        # Remaining fragments never re-join what was already covered.
        for fragment in new_result.plan.fragments:
            assert not fragment.covers <= first.covers
        # The materialized result is read through a table scan somewhere.
        table_scans = [
            node
            for fragment in new_result.plan.fragments
            for node in fragment.root.walk()
            if node.operator_type == OperatorType.TABLE_SCAN
        ]
        assert any(node.params["relation"] == first.result_name for node in table_scans)

    @pytest.mark.parametrize(
        "mode",
        [
            ReoptimizationMode.SAVED_STATE,
            ReoptimizationMode.SAVED_STATE_NO_POINTERS,
            ReoptimizationMode.SCRATCH,
        ],
    )
    def test_all_modes_cover_full_query(self, setup, mode):
        _, optimizer, reformulated = setup
        result = optimizer.optimize(reformulated, strategy=PlanningStrategy.MATERIALIZE_REPLAN)
        first = result.plan.fragments[0]
        new_result = optimizer.reoptimize(
            result, reformulated, [(first.covers, first.result_name, 5)], mode=mode
        )
        covered = first.covers | frozenset().union(
            *(fragment.covers for fragment in new_result.plan.fragments)
        )
        assert covered == frozenset(reformulated.query.relations)

    def test_reoptimize_requires_materializations(self, setup):
        _, optimizer, reformulated = setup
        result = optimizer.optimize(reformulated)
        with pytest.raises(Exception):
            optimizer.reoptimize(result, reformulated, [])
