"""Integration tests: miniature versions of the paper's experiments.

These run the same code paths as the benchmarks in ``benchmarks/`` but at a
tiny scale, so the experiment *shapes* (who wins, what adapts) are asserted on
every test run.
"""

import pytest

from repro.bench.harness import build_deployment, run_operator_tree
from repro.core.system import Tukwila
from repro.catalog.source_desc import SourceDescription
from repro.engine.context import EngineConfig
from repro.network.profiles import lan, slow_start, wide_area
from repro.network.source import DataSource, make_mirror
from repro.optimizer.optimizer import Optimizer, OptimizerConfig, PlanningStrategy
from repro.plan.physical import JoinImplementation, OverflowMethod, join, wrapper_scan
from repro.query.reformulation import Reformulator
from repro.storage.memory import MB

from helpers import make_relation


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(0.6, ["part", "partsupp", "supplier", "orders"], seed=11)


def partsupp_part_spec(implementation, overflow=OverflowMethod.LEFT_FLUSH, memory=None):
    return join(
        wrapper_scan("partsupp"),
        wrapper_scan("part"),
        ["partsupp.ps_partkey"],
        ["part.p_partkey"],
        implementation=implementation,
        overflow_method=overflow,
        memory_limit_bytes=memory,
    )


class TestFigure3Shape:
    """Double pipelined join vs hybrid hash (Figures 3a / 3b shapes)."""

    def test_dpj_beats_hybrid_on_time_to_first_tuple(self, deployment):
        dpj = run_operator_tree(
            partsupp_part_spec(JoinImplementation.DOUBLE_PIPELINED), deployment.catalog
        )
        hybrid = run_operator_tree(
            partsupp_part_spec(JoinImplementation.HYBRID_HASH), deployment.catalog
        )
        assert dpj.cardinality == hybrid.cardinality
        assert dpj.time_to_first_tuple_ms < hybrid.time_to_first_tuple_ms
        # Completion times are comparable; DPJ must not be dramatically slower.
        assert dpj.completion_time_ms <= hybrid.completion_time_ms * 1.25

    def test_dpj_insensitive_to_which_input_is_slow(self, deployment):
        results = {}
        for label, slow_table in [("outer_slow", "partsupp"), ("inner_slow", "part")]:
            deployment.set_all_profiles(lan())
            deployment.set_profile(slow_table, wide_area())
            results[label] = run_operator_tree(
                partsupp_part_spec(JoinImplementation.DOUBLE_PIPELINED), deployment.catalog
            )
        deployment.set_all_profiles(lan())
        ratio = results["outer_slow"].completion_time_ms / results["inner_slow"].completion_time_ms
        assert 0.8 <= ratio <= 1.25  # symmetric: neither orientation matters

    def test_hybrid_hash_sensitive_to_slow_inner(self, deployment):
        deployment.set_all_profiles(lan())
        deployment.set_profile("part", slow_start(delay_ms=1_000.0))
        hybrid = run_operator_tree(
            partsupp_part_spec(JoinImplementation.HYBRID_HASH), deployment.catalog
        )
        dpj = run_operator_tree(
            partsupp_part_spec(JoinImplementation.DOUBLE_PIPELINED), deployment.catalog
        )
        deployment.set_all_profiles(lan())
        # The hybrid join cannot produce anything until the slow inner is loaded.
        assert hybrid.time_to_first_tuple_ms >= 1_000.0
        assert dpj.time_to_first_tuple_ms < hybrid.time_to_first_tuple_ms


class TestFigure4Shape:
    """Memory-overflow strategies (Figure 4 shape)."""

    @pytest.fixture(scope="class")
    def overflow_runs(self, deployment):
        deployment.set_all_profiles(lan())
        ample = run_operator_tree(
            partsupp_part_spec(JoinImplementation.DOUBLE_PIPELINED), deployment.catalog
        )
        # Size the budget well below what the build needs.
        partsupp = deployment.database["partsupp"]
        part = deployment.database["part"]
        needed = (partsupp.cardinality + part.cardinality) * partsupp.schema.tuple_size
        tight = needed // 3
        left = run_operator_tree(
            partsupp_part_spec(
                JoinImplementation.DOUBLE_PIPELINED, OverflowMethod.LEFT_FLUSH, tight
            ),
            deployment.catalog,
        )
        symmetric = run_operator_tree(
            partsupp_part_spec(
                JoinImplementation.DOUBLE_PIPELINED, OverflowMethod.SYMMETRIC_FLUSH, tight
            ),
            deployment.catalog,
        )
        return ample, left, symmetric

    def test_all_strategies_produce_same_result(self, overflow_runs):
        ample, left, symmetric = overflow_runs
        assert ample.cardinality == left.cardinality == symmetric.cardinality

    def test_overflow_slows_completion(self, overflow_runs):
        ample, left, symmetric = overflow_runs
        assert left.completion_time_ms > ample.completion_time_ms
        assert symmetric.completion_time_ms > ample.completion_time_ms

    def test_overall_times_of_strategies_are_close(self, overflow_runs):
        _, left, symmetric = overflow_runs
        ratio = left.completion_time_ms / symmetric.completion_time_ms
        assert 0.5 <= ratio <= 2.0

    def test_left_flush_stalls_then_streams(self, overflow_runs):
        """Left Flush has a longer maximum gap between consecutive outputs."""
        _, left, symmetric = overflow_runs

        def max_gap(timeline):
            times = timeline.times_ms
            return max((b - a for a, b in zip(times, times[1:])), default=0.0)

        assert max_gap(left.timeline) >= max_gap(symmetric.timeline)

    def test_spills_happen_under_pressure(self, overflow_runs):
        _, left, symmetric = overflow_runs
        assert left.context.disk.stats.tuples_written > 0
        assert symmetric.context.disk.stats.tuples_written > 0


class TestFigure5Shape:
    """Interleaved planning and execution (Figure 5 shape) on one tiny query."""

    @pytest.fixture(scope="class")
    def strategy_times(self):
        deployment = build_deployment(1.0, ["supplier", "nation", "customer", "orders"], seed=3)
        times = {}
        for strategy in [
            PlanningStrategy.MATERIALIZE,
            PlanningStrategy.MATERIALIZE_REPLAN,
            PlanningStrategy.PIPELINE,
        ]:
            optimizer = Optimizer(
                deployment.catalog, OptimizerConfig(memory_pool_bytes=1 * MB)
            )
            from repro.core.interleaving import InterleavedExecutionDriver
            from repro.datagen.workload import TPCDJoinGraph

            driver = InterleavedExecutionDriver(deployment.catalog, optimizer)
            graph = TPCDJoinGraph()
            query = graph.query_for(
                frozenset({"supplier", "nation", "customer", "orders"}),
                name=f"fig5_{strategy.value}",
            )
            reformulated = Reformulator(deployment.catalog).reformulate(query)
            result = driver.run(reformulated, strategy=strategy)
            assert result.succeeded
            times[strategy] = result
        return times

    def test_all_strategies_same_cardinality(self, strategy_times):
        cards = {result.cardinality for result in strategy_times.values()}
        assert len(cards) == 1

    def test_replanning_happens_only_in_replan_strategy(self, strategy_times):
        assert strategy_times[PlanningStrategy.MATERIALIZE_REPLAN].reoptimizations >= 1
        assert strategy_times[PlanningStrategy.MATERIALIZE].reoptimizations == 0
        assert strategy_times[PlanningStrategy.PIPELINE].reoptimizations == 0


class TestSection65Shape:
    """Saving optimizer state (Section 6.5 shape)."""

    def test_saved_state_cheaper_than_scratch_cheaper_than_no_pointers(self):
        deployment = build_deployment(0.5, ["supplier", "nation", "customer", "orders", "region"], seed=5)
        from repro.datagen.workload import TPCDJoinGraph
        from repro.optimizer.enumeration import JoinEnumerator
        from repro.optimizer.cost_model import CostModel

        graph = TPCDJoinGraph()
        query = graph.query_for(
            frozenset({"supplier", "nation", "customer", "orders", "region"}), name="s65"
        )
        enumerator = JoinEnumerator(CostModel(deployment.catalog))
        sources = {r: r for r in query.relations}
        covered = frozenset({"nation", "region"})

        def reopt_work(mode):
            state = enumerator.enumerate(query, sources)
            before = state.nodes_visited
            if mode == "scratch":
                fresh = enumerator.replan_from_scratch(state, covered, "nr", 25, sources)
                return fresh.nodes_visited
            enumerator.reoptimize_with_saved_state(
                state, covered, "nr", 25, use_usage_pointers=(mode == "pointers")
            )
            return state.nodes_visited - before

        with_pointers = reopt_work("pointers")
        scratch = reopt_work("scratch")
        without_pointers = reopt_work("no_pointers")
        assert with_pointers < scratch
        assert without_pointers > scratch


class TestCollectorScenario:
    """Bibliographic mirror scenario exercised end to end through Tukwila."""

    def test_union_over_mirrors_with_failure(self):
        books = make_relation(
            "citation", ["key:int", "title:str"], [(i, f"paper-{i}") for i in range(30)]
        )
        reviews = make_relation(
            "rating", ["key:int", "stars:int"], [(i, i % 5 + 1) for i in range(30)]
        )
        system = Tukwila(engine_config=EngineConfig(default_timeout_ms=500.0))
        primary = DataSource("dblp", books, slow_start(delay_ms=10_000.0))
        system.register_source(primary, SourceDescription("dblp", "citation"))
        system.register_source(
            make_mirror(primary, "dblp-mirror", lan()),
            SourceDescription("dblp-mirror", "citation"),
        )
        system.declare_mirrors("dblp", "dblp-mirror")
        system.register_source(DataSource("ratings", reviews, lan()),
                               SourceDescription("ratings", "rating"))
        result = system.execute(
            "select * from citation, rating where citation.key = rating.key",
            name="bib",
        )
        assert result.succeeded
        assert result.cardinality == 30
