"""Unit tests for choose nodes and the operator builder."""

import pytest

from repro.engine.builder import build_operator
from repro.engine.operators.choose import ChooseNode
from repro.engine.operators.collector import DynamicCollector
from repro.engine.operators.joins import DoublePipelinedJoin, HybridHashJoin, NestedLoopsJoin
from repro.engine.operators.scan import WrapperScan
from repro.errors import ExecutionError, PlanError
from repro.plan.physical import (
    JoinImplementation,
    OperatorSpec,
    OperatorType,
    collector,
    join,
    materialize,
    project_,
    select_,
    table_scan,
    union_,
    wrapper_scan,
)
from repro.query.conjunctive import SelectionPredicate

from helpers import make_relation


class TestChooseNode:
    def test_runs_only_selected_child(self, context):
        a = WrapperScan("a", context, "ord")
        b = WrapperScan("b", context, "item")
        # Children of a choose node must be union-compatible; use two scans of
        # the same source instead.
        b = WrapperScan("b", context, "ord")
        node = ChooseNode("choose1", context, [a, b])
        node.open()
        node.select("b")
        rows = list(node.iterate())
        assert len(rows) == 3
        assert node.selected_id == "b"
        assert a.tuples_produced == 0

    def test_default_selection_prefers_non_deactivated(self, context):
        a = WrapperScan("a", context, "ord")
        b = WrapperScan("b", context, "ord")
        context.deactivate("a")
        node = ChooseNode("choose1", context, [a, b])
        node.open()
        list(node.iterate())
        assert node.selected_id == "b"

    def test_unknown_selection_rejected(self, context):
        a = WrapperScan("a", context, "ord")
        node = ChooseNode("choose1", context, [a])
        with pytest.raises(ExecutionError):
            node.select("ghost")

    def test_requires_children(self, context):
        with pytest.raises(ExecutionError):
            ChooseNode("choose1", context, [])


class TestBuilder:
    def test_builds_each_join_implementation(self, context):
        for implementation, cls in [
            (JoinImplementation.DOUBLE_PIPELINED, DoublePipelinedJoin),
            (JoinImplementation.HYBRID_HASH, HybridHashJoin),
            (JoinImplementation.NESTED_LOOPS, NestedLoopsJoin),
        ]:
            spec = join(
                wrapper_scan("ord"),
                wrapper_scan("item"),
                ["ord.o_id"],
                ["item.i_order"],
                implementation=implementation,
            )
            operator = build_operator(spec, context)
            assert isinstance(operator, cls)

    def test_join_output_correct_via_builder(self, joinable_catalog, context):
        spec = join(
            wrapper_scan("ord"), wrapper_scan("item"), ["ord.o_id"], ["item.i_order"]
        )
        operator = build_operator(spec, context)
        operator.open()
        assert len(list(operator.iterate())) == 3

    def test_builds_scans_select_project_union_materialize(self, context):
        rel = make_relation("cached", ["x:int"], [(5,), (6,)])
        context.local_store.materialize(rel)
        pipeline = materialize(
            project_(
                select_(
                    table_scan("cached"),
                    [SelectionPredicate("cached", "x", ">", 5)],
                ),
                ["x"],
            ),
            "out",
        )
        operator = build_operator(pipeline, context)
        operator.open()
        rows = list(operator.iterate())
        operator.close()
        assert [row.values for row in rows] == [(6,)]
        assert "out" in context.local_store

        union_spec = union_([wrapper_scan("ord"), wrapper_scan("ord")])
        union_op = build_operator(union_spec, context)
        union_op.open()
        assert len(list(union_op.iterate())) == 6

    def test_builds_collector_with_params(self, context):
        spec = collector(
            [wrapper_scan("ord", operator_id="c1"), wrapper_scan("ord", operator_id="c2")],
            operator_id="coll1",
        )
        spec.params["initially_active"] = ["c1"]
        spec.params["dedup_keys"] = ["ord.o_id"]
        spec.params["fallback_on_failure"] = "false"
        operator = build_operator(spec, context)
        assert isinstance(operator, DynamicCollector)
        assert operator.dedup_keys == ["ord.o_id"]
        assert not operator.fallback_on_failure

    def test_builds_dependent_join(self, context):
        spec = OperatorSpec(
            "dj",
            OperatorType.DEPENDENT_JOIN,
            children=[wrapper_scan("ord"), wrapper_scan("item")],
            params={
                "source": "item",
                "left_keys": ["ord.o_id"],
                "right_keys": ["item.i_order"],
            },
        )
        operator = build_operator(spec, context)
        operator.open()
        assert len(list(operator.iterate())) == 3

    def test_missing_required_parameter(self, context):
        spec = OperatorSpec("bad", OperatorType.WRAPPER_SCAN, params={})
        with pytest.raises(PlanError):
            build_operator(spec, context)

    def test_unknown_join_implementation(self, context):
        spec = join(wrapper_scan("ord"), wrapper_scan("item"), ["ord.o_id"], ["item.i_order"])
        spec.implementation = "merge_sort"
        with pytest.raises(PlanError):
            build_operator(spec, context)

    def test_timeout_parameter_propagated(self, context):
        spec = wrapper_scan("ord", timeout_ms=42.0)
        operator = build_operator(spec, context)
        assert operator.wrapper.timeout_ms == 42.0

    def test_estimated_cardinality_propagated(self, context):
        spec = wrapper_scan("ord")
        spec.estimated_cardinality = 33
        operator = build_operator(spec, context)
        assert operator.estimated_cardinality == 33
