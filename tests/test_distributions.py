"""Unit tests for repro.datagen.distributions."""

import pytest

from repro.datagen.distributions import ValueGenerator


def test_deterministic_given_seed():
    a = ValueGenerator(seed=5)
    b = ValueGenerator(seed=5)
    assert [a.integer(0, 100) for _ in range(10)] == [b.integer(0, 100) for _ in range(10)]


def test_integer_bounds():
    gen = ValueGenerator()
    values = [gen.integer(3, 7) for _ in range(200)]
    assert min(values) >= 3
    assert max(values) <= 7


def test_decimal_bounds_and_rounding():
    gen = ValueGenerator()
    value = gen.decimal(0.0, 1.0, digits=2)
    assert 0.0 <= value <= 1.0
    assert round(value, 2) == value


def test_name_format():
    assert ValueGenerator().name("Customer", 42) == "Customer#000000042"


def test_choice_from_options():
    gen = ValueGenerator()
    options = ("a", "b", "c")
    assert all(gen.choice(options) in options for _ in range(50))


def test_date_int_within_window():
    gen = ValueGenerator()
    for _ in range(100):
        date = gen.date_int()
        year, month, day = date // 10000, (date // 100) % 100, date % 100
        assert 1992 <= year <= 1998
        assert 1 <= month <= 12
        assert 1 <= day <= 28


def test_word_and_phrase_nonempty():
    gen = ValueGenerator()
    assert gen.word()
    assert len(gen.phrase(words=3).split()) == 3


def test_text_length():
    assert len(ValueGenerator().text(length=30)) <= 30


def test_zipf_rank_bounds():
    gen = ValueGenerator()
    ranks = [gen.zipf_rank(10, skew=1.0) for _ in range(500)]
    assert min(ranks) >= 1
    assert max(ranks) <= 10


def test_zipf_rank_is_skewed_toward_low_ranks():
    gen = ValueGenerator(seed=1)
    ranks = [gen.zipf_rank(100, skew=1.2) for _ in range(2000)]
    low = sum(1 for r in ranks if r <= 10)
    high = sum(1 for r in ranks if r > 90)
    assert low > high * 2


def test_zipf_rank_zero_skew_is_uniformish():
    gen = ValueGenerator(seed=1)
    ranks = [gen.zipf_rank(10, skew=0.0) for _ in range(2000)]
    assert len(set(ranks)) == 10


def test_zipf_rank_invalid_n():
    with pytest.raises(ValueError):
        ValueGenerator().zipf_rank(0)
