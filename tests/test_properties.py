"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import ExecutionContext
from repro.engine.operators.joins.double_pipelined import DoublePipelinedJoin
from repro.engine.operators.joins.hybrid_hash import HybridHashJoin
from repro.engine.operators.scan import WrapperScan
from repro.network.profiles import NetworkProfile, lan
from repro.network.source import DataSource
from repro.plan.physical import OverflowMethod
from repro.storage.disk import SimulatedDisk
from repro.storage.hash_table import BucketedHashTable
from repro.storage.memory import MemoryBudget
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.tuples import Row

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

keys = st.integers(min_value=0, max_value=20)
payloads = st.text(alphabet="abcdef", min_size=0, max_size=4)
pair_lists = st.lists(st.tuples(keys, payloads), min_size=0, max_size=40)

LEFT_SCHEMA = Schema.of("l.k:int", "l.p:str")
RIGHT_SCHEMA = Schema.of("r.k:int", "r.q:str")


def to_relation(name: str, schema: Schema, pairs: list[tuple[int, str]]) -> Relation:
    return Relation(name, schema, (Row(schema, pair) for pair in pairs))


def expected_join_size(left: list[tuple[int, str]], right: list[tuple[int, str]]) -> int:
    from collections import Counter

    left_counts = Counter(k for k, _ in left)
    right_counts = Counter(k for k, _ in right)
    return sum(left_counts[k] * right_counts[k] for k in left_counts)


def join_multiset(rows) -> dict:
    counts: dict = {}
    for row in rows:
        counts[row.values] = counts.get(row.values, 0) + 1
    return counts


def reference_pairs(left, right):
    out: dict = {}
    for lk, lp in left:
        for rk, rq in right:
            if lk == rk:
                key = (lk, lp, rk, rq)
                out[key] = out.get(key, 0) + 1
    return out


def run_join(join_cls, left_pairs, right_pairs, **kwargs):
    catalog = DataSourceCatalog()
    catalog.register_source(
        DataSource("l", Relation("l", Schema.of("k:int", "p:str"),
                                 (Row(Schema.of("k:int", "p:str"), p) for p in left_pairs)), lan())
    )
    catalog.register_source(
        DataSource("r", Relation("r", Schema.of("k:int", "q:str"),
                                 (Row(Schema.of("k:int", "q:str"), p) for p in right_pairs)), lan())
    )
    context = ExecutionContext(catalog)
    join = join_cls(
        "join",
        context,
        WrapperScan("sl", context, "l"),
        WrapperScan("sr", context, "r"),
        ["l.k"],
        ["r.k"],
        **kwargs,
    )
    join.open()
    rows = list(join.iterate())
    join.close()
    return rows


# ---------------------------------------------------------------------------
# Storage invariants
# ---------------------------------------------------------------------------


class TestHashTableProperties:
    @given(pairs=pair_lists)
    @settings(max_examples=60, deadline=None)
    def test_probe_returns_exactly_matching_rows(self, pairs):
        table = BucketedHashTable(["l.k"], MemoryBudget(None), SimulatedDisk(), bucket_count=8)
        for pair in pairs:
            table.insert(Row(LEFT_SCHEMA, pair))
        for key in {k for k, _ in pairs}:
            matches = table.probe((key,))
            assert len(matches) == sum(1 for k, _ in pairs if k == key)
            assert all(row["l.k"] == key for row in matches)

    @given(pairs=pair_lists)
    @settings(max_examples=60, deadline=None)
    def test_flush_conserves_rows_and_memory(self, pairs):
        budget = MemoryBudget(None)
        disk = SimulatedDisk()
        table = BucketedHashTable(["l.k"], budget, disk, bucket_count=4)
        for pair in pairs:
            table.insert(Row(LEFT_SCHEMA, pair))
        resident_before = table.resident_rows
        table.flush_all()
        assert table.resident_rows == 0
        # Flushing releases the row bytes; only the (encoded) dictionary
        # stays charged until the table itself is released.
        assert budget.used_bytes == table.dictionary_bytes
        assert disk.stats.tuples_written == resident_before
        table.release_all()
        assert budget.used_bytes == 0

    @given(pairs=pair_lists, limit_tuples=st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_resident_rows_never_exceed_budget(self, pairs, limit_tuples):
        limit = LEFT_SCHEMA.tuple_size * limit_tuples
        budget = MemoryBudget(limit)
        table = BucketedHashTable(["l.k"], budget, SimulatedDisk(), bucket_count=4)
        for pair in pairs:
            if not table.insert(Row(LEFT_SCHEMA, pair)):
                table.flush_largest_bucket()
                table.insert(Row(LEFT_SCHEMA, pair))
            # Row reservations respect the limit; dictionary growth is
            # force-charged on top (it cannot be refused row by row).
            assert budget.used_bytes <= limit + table.dictionary_bytes


class TestTimelineProperties:
    @given(sizes=st.lists(st.integers(min_value=1, max_value=2000), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_arrival_schedules_are_monotone(self, sizes):
        profile = NetworkProfile(initial_latency_ms=10.0, bandwidth_kbps=100.0, jitter_ms=0.0)
        arrivals = profile.arrival_schedule(sizes)
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[0] >= 10.0


# ---------------------------------------------------------------------------
# Join correctness invariants
# ---------------------------------------------------------------------------


class TestJoinProperties:
    @given(left=pair_lists, right=pair_lists)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_dpj_matches_reference_multiset(self, left, right):
        rows = run_join(DoublePipelinedJoin, left, right)
        assert join_multiset(rows) == reference_pairs(left, right)

    @given(left=pair_lists, right=pair_lists)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_dpj_left_flush_under_pressure_matches_reference(self, left, right):
        rows = run_join(
            DoublePipelinedJoin,
            left,
            right,
            memory_limit_bytes=LEFT_SCHEMA.tuple_size * 3,
            bucket_count=4,
            overflow_method=OverflowMethod.LEFT_FLUSH,
        )
        assert join_multiset(rows) == reference_pairs(left, right)

    @given(left=pair_lists, right=pair_lists)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_dpj_symmetric_flush_under_pressure_matches_reference(self, left, right):
        rows = run_join(
            DoublePipelinedJoin,
            left,
            right,
            memory_limit_bytes=LEFT_SCHEMA.tuple_size * 3,
            bucket_count=4,
            overflow_method=OverflowMethod.SYMMETRIC_FLUSH,
        )
        assert join_multiset(rows) == reference_pairs(left, right)

    @given(left=pair_lists, right=pair_lists)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_hybrid_hash_under_pressure_matches_reference(self, left, right):
        rows = run_join(
            HybridHashJoin,
            left,
            right,
            memory_limit_bytes=RIGHT_SCHEMA.tuple_size * 3,
            bucket_count=4,
        )
        assert join_multiset(rows) == reference_pairs(left, right)

    @given(left=pair_lists, right=pair_lists)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_join_cardinality_formula(self, left, right):
        rows = run_join(DoublePipelinedJoin, left, right)
        assert len(rows) == expected_join_size(left, right)


# ---------------------------------------------------------------------------
# Relation algebra invariants
# ---------------------------------------------------------------------------


class TestRelationProperties:
    @given(pairs=pair_lists)
    @settings(max_examples=60, deadline=None)
    def test_union_cardinality_adds(self, pairs):
        schema = Schema.of("k:int", "p:str")
        a = Relation("a", schema, (Row(schema, p) for p in pairs))
        b = Relation("b", schema, (Row(schema, p) for p in pairs))
        assert a.union(b).cardinality == 2 * len(pairs)

    @given(pairs=pair_lists)
    @settings(max_examples=60, deadline=None)
    def test_distinct_idempotent(self, pairs):
        schema = Schema.of("k:int", "p:str")
        rel = Relation("a", schema, (Row(schema, p) for p in pairs))
        once = rel.distinct()
        twice = once.distinct()
        assert once.multiset() == twice.multiset()
        assert once.cardinality == len(set(pairs))

    @given(pairs=pair_lists)
    @settings(max_examples=60, deadline=None)
    def test_projection_preserves_cardinality(self, pairs):
        schema = Schema.of("k:int", "p:str")
        rel = Relation("a", schema, (Row(schema, p) for p in pairs))
        assert rel.project(["k"]).cardinality == rel.cardinality
