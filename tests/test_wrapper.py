"""Unit tests for repro.network.wrapper."""

import pytest

from repro.errors import SourceTimeoutError, SourceUnavailableError
from repro.network.profiles import NetworkProfile, dead, lan, slow_start
from repro.network.simclock import SimClock
from repro.network.source import DataSource
from repro.network.wrapper import Wrapper

from helpers import make_relation


@pytest.fixture
def relation():
    return make_relation("t", ["k:int"], [(i,) for i in range(5)])


def make_wrapper(relation, profile=None, timeout_ms=None, clock=None):
    source = DataSource("src", relation, profile or lan())
    return Wrapper(source, clock or SimClock(), timeout_ms=timeout_ms)


class TestWrapperStreaming:
    def test_fetch_advances_clock_to_arrival(self, relation):
        clock = SimClock()
        wrapper = make_wrapper(relation, clock=clock)
        wrapper.open()
        row = wrapper.fetch()
        assert row is not None
        assert clock.now >= lan().initial_latency_ms
        assert row.arrival == clock.now

    def test_fetch_all_then_none(self, relation):
        wrapper = make_wrapper(relation)
        wrapper.open()
        rows = []
        while True:
            row = wrapper.fetch()
            if row is None:
                break
            rows.append(row)
        assert len(rows) == 5
        assert wrapper.exhausted
        assert wrapper.stats.tuples_fetched == 5
        assert wrapper.stats.time_of_first_tuple is not None

    def test_fetch_before_open_raises(self, relation):
        wrapper = make_wrapper(relation)
        with pytest.raises(SourceUnavailableError):
            wrapper.fetch()

    def test_schema_qualified(self, relation):
        wrapper = make_wrapper(relation)
        assert wrapper.schema.names == ("t.k",)

    def test_next_arrival_visible_without_consuming(self, relation):
        wrapper = make_wrapper(relation)
        wrapper.open()
        arrival = wrapper.next_arrival()
        assert arrival is not None
        assert wrapper.stats.tuples_fetched == 0

    def test_fetch_available_only_returns_arrived_tuples(self, relation):
        clock = SimClock()
        wrapper = make_wrapper(relation, profile=slow_start(delay_ms=1000.0), clock=clock)
        wrapper.open()
        assert wrapper.fetch_available() is None
        clock.advance_to(5000.0)
        assert wrapper.fetch_available() is not None

    def test_reset_allows_reopen(self, relation):
        wrapper = make_wrapper(relation)
        wrapper.open()
        wrapper.fetch()
        wrapper.reset()
        assert not wrapper.is_open
        wrapper.open()
        assert wrapper.fetch() is not None


class TestWrapperTimeouts:
    def test_timeout_raised_for_slow_source(self, relation):
        wrapper = make_wrapper(relation, profile=slow_start(delay_ms=10_000.0), timeout_ms=100.0)
        wrapper.open()
        with pytest.raises(SourceTimeoutError):
            wrapper.fetch()
        assert wrapper.stats.timeouts == 1

    def test_timeout_advances_clock_by_timeout(self, relation):
        clock = SimClock()
        wrapper = make_wrapper(
            relation, profile=slow_start(delay_ms=10_000.0), timeout_ms=250.0, clock=clock
        )
        wrapper.open()
        with pytest.raises(SourceTimeoutError):
            wrapper.fetch()
        assert clock.now == pytest.approx(250.0)

    def test_dead_source_times_out(self, relation):
        wrapper = make_wrapper(relation, profile=dead(), timeout_ms=50.0)
        wrapper.open()
        assert wrapper.would_timeout()
        with pytest.raises(SourceTimeoutError):
            wrapper.fetch()

    def test_no_timeout_when_disabled(self, relation):
        wrapper = make_wrapper(relation, profile=slow_start(delay_ms=2_000.0), timeout_ms=None)
        wrapper.open()
        assert not wrapper.would_timeout()
        assert wrapper.fetch() is not None

    def test_error_counted_for_failing_source(self, relation):
        profile = NetworkProfile(drop_after_tuples=1)
        wrapper = make_wrapper(relation, profile=profile)
        wrapper.open()
        wrapper.fetch()
        with pytest.raises(SourceUnavailableError):
            wrapper.fetch()
        assert wrapper.stats.errors == 1
