"""Unit tests for repro.plan.rules."""

import pytest

from repro.errors import RuleError
from repro.plan.rules import (
    Always,
    And,
    Compare,
    Event,
    EventType,
    Never,
    Not,
    Or,
    Rule,
    activate,
    alter_memory,
    card,
    constant,
    deactivate,
    est_card,
    event_value,
    memory,
    replan,
    reschedule,
    return_error,
    set_overflow_method,
    state,
    time_waiting,
    validate_rule_set,
)


class FakeContext:
    """Minimal RuntimeContext stub for condition evaluation."""

    def __init__(self, cards=None, est=None, states=None, memories=None, waits=None):
        self.cards = cards or {}
        self.est = est or {}
        self.states = states or {}
        self.memories = memories or {}
        self.waits = waits or {}

    def operator_state(self, operator_id):
        return self.states.get(operator_id, "open")

    def operator_card(self, operator_id):
        return self.cards.get(operator_id, 0)

    def operator_est_card(self, operator_id):
        return self.est.get(operator_id)

    def operator_memory(self, operator_id):
        return self.memories.get(operator_id, 0)

    def operator_time_since_last_tuple(self, operator_id):
        return self.waits.get(operator_id, 0.0)


EVENT = Event(EventType.CLOSED, "frag1", value=100, at_time=5.0)


class TestConditions:
    def test_always_never(self):
        ctx = FakeContext()
        assert Always().evaluate(ctx, EVENT)
        assert not Never().evaluate(ctx, EVENT)

    def test_boolean_combinators(self):
        ctx = FakeContext()
        assert (Always() & Always()).evaluate(ctx, EVENT)
        assert not (Always() & Never()).evaluate(ctx, EVENT)
        assert (Never() | Always()).evaluate(ctx, EVENT)
        assert (~Never()).evaluate(ctx, EVENT)
        assert isinstance(Always() & Never(), And)
        assert isinstance(Always() | Never(), Or)
        assert isinstance(~Always(), Not)

    def test_compare_quantities(self):
        ctx = FakeContext(cards={"join1": 250}, est={"join1": 100})
        # The paper's rule: card(join1) >= 2 * est_card(join1).
        rule_condition = Compare(card("join1"), ">=", est_card("join1"), scale=2.0)
        assert rule_condition.evaluate(ctx, EVENT)
        ctx2 = FakeContext(cards={"join1": 150}, est={"join1": 100})
        assert not rule_condition.evaluate(ctx2, EVENT)

    def test_compare_event_value_and_constant(self):
        condition = Compare(event_value(), ">=", constant(50))
        assert condition.evaluate(FakeContext(), EVENT)
        assert not condition.evaluate(FakeContext(), Event(EventType.CLOSED, "frag1", value=10))

    def test_compare_state_memory_time(self):
        ctx = FakeContext(states={"op": "open"}, memories={"op": 2048}, waits={"op": 99.0})
        assert Compare(state("op"), "=", constant("open")).evaluate(ctx, EVENT)
        assert Compare(memory("op"), ">", constant(1024)).evaluate(ctx, EVENT)
        assert Compare(time_waiting("op"), ">=", constant(50)).evaluate(ctx, EVENT)

    def test_invalid_comparator(self):
        with pytest.raises(RuleError):
            Compare(constant(1), "~", constant(2))

    def test_missing_estimate_treated_as_zero(self):
        condition = Compare(est_card("nope"), "=", constant(0))
        assert condition.evaluate(FakeContext(), EVENT)

    def test_str_rendering(self):
        condition = Compare(card("j"), ">=", est_card("j"), scale=2.0)
        assert str(condition) == "card(j) >= 2.0 * est_card(j)"
        assert str(Always()) == "true"


class TestRules:
    def test_rule_requires_actions(self):
        with pytest.raises(RuleError):
            Rule("r", "own", EventType.CLOSED, "frag1", actions=[])

    def test_rule_matches_event(self):
        rule = Rule("r", "own", EventType.CLOSED, "frag1", actions=[replan()])
        assert rule.matches(EVENT)
        assert not rule.matches(Event(EventType.OPENED, "frag1"))
        assert not rule.matches(Event(EventType.CLOSED, "frag2"))
        assert rule.event_key == (EventType.CLOSED, "frag1")

    def test_rule_str_matches_paper_form(self):
        rule = Rule(
            "r",
            "frag1",
            EventType.CLOSED,
            "frag1",
            condition=Compare(card("join1"), ">=", est_card("join1"), scale=2.0),
            actions=[replan()],
        )
        assert str(rule) == (
            "when closed(frag1) if card(join1) >= 2.0 * est_card(join1) then (reoptimize)"
        )

    def test_action_constructors(self):
        assert set_overflow_method("j", "left_flush").argument == "left_flush"
        assert alter_memory("j", 1024).argument == 1024
        assert deactivate("x").target == "x"
        assert activate("coll", "child").argument == "child"
        assert reschedule().target == ""
        assert return_error("boom").argument == "boom"


class TestValidateRuleSet:
    def test_duplicate_names_rejected(self):
        rules = [
            Rule("r", "o", EventType.CLOSED, "a", actions=[replan()]),
            Rule("r", "o", EventType.CLOSED, "b", actions=[replan()]),
        ]
        with pytest.raises(RuleError):
            validate_rule_set(rules)

    def test_conflicting_activate_deactivate_rejected(self):
        rules = [
            Rule("r1", "o", EventType.TIMEOUT, "a", actions=[activate("coll", "x")]),
            Rule("r2", "o", EventType.TIMEOUT, "a", actions=[deactivate("coll")]),
        ]
        with pytest.raises(RuleError):
            validate_rule_set(rules)

    def test_conflicting_overflow_methods_rejected(self):
        rules = [
            Rule("r1", "o", EventType.OUT_OF_MEMORY, "j", actions=[set_overflow_method("j", "left_flush")]),
            Rule("r2", "o", EventType.OUT_OF_MEMORY, "j", actions=[set_overflow_method("j", "symmetric_flush")]),
        ]
        with pytest.raises(RuleError):
            validate_rule_set(rules)

    def test_non_conflicting_set_accepted(self):
        rules = [
            Rule("r1", "o", EventType.TIMEOUT, "a", actions=[reschedule()]),
            Rule("r2", "o", EventType.TIMEOUT, "b", actions=[deactivate("a")]),
            Rule("r3", "o", EventType.CLOSED, "frag", actions=[replan()]),
        ]
        validate_rule_set(rules)
