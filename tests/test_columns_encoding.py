"""Encoding-layer edge cases: dictionary columns and run-length arrivals.

Covers the degradation paths (``None``/mixed-type values mid-batch,
high-cardinality dictionaries), dictionary merging on batch concat and spill
read-back, RLE arrival correctness under ``next_batch_bounded`` interrupts,
and the canonical-string property (decoding never constructs strings).
"""

from array import array

import pytest

from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.operators.scan import TableScan
from repro.storage.batch import Batch, gather_arrivals, typed_transpose
from repro.storage.columns import (
    DICT_MAX_ENTRIES,
    DictColumn,
    Dictionary,
    RunLengthArrivals,
    arrival_run_count,
    as_values,
    build_column,
    build_columns,
    compress_arrivals,
    empty_columns,
    empty_like,
    extend_column,
    gather,
    make_dictionaries,
)
from repro.storage.schema import Schema
from repro.storage.tuples import Row

from helpers import make_relation

SCHEMA = Schema.of("k:int", "name:str", "score:float")


class TestDictionary:
    def test_codes_are_dense_and_stable(self):
        d = Dictionary()
        assert d.encode("a") == 0
        assert d.encode("b") == 1
        assert d.encode("a") == 0
        assert d.values == ["a", "b"]
        assert len(d) == 2

    def test_bytes_used_counts_value_and_slot(self):
        d = Dictionary()
        d.encode("abc")
        assert d.bytes_used == 3 + 8

    def test_on_grow_fires_only_for_new_entries(self):
        d = Dictionary()
        grown = []
        d.on_grow = grown.append
        d.encode("abc")
        d.encode("abc")
        assert grown == [11]

    def test_non_string_raises_type_error(self):
        d = Dictionary()
        with pytest.raises(TypeError):
            d.encode(None)
        with pytest.raises(TypeError):
            d.encode(7)

    def test_capacity_exceeded_raises_value_error(self, monkeypatch):
        import repro.storage.columns as columns_module

        monkeypatch.setattr(columns_module, "DICT_MAX_ENTRIES", 2)
        d = Dictionary()
        d.encode("a")
        d.encode("b")
        with pytest.raises(ValueError):
            d.encode("c")
        assert DICT_MAX_ENTRIES > 2  # the real cap is generous


class TestDictColumn:
    def test_build_columns_encodes_strings(self):
        columns = build_columns(
            SCHEMA, [[1, 2], ["x", "y"], [0.5, 1.5]], encoded=True
        )
        assert isinstance(columns[0], array)
        assert isinstance(columns[1], DictColumn)
        assert isinstance(columns[2], array)
        assert list(columns[1]) == ["x", "y"]

    def test_decoding_returns_canonical_objects(self):
        column = DictColumn()
        column.extend(["abc", "ab" + "c"])
        assert column[0] is column[1]  # one canonical string, two codes

    def test_gather_and_slice_share_dictionary(self):
        column = DictColumn()
        column.extend(["a", "b", "c", "a"])
        taken = gather(column, [0, 3])
        assert isinstance(taken, DictColumn)
        assert taken.dictionary is column.dictionary
        assert list(taken) == ["a", "a"]
        sliced = column[1:3]
        assert sliced.dictionary is column.dictionary
        assert list(sliced) == ["b", "c"]

    def test_same_dictionary_extend_moves_codes(self):
        d = Dictionary()
        a = DictColumn(d)
        a.extend(["x", "y"])
        b = DictColumn(d)
        b.extend(a)
        assert list(b.codes) == list(a.codes)

    def test_foreign_dictionary_extend_merges(self):
        a = DictColumn()
        a.extend(["x", "y"])
        b = DictColumn()
        b.extend(["y", "z"])
        a.extend(b)
        assert list(a) == ["x", "y", "y", "z"]
        # Codes were remapped into a's dictionary, not copied.
        assert a.dictionary.values == ["x", "y", "z"]

    def test_none_degrades_mid_batch(self):
        columns = empty_columns(SCHEMA, encoded=True)
        extend_column(columns, 1, ["x", "y"], 0)
        assert isinstance(columns[1], DictColumn)
        extend_column(columns, 1, ["z", None], 2)
        assert isinstance(columns[1], list)
        assert columns[1] == ["x", "y", "z", None]

    def test_mixed_type_append_degrades(self):
        from repro.storage.columns import append_value

        columns = [DictColumn()]
        append_value(columns, 0, "x")
        append_value(columns, 0, 42)
        assert isinstance(columns[0], list)
        assert columns[0] == ["x", 42]

    def test_build_column_falls_back_on_misfit(self):
        column = build_column("str", ["a", None, "b"], encoded=True)
        assert isinstance(column, list)
        assert column == ["a", None, "b"]

    def test_empty_like_shares_dictionary(self):
        column = DictColumn()
        column.extend(["a"])
        twin = empty_like(column)
        assert isinstance(twin, DictColumn)
        assert twin.dictionary is column.dictionary
        assert len(twin) == 0

    def test_as_values_decodes_once(self):
        column = DictColumn()
        column.extend(["a", "b", "a"])
        values = as_values(column)
        assert values == ["a", "b", "a"]
        assert values[0] is values[2]

    def test_equality_with_lists(self):
        column = DictColumn()
        column.extend(["a", "b"])
        assert column == ["a", "b"]
        assert not (column == ["a", "c"])


class TestFrozenDictionaries:
    """Shared translation caches freeze: foreign values degrade the consumer's
    column instead of permanently polluting the shared dictionary."""

    def test_frozen_dictionary_rejects_new_entries(self):
        d = Dictionary()
        d.encode("a")
        d.freeze()
        assert d.encode("a") == 0  # existing entries still resolve
        with pytest.raises(ValueError):
            d.encode("b")

    def test_concat_over_two_sources_does_not_pollute_either_cache(self):
        from repro.catalog.catalog import DataSourceCatalog
        from repro.engine.operators.union import Union
        from repro.engine.operators.scan import WrapperScan
        from repro.network.profiles import lan
        from repro.network.source import DataSource

        a = make_relation("rel", ["name:str"], [("a1",), ("a2",)])
        b = make_relation("rel", ["name:str"], [("b1",), ("b2",)])
        catalog = DataSourceCatalog()
        catalog.register_source(DataSource("src-a", a, lan()))
        catalog.register_source(DataSource("src-b", b, lan()))
        context = ExecutionContext(catalog)
        union = Union(
            "uni",
            context,
            [WrapperScan("sa", context, "src-a"), WrapperScan("sb", context, "src-b")],
        )
        union.open()
        rows = []
        while True:
            batch = union.next_batch(64)
            if not batch:
                break
            rows.extend(row.values[0] for row in batch.rows())
        union.close()
        assert sorted(rows) == ["a1", "a2", "b1", "b2"]
        # Neither source's persistent translation cache absorbed the other's
        # values (the union accumulator degraded instead).
        _, dicts_a = catalog.source("src-a").encoded_column_cache()
        _, dicts_b = catalog.source("src-b").encoded_column_cache()
        assert dicts_a[0].values == ["a1", "a2"]
        assert dicts_b[0].values == ["b1", "b2"]


class TestBatchDictionaryMerge:
    def test_concat_keeps_encoding_and_merges_dictionaries(self):
        schema = Schema.of("name:str")
        left = Batch.from_columns(
            schema, [build_column("str", ["a", "b"], encoded=True)], [0.0, 0.0]
        )
        right = Batch.from_columns(
            schema, [build_column("str", ["b", "c"], encoded=True)], [0.0, 0.0]
        )
        merged = Batch.concat(schema, [left, right])
        column = merged.columns[0]
        assert isinstance(column, DictColumn)
        # The accumulator shares the left part's dictionary; the right
        # part's codes were remapped into it.
        assert column.dictionary is left.columns[0].dictionary
        assert list(column) == ["a", "b", "b", "c"]

    def test_typed_transpose_with_persistent_dictionaries(self):
        dictionaries = make_dictionaries(SCHEMA)
        rows1 = [Row(SCHEMA, (1, "x", 0.5))]
        rows2 = [Row(SCHEMA, (2, "x", 1.5))]
        c1 = typed_transpose(SCHEMA, rows1, True, dictionaries)
        c2 = typed_transpose(SCHEMA, rows2, True, dictionaries)
        assert c1[1].dictionary is c2[1].dictionary
        assert list(c1[1].codes) == list(c2[1].codes)  # same value, same code


class TestSpillReadBack:
    def test_dictionary_merge_on_spill_read_back(self):
        """Chunks written from different dictionaries decode consistently."""
        from repro.storage.disk import SimulatedDisk

        schema = Schema.of("name:str")
        disk = SimulatedDisk()
        handle = disk.create_file(schema=schema)
        a = DictColumn()
        a.extend(["x", "y"])
        b = DictColumn()
        b.extend(["y", "z"])
        handle.write_columns([a], [1.0, 2.0], False)
        handle.write_columns([b], [3.0, 4.0], False)
        values = [row.values[0] for row, _ in handle.read()]
        assert values == ["x", "y", "y", "z"]


class TestRunLengthArrivals:
    def test_append_merges_equal_runs(self):
        arrivals = RunLengthArrivals()
        for value in [1.0, 1.0, 1.0, 2.0, 2.0]:
            arrivals.append(value)
        assert len(arrivals) == 5
        assert arrivals.run_count == 2
        assert list(arrivals) == [1.0, 1.0, 1.0, 2.0, 2.0]

    def test_random_access_and_negative_index(self):
        arrivals = RunLengthArrivals([1.0, 1.0, 2.0, 3.0, 3.0, 3.0])
        assert arrivals[0] == 1.0
        assert arrivals[2] == 2.0
        assert arrivals[5] == 3.0
        assert arrivals[-1] == 3.0
        with pytest.raises(IndexError):
            _ = arrivals[6]

    def test_slice_preserves_runs(self):
        arrivals = RunLengthArrivals([1.0] * 4 + [2.0] * 4)
        sliced = arrivals[2:6]
        assert isinstance(sliced, RunLengthArrivals)
        assert list(sliced) == [1.0, 1.0, 2.0, 2.0]
        assert sliced.run_count == 2

    def test_extend_merges_adjacent_runs_across_parts(self):
        a = RunLengthArrivals([1.0, 1.0])
        b = RunLengthArrivals([1.0, 2.0])
        a.extend(b)
        assert list(a) == [1.0, 1.0, 1.0, 2.0]
        assert a.run_count == 2

    def test_constant_run(self):
        arrivals = RunLengthArrivals.constant(5.0, 3)
        assert list(arrivals) == [5.0, 5.0, 5.0]
        assert arrivals.run_count == 1
        assert arrivals.last == 5.0

    def test_degrades_on_incompressible_stream(self):
        arrivals = RunLengthArrivals()
        for i in range(200):
            arrivals.append(float(i))  # strictly increasing: runs of one
        assert arrivals._plain is not None  # switched to the plain form
        assert arrivals[123] == 123.0
        assert len(arrivals) == 200

    def test_gather_recompresses(self):
        arrivals = RunLengthArrivals([1.0] * 5 + [2.0] * 5)
        taken = gather_arrivals(arrivals, [0, 1, 5, 6])
        assert isinstance(taken, RunLengthArrivals)
        assert list(taken) == [1.0, 1.0, 2.0, 2.0]

    def test_run_count_helper_and_compress(self):
        assert arrival_run_count([1.0, 1.0, 2.0]) == 2
        assert arrival_run_count([]) == 0
        compressed = compress_arrivals([7.0] * 10)
        assert isinstance(compressed, RunLengthArrivals)
        incompressible = compress_arrivals([float(i) for i in range(10)])
        assert isinstance(incompressible, list)

    def test_equality(self):
        assert RunLengthArrivals([1.0, 1.0]) == [1.0, 1.0]
        assert RunLengthArrivals([1.0, 1.0]) == RunLengthArrivals([1.0, 1.0])
        assert not (RunLengthArrivals([1.0]) == [2.0])


class TestTableScanRLE:
    """Local block scans stamp whole blocks: one run per block, and the
    bounded-batch protocol reads runs correctly."""

    def _scan(self, context):
        stored = make_relation(
            "stored", ["k:int", "v:str"], [(i, f"v{i % 5}") for i in range(50)]
        )
        context.local_store.materialize(stored)
        scan = TableScan("tscan", context, "stored")
        scan.open()
        return scan

    def _catalog(self):
        from repro.catalog.catalog import DataSourceCatalog

        return DataSourceCatalog()

    def test_table_scan_batches_carry_rle_arrivals(self):
        context = ExecutionContext(self._catalog())
        scan = self._scan(context)
        batch = scan.next_batch(20)
        assert isinstance(batch.arrivals, RunLengthArrivals)
        assert batch.arrivals.run_count == 1
        assert len(batch) == 20

    def test_table_scan_plain_mode_keeps_lists(self):
        context = ExecutionContext(
            self._catalog(), config=EngineConfig(encoded_columns=False)
        )
        scan = self._scan(context)
        batch = scan.next_batch(20)
        assert isinstance(batch.arrivals, list)

    def test_bounded_batches_respect_rle_arrivals(self):
        """next_batch_bounded over RLE-stamped batches: the generic bounded
        fallback peeks arrivals; interrupting mid-stream must not lose or
        duplicate rows, and concatenating the pieces preserves stamps."""
        context = ExecutionContext(self._catalog())
        scan = self._scan(context)
        pieces = []
        # Rows are stamped "now"; a bound above now admits them.
        bound = context.clock.now + 1.0
        while True:
            piece = scan.next_batch_bounded(7, bound)
            if not piece:
                break
            pieces.append(piece)
        total = Batch.concat(scan.output_schema, pieces)
        assert len(total) == 50
        assert [row.values[0] for row in total.rows()] == list(range(50))
        # Each bounded piece is stamped with one "now" (the clock advances
        # between pulls), so the stamps collapse to one run per piece — far
        # fewer than one stamp per row.
        assert arrival_run_count(total.arrivals) == len(pieces)
        assert len(pieces) < 50
