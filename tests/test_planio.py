"""Unit tests for repro.plan.planio (plan serialization + condition grammar)."""

import pytest

from repro.errors import PlanError, RuleError
from repro.plan.fragments import Fragment, QueryPlan
from repro.plan.physical import collector, join, select_, wrapper_scan
from repro.plan.planio import parse_condition, plan_from_xml, plan_to_xml, render_condition
from repro.plan.rules import (
    Compare,
    Event,
    EventType,
    Rule,
    card,
    constant,
    deactivate,
    est_card,
    event_value,
    replan,
)
from repro.query.conjunctive import SelectionPredicate

from test_rules import FakeContext


class TestConditionGrammar:
    def test_true_false(self):
        assert parse_condition("true").evaluate(FakeContext(), Event(EventType.CLOSED, "x"))
        assert not parse_condition("false").evaluate(FakeContext(), Event(EventType.CLOSED, "x"))
        assert parse_condition("").evaluate(FakeContext(), Event(EventType.CLOSED, "x"))

    def test_comparison_roundtrip(self):
        original = Compare(card("join1"), ">=", est_card("join1"), scale=2.0)
        parsed = parse_condition(render_condition(original))
        ctx_hit = FakeContext(cards={"join1": 300}, est={"join1": 100})
        ctx_miss = FakeContext(cards={"join1": 100}, est={"join1": 100})
        event = Event(EventType.CLOSED, "join1")
        assert parsed.evaluate(ctx_hit, event) == original.evaluate(ctx_hit, event)
        assert parsed.evaluate(ctx_miss, event) == original.evaluate(ctx_miss, event)

    def test_event_value_and_constants(self):
        parsed = parse_condition("event.value >= 10")
        assert parsed.evaluate(FakeContext(), Event(EventType.THRESHOLD, "s", value=12))
        assert not parsed.evaluate(FakeContext(), Event(EventType.THRESHOLD, "s", value=5))

    def test_boolean_combinations(self):
        text = "(card(a) >= 5 and card(b) >= 5) or state(c) = 'closed'"
        parsed = parse_condition(text)
        event = Event(EventType.CLOSED, "x")
        assert parsed.evaluate(FakeContext(cards={"a": 9, "b": 9}), event)
        assert parsed.evaluate(FakeContext(states={"c": "closed"}), event)
        assert not parsed.evaluate(FakeContext(), event)

    def test_not(self):
        parsed = parse_condition("not card(a) >= 5")
        assert parsed.evaluate(FakeContext(cards={"a": 1}), Event(EventType.CLOSED, "x"))

    def test_float_scale_and_less_equal(self):
        parsed = parse_condition("event.value <= 0.5 * card(j)")
        assert parsed.evaluate(
            FakeContext(cards={"j": 100}), Event(EventType.CLOSED, "j", value=10)
        )

    def test_malformed_rejected(self):
        with pytest.raises(RuleError):
            parse_condition("card(a) ~~ 5")
        with pytest.raises(RuleError):
            parse_condition("frobnicate(a) >= 5")


def build_plan() -> QueryPlan:
    scan_a = wrapper_scan("srcA", operator_id="scanA")
    scan_b = wrapper_scan("srcB", operator_id="scanB")
    scan_b2 = wrapper_scan("srcB2", operator_id="scanB2")
    coll = collector([scan_b, scan_b2], operator_id="coll1")
    coll.params["dedup_keys"] = ["b.k"]
    coll.params["initially_active"] = ["scanB"]
    filtered = select_(scan_a, [SelectionPredicate("a", "x", ">", 5)], operator_id="sel1")
    root = join(
        filtered, coll, ["a.k"], ["b.k"],
        operator_id="join1", memory_limit_bytes=65536, estimated_cardinality=42,
    )
    fragment = Fragment(
        fragment_id="frag1",
        root=root,
        result_name="res1",
        estimated_cardinality=42,
        estimate_reliable=False,
        covers=frozenset({"a", "b"}),
        rules=[
            Rule(
                "replan-frag1",
                "frag1",
                EventType.CLOSED,
                "frag1",
                condition=Compare(event_value(), ">=", constant(42), scale=2.0),
                actions=[replan()],
            )
        ],
    )
    return QueryPlan(
        query_name="demo",
        fragments=[fragment],
        global_rules=[
            Rule("kill-slow", "demo", EventType.TIMEOUT, "srcB", actions=[deactivate("scanB")])
        ],
        partial=True,
    )


class TestPlanSerialization:
    def test_roundtrip_preserves_structure(self):
        plan = build_plan()
        xml = plan_to_xml(plan)
        restored = plan_from_xml(xml)
        assert restored.query_name == "demo"
        assert restored.partial
        assert restored.answer_name == "res1"
        fragment = restored.fragment("frag1")
        assert fragment.result_name == "res1"
        assert fragment.estimated_cardinality == 42
        assert not fragment.estimate_reliable
        assert fragment.covers == frozenset({"a", "b"})
        join_spec = restored.operator("join1")
        assert join_spec.memory_limit_bytes == 65536
        assert join_spec.params["left_keys"] == ["a.k"]
        coll_spec = restored.operator("coll1")
        assert coll_spec.params["initially_active"] == ["scanB"]
        select_spec = restored.operator("sel1")
        predicate = select_spec.params["predicates"][0]
        assert (predicate.table, predicate.attr, predicate.op, predicate.value) == ("a", "x", ">", 5)

    def test_roundtrip_preserves_rules(self):
        restored = plan_from_xml(plan_to_xml(build_plan()))
        rules = {rule.name: rule for rule in restored.all_rules()}
        assert set(rules) == {"replan-frag1", "kill-slow"}
        replan_rule = rules["replan-frag1"]
        assert replan_rule.event_type == EventType.CLOSED
        assert replan_rule.actions[0].action_type.value == "reoptimize"
        # The condition still fires for a doubled cardinality.
        assert replan_rule.condition.evaluate(
            FakeContext(), Event(EventType.CLOSED, "frag1", value=100)
        )
        kill = rules["kill-slow"]
        assert kill.actions[0].target == "scanB"

    def test_dependencies_roundtrip(self):
        plan = build_plan()
        extra_root = wrapper_scan("srcC", operator_id="scanC")
        extra = Fragment(fragment_id="frag2", root=extra_root, result_name="res2")
        plan2 = QueryPlan(
            query_name="demo2",
            fragments=[plan.fragments[0], extra],
            dependencies={"frag2": {"frag1"}},
        )
        restored = plan_from_xml(plan_to_xml(plan2))
        assert restored.dependencies == {"frag2": {"frag1"}}

    def test_xml_is_human_readable(self):
        xml = plan_to_xml(build_plan())
        assert "<plan" in xml
        assert "wrapper_scan" in xml
        assert "double_pipelined" in xml

    def test_malformed_xml_rejected(self):
        with pytest.raises(PlanError):
            plan_from_xml("<not-a-plan/>")
        with pytest.raises(PlanError):
            plan_from_xml("not xml at all <<<")
