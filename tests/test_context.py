"""Unit tests for repro.engine.context."""

import pytest

from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.operators.scan import WrapperScan
from repro.errors import ExecutionError
from repro.plan.rules import EventType


class TestWrapperManagement:
    def test_each_call_creates_a_fresh_wrapper(self, context):
        w1 = context.create_wrapper("ord")
        w2 = context.create_wrapper("ord")
        assert w1 is not w2
        assert len(context.wrappers["ord"]) == 2

    def test_wrapper_uses_default_timeout(self, joinable_catalog):
        ctx = ExecutionContext(joinable_catalog, config=EngineConfig(default_timeout_ms=123.0))
        assert ctx.create_wrapper("ord").timeout_ms == 123.0

    def test_wrapper_timeout_override(self, context):
        wrapper = context.create_wrapper("item", timeout_ms=5.0)
        assert wrapper.timeout_ms == 5.0


class TestOperatorRegistry:
    def test_register_and_lookup(self, context):
        scan = WrapperScan("scan1", context, "ord")
        assert context.operator("scan1") is scan
        assert context.has_operator("scan1")
        with pytest.raises(ExecutionError):
            context.operator("ghost")

    def test_deactivation_flags(self, context):
        context.deactivate("op1")
        assert context.is_deactivated("op1")
        context.reactivate("op1")
        assert not context.is_deactivated("op1")


class TestRuntimeContextProtocol:
    def test_operator_state_reflects_deactivation(self, context):
        WrapperScan("scan1", context, "ord")
        assert context.operator_state("scan1") == "pending"
        context.deactivate("scan1")
        assert context.operator_state("scan1") == "deactivated"

    def test_operator_card_counts_output(self, context):
        scan = WrapperScan("scan1", context, "ord")
        scan.open()
        scan.next()
        assert context.operator_card("scan1") == 1

    def test_operator_est_card(self, context):
        WrapperScan("scan1", context, "ord", estimated_cardinality=77)
        assert context.operator_est_card("scan1") == 77
        assert context.operator_est_card("missing") is None

    def test_operator_memory_zero_without_budget(self, context):
        WrapperScan("scan1", context, "ord")
        assert context.operator_memory("scan1") == 0
        assert context.operator_memory("missing") == 0

    def test_time_since_last_tuple(self, context):
        scan = WrapperScan("scan1", context, "ord")
        scan.open()
        assert context.operator_time_since_last_tuple("scan1") == context.clock.now
        scan.next()
        assert context.operator_time_since_last_tuple("scan1") == 0.0
        context.clock.consume_cpu(5.0)
        assert context.operator_time_since_last_tuple("scan1") == pytest.approx(5.0)

    def test_emit_event_stamps_current_time(self, context):
        context.clock.consume_cpu(3.0)
        context.emit_event(EventType.OPENED, "x")
        event = context.events.pop()
        assert event.at_time == pytest.approx(3.0)
