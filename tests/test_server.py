"""Multi-query server: shared timeline, memory broker, cross-session source layer.

Covers the invariants the query-server subsystem promises:

* scheduling — sessions overlap on one virtual timeline (makespan well under
  the serial-equivalent sum) and the interleaving is deterministic;
* shared source cache — a session admitted after another read a source to
  completion pays **zero** network time for that source;
* memory broker — admission under pressure revokes leases mid-build,
  triggering the Section 4.2 overflow path, with results identical to an
  uncontended run and ``broker.used == sum(resident_bytes)`` after every
  revocation;
* connection concurrency — bounded sources queue extra streams on the
  shared timeline;
* drive-mode parity — per session, the columnar and row-batch drives agree
  exactly (results and virtual times).
"""

from __future__ import annotations

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.engine.context import EngineConfig
from repro.network.cache import CACHE_SERVE_CPU_MS, SourceCache
from repro.network.profiles import NetworkProfile
from repro.network.source import DataSource
from repro.plan.fragments import Fragment, QueryPlan
from repro.plan.physical import join, wrapper_scan
from repro.server import MemoryBroker, QueryServer, ServerClock, SessionStatus
from repro.storage.memory import MemoryPool

from helpers import make_relation, multiset, reference_join

#: Slow link so network waits dominate and overlap is visible.
SLOW = NetworkProfile(name="slow", initial_latency_ms=40.0, bandwidth_kbps=64.0)


def fresh_catalog(rows: int = 120, max_concurrent: int | None = None) -> DataSourceCatalog:
    """Two joinable sources behind slow links (fresh per test: slot state)."""
    left = make_relation(
        "l", ["id:int", "tag:str"], [(i, f"tag{i % 7}") for i in range(rows)]
    )
    right = make_relation(
        "r", ["rid:int", "grade:str"], [(i, f"g{i % 5}") for i in range(rows)]
    )
    catalog = DataSourceCatalog()
    catalog.register_source(DataSource("l", left, SLOW, max_concurrent=max_concurrent))
    catalog.register_source(DataSource("r", right, SLOW, max_concurrent=max_concurrent))
    return catalog


def scan_spec(source: str, prefix: str):
    return wrapper_scan(source, operator_id=f"{prefix}_scan_{source}")


def join_spec(prefix: str, memory: int | None = None):
    return join(
        scan_spec("l", prefix),
        scan_spec("r", prefix),
        ["l.id"],
        ["r.rid"],
        operator_id=f"{prefix}_join",
        memory_limit_bytes=memory,
    )


class TestServerClock:
    def test_sessions_admitted_at_causal_frontier(self):
        clock = ServerClock()
        a = clock.session_clock("a")
        assert a.now == 0.0
        a.consume_cpu(50.0)
        # a is the only active session, so the frontier — and b's admission
        # time — is 50.
        b = clock.session_clock("b")
        assert b.now == 50.0
        assert b.admitted_at_ms == 50.0

    def test_frontier_and_completion_track_min_and_max(self):
        clock = ServerClock()
        a = clock.session_clock("a")
        b = clock.session_clock("b")
        a.consume_cpu(10.0)
        b.consume_cpu(30.0)
        assert clock.frontier == 10.0
        assert clock.completion_ms == 30.0
        clock.finish("a")
        assert clock.frontier == 30.0
        assert clock.completion_ms == 30.0

    def test_staggered_arrival_never_in_the_past(self):
        clock = ServerClock()
        a = clock.session_clock("a")
        a.consume_cpu(100.0)
        late = clock.session_clock("late", start_ms=20.0)
        # Requested arrival 20 is before the frontier (100): clamped forward.
        assert late.now == 100.0
        future = clock.session_clock("future", start_ms=500.0)
        assert future.now == 500.0

    def test_aggregate_stats_sum_sessions(self):
        clock = ServerClock()
        a = clock.session_clock("a")
        b = clock.session_clock("b")
        a.consume_cpu(5.0)
        b.advance_to(b.now + 7.0)
        total = clock.aggregate_stats()
        assert total.cpu_ms == 5.0
        assert total.wait_ms == 7.0


class TestMemoryBroker:
    def test_lease_within_capacity_is_granted_verbatim(self):
        broker = MemoryBroker(1024 * 1024)
        pool = MemoryPool(name="q1", broker=broker)
        budget = pool.grant("op1", 512 * 1024)
        assert budget.limit_bytes == 512 * 1024
        assert broker.granted_bytes == 512 * 1024

    def test_usage_propagates_pool_and_broker(self):
        broker = MemoryBroker(1024 * 1024)
        pool = MemoryPool(name="q1", broker=broker)
        budget = pool.grant("op1", 512 * 1024)
        budget.reserve(1000)
        budget.force_reserve(24)
        assert pool.used_bytes == 1024
        assert broker.used_bytes == 1024
        budget.release(24)
        assert broker.used_bytes == 1000
        # Over-release clamps; the propagated delta matches the real change.
        budget.release(10_000)
        assert budget.used_bytes == 0
        assert pool.used_bytes == 0
        assert broker.used_bytes == 0

    def test_admission_revokes_largest_lease_down_to_floor(self):
        broker = MemoryBroker(300 * 1024, floor_bytes=64 * 1024)
        pool_a = MemoryPool(name="qa", broker=broker)
        big = pool_a.grant("a_join", 200 * 1024)
        small = pool_a.grant("a_aux", 64 * 1024)
        records = []
        broker.on_revocation = lambda _broker, record: records.append(record)
        pool_b = MemoryPool(name="qb", broker=broker)
        newcomer = pool_b.grant("b_join", 150 * 1024)
        # 36 KB were free; the remaining 114 KB came out of the big lease.
        assert newcomer.limit_bytes == 150 * 1024
        assert big.limit_bytes == 86 * 1024
        assert small.limit_bytes == 64 * 1024  # already at floor, untouched
        assert len(records) == 1 and records[0].victim == "a_join"
        assert broker.stats.revocations == 1
        assert broker.granted_bytes <= broker.capacity_bytes

    def test_floor_grant_when_nothing_revocable(self):
        broker = MemoryBroker(128 * 1024, floor_bytes=64 * 1024)
        pool = MemoryPool(name="qa", broker=broker)
        pool.grant("a", 64 * 1024)
        pool.grant("b", 64 * 1024)
        # Capacity exhausted, every lease at floor: the newcomer still gets
        # the floor (bounded oversubscription beats refusing the query).
        late = pool.grant("c", 100 * 1024)
        assert late.limit_bytes == 64 * 1024

    def test_release_returns_capacity(self):
        broker = MemoryBroker(256 * 1024)
        pool = MemoryPool(name="q", broker=broker)
        pool.grant("op", 256 * 1024)
        assert broker.available_bytes == 0
        pool.revoke("op")
        assert broker.available_bytes == 256 * 1024

    def test_revocation_triggers_on_revoke_handler(self):
        broker = MemoryBroker(200 * 1024, floor_bytes=64 * 1024)
        pool = MemoryPool(name="q", broker=broker)
        victim = pool.grant("victim", 200 * 1024)
        flushed = []
        victim.force_reserve(150 * 1024)
        victim.on_revoke = lambda budget: flushed.append(budget.limit_bytes)
        MemoryPool(name="q2", broker=broker).grant("newcomer", 100 * 1024)
        # The victim was shrunk below its usage; its handler ran.
        assert victim.limit_bytes == 100 * 1024
        assert flushed == [100 * 1024]
        assert victim.revocations == 1

    def test_attainable_counts_free_plus_revocable(self):
        broker = MemoryBroker(300 * 1024, floor_bytes=64 * 1024)
        pool = MemoryPool(name="q", broker=broker)
        pool.grant("op", 200 * 1024)
        # 100 KB free + 136 KB revocable above the floor.
        assert broker.attainable_bytes(1024 * 1024) == 236 * 1024
        assert broker.stats.revocations == 0  # the dry run revoked nothing


class TestSchedulerOverlap:
    def test_concurrent_sessions_overlap_network_stalls(self):
        server = QueryServer(fresh_catalog())
        for i in range(3):
            server.submit(scan_spec("l", f"s{i}"), f"s{i}")
        stats = server.run()
        assert stats.completed_sessions == 3
        # All three stream the same slow source concurrently: the makespan is
        # one stream's worth of time, not three.
        assert stats.makespan_ms < stats.serial_equivalent_ms / 2
        assert stats.overlap_speedup > 2.0

    def test_interleaving_is_deterministic(self):
        def run_once():
            server = QueryServer(fresh_catalog())
            for i in range(3):
                server.submit(join_spec(f"s{i}"), f"s{i}")
            stats = server.run()
            return (
                stats.makespan_ms,
                stats.scheduler_slices,
                [s.result_cardinality for s in stats.sessions],
            )

        assert run_once() == run_once()

    def test_session_failure_is_contained(self):
        catalog = fresh_catalog()
        dead_rel = make_relation("dead", ["id:int"], [(1,)])
        catalog.register_source(
            DataSource("dead", dead_rel, NetworkProfile(name="dead", unavailable=True))
        )
        server = QueryServer(catalog)
        bad = server.submit(
            wrapper_scan("dead", operator_id="bad_scan", timeout_ms=100.0), "bad"
        )
        good = server.submit(scan_spec("l", "good"), "good")
        stats = server.run()
        assert bad.status == SessionStatus.FAILED and bad.error
        assert good.status == SessionStatus.COMPLETED
        assert stats.completed_sessions == 1


class TestSharedSourceCache:
    def test_second_session_pays_zero_network_time(self):
        server = QueryServer(fresh_catalog())
        first = server.submit(scan_spec("l", "first"), "first")
        server.run()
        assert first.status == SessionStatus.COMPLETED
        # Admitted after the first completed: the extent is cached and
        # visible, so the whole scan is local CPU — zero waiting.
        second = server.submit(scan_spec("l", "second"), "second")
        server.run()
        assert second.status == SessionStatus.COMPLETED
        assert multiset(second.result) == multiset(first.result)
        assert second.summary.wait_ms == 0.0
        assert second.summary.elapsed_ms < first.summary.elapsed_ms / 10
        assert server.source_cache.stats.cross_session_hits >= 1

    def test_future_fills_are_invisible_until_reached(self):
        cache = SourceCache()
        schema_rows = make_relation("x", ["id:int"], [(1,), (2,)])
        cache.fill("x", schema_rows.schema, schema_rows.rows, now_ms=100.0, session="ahead")
        # A session whose clock is still at 40 must not see a fill from 100.
        assert cache.lookup("x", 40.0, session="behind") is None
        assert cache.stats.not_yet_visible == 1
        assert cache.lookup("x", 150.0, session="behind") is not None
        assert cache.stats.cross_session_hits == 1
        # Single-query lookups (no session) skip the guard: per-query clocks
        # restart at zero and are not comparable.
        assert cache.lookup("x", 0.0) is not None

    def test_dependent_join_probes_go_local_after_fill(self):
        catalog = fresh_catalog(rows=60)
        server = QueryServer(catalog)
        filler = server.submit(scan_spec("r", "filler"), "filler")
        server.run()
        assert filler.status == SessionStatus.COMPLETED
        from repro.plan.physical import OperatorSpec, OperatorType

        # The spec's second child is the bound side's placeholder scan (the
        # builder reads the source from params and never opens it).
        spec = OperatorSpec(
            "probe_dj",
            OperatorType.DEPENDENT_JOIN,
            children=[scan_spec("l", "probe"), scan_spec("r", "probe_bound")],
            params={"source": "r", "left_keys": ["l.id"], "right_keys": ["r.rid"]},
        )
        prober = server.submit(spec, "prober")
        server.run()
        assert prober.status == SessionStatus.COMPLETED
        # All probes were served from the cached extent: the only waiting the
        # session did was for its own left scan, never the probe source.
        dj = prober.context.operator("probe_dj")
        assert dj._cached_extent


class TestConnectionConcurrency:
    def test_bounded_source_queues_extra_streams(self):
        catalog = fresh_catalog(max_concurrent=1)
        server = QueryServer(catalog)
        a = server.submit(scan_spec("l", "a"), "a")
        b = server.submit(scan_spec("l", "b"), "b")
        stats = server.run()
        assert a.status == b.status == SessionStatus.COMPLETED
        assert multiset(a.result) == multiset(b.result)
        source = catalog.source("l")
        assert source.stats.connections_queued == 1
        assert source.stats.queued_ms > 0
        assert stats.source_queued_ms > 0
        # The queued stream starts after the first finishes: the makespan is
        # roughly two back-to-back streams, not one.
        assert stats.makespan_ms > a.summary.elapsed_ms * 1.5

    def test_slot_frees_early_when_reader_closes(self):
        rel = make_relation("s", ["id:int"], [(i,) for i in range(100)])
        source = DataSource("s", rel, SLOW, max_concurrent=1)
        first = source.open(at_ms=0.0)
        projected_end = first._arrivals[-1]
        first.close(at_ms=50.0)
        second = source.open(at_ms=60.0)
        # Without the early release the second stream would queue until the
        # projected end of the first.
        assert second.opened_at_ms == 60.0 < projected_end
        assert second.queued_ms == 0.0

    def test_unbounded_source_never_queues(self):
        rel = make_relation("s", ["id:int"], [(i,) for i in range(10)])
        source = DataSource("s", rel, SLOW)
        for _ in range(5):
            source.open(at_ms=0.0)
        assert source.stats.connections_queued == 0


def server_resident_bytes(server: QueryServer) -> int:
    """Server-wide resident bytes recomputed from operator state (not budgets)."""
    total = 0
    for session in server.sessions.values():
        for operator in session.context.operators.values():
            for table in getattr(operator, "_tables", None) or ():
                total += table.resident_bytes
            inner = getattr(operator, "_inner_table", None)
            if inner is not None:
                total += inner.resident_bytes
    return total


class TestBrokerRevocationMidBuild:
    ROWS = 1200

    def run_contended(self, columnar: bool | None = None):
        catalog = fresh_catalog(rows=self.ROWS)
        server = QueryServer(
            catalog,
            memory_capacity_bytes=96 * 1024,
        )
        server.broker.floor_bytes = 8 * 1024
        invariant_checks = []

        def check(broker, record):
            invariant_checks.append(
                (broker.used_bytes, server_resident_bytes(server))
            )

        server.broker.on_revocation = check
        a = server.submit(join_spec("a", memory=80 * 1024), "a", columnar=columnar)
        # b arrives once a is mid-build (the streams run for ~500 virtual
        # ms), forcing the broker to claw back most of a's lease while its
        # hash tables hold resident rows.
        b = server.submit(
            join_spec("b", memory=80 * 1024), "b", arrival_ms=400.0, columnar=columnar
        )
        server.run()
        return server, a, b, invariant_checks

    def test_revocation_triggers_overflow_with_identical_results(self):
        server, a, b, checks = self.run_contended()
        assert a.status == b.status == SessionStatus.COMPLETED
        assert server.broker.stats.revocations >= 1
        # The victim actually spilled (the §4.2 path ran mid-build).
        victim = a.context.operator("a_join")
        assert victim.overflow_count >= 1
        assert victim.budget.revocations >= 1
        # Results match an uncontended, single-tenant run of the same query.
        reference = QueryServer(fresh_catalog(rows=self.ROWS)).submit(
            join_spec("ref"), "ref"
        )
        reference.run_to_completion()
        assert multiset(a.result) == multiset(reference.result)
        assert multiset(b.result) == multiset(reference.result)

    def test_budget_invariant_holds_at_every_revocation(self):
        server, _a, _b, checks = self.run_contended()
        assert checks, "expected at least one revocation"
        for broker_used, resident in checks:
            assert broker_used == resident
        # And at quiescence everything was released.
        assert server.broker.used_bytes == 0
        assert server_resident_bytes(server) == 0

    def test_drive_mode_parity_under_contention(self):
        _, a_col, b_col, _ = self.run_contended(columnar=True)
        _, a_row, b_row, _ = self.run_contended(columnar=False)
        assert multiset(a_col.result) == multiset(a_row.result)
        assert multiset(b_col.result) == multiset(b_row.result)
        # The two batch drives account virtual time identically per session.
        assert a_col.summary.completed_at_ms == pytest.approx(
            a_row.summary.completed_at_ms
        )
        assert b_col.summary.completed_at_ms == pytest.approx(
            b_row.summary.completed_at_ms
        )


class TestPlanSessions:
    def make_plan(self, prefix: str, memory: int | None = None) -> QueryPlan:
        fragment = Fragment(
            fragment_id=f"{prefix}_f1",
            root=join_spec(prefix, memory=memory),
            result_name=f"{prefix}_answer",
            estimated_cardinality=None,
            estimate_reliable=True,
            covers=frozenset({"l", "r"}),
        )
        return QueryPlan(query_name=prefix, fragments=[fragment])

    def test_plan_session_completes_through_executor_steps(self):
        catalog = fresh_catalog(rows=60)
        server = QueryServer(catalog)
        session = server.submit_plan(self.make_plan("p"), "p")
        server.run()
        assert session.status == SessionStatus.COMPLETED
        assert session.outcome is not None and session.outcome.completed
        expected = reference_join(
            catalog.source("l").relation, catalog.source("r").relation, "id", "rid"
        )
        assert multiset(session.result) == multiset(expected)
        # The executor yielded at batch boundaries and source waits.
        assert session.summary.slices > 1
        assert session.summary.waits >= 1

    def test_plan_memory_negotiated_against_broker(self):
        catalog = fresh_catalog(rows=60)
        server = QueryServer(catalog, memory_capacity_bytes=200 * 1024)
        # Occupy most of the server first.
        MemoryPool(name="occupant", broker=server.broker).grant(
            "occupant_op", 150 * 1024
        )
        plan = self.make_plan("p", memory=500 * 1024)
        server.submit_plan(plan, "p")
        node = plan.fragments[0].root
        # The single-tenant 500 KB assumption was renegotiated down to what
        # the broker could actually provide (free + revocable headroom).
        assert node.memory_limit_bytes is not None
        assert node.memory_limit_bytes < 500 * 1024

    def test_two_plan_sessions_share_cache(self):
        catalog = fresh_catalog(rows=60)
        server = QueryServer(catalog)
        first = server.submit_plan(self.make_plan("p1"), "p1")
        server.run()
        second = server.submit_plan(self.make_plan("p2"), "p2")
        server.run()
        assert first.status == second.status == SessionStatus.COMPLETED
        assert multiset(first.result) == multiset(second.result)
        # Both scans of the second plan were served from the shared cache.
        assert second.summary.wait_ms == 0.0


class TestReviewRegressions:
    """Pinned fixes from the pre-merge review."""

    def test_small_request_under_pressure_is_not_inflated_to_server_floor(self):
        broker = MemoryBroker(128 * 1024, floor_bytes=64 * 1024)
        pool = MemoryPool(name="big", broker=broker)
        pool.grant("big_op", 128 * 1024)
        # Under pressure a 4 KB request must get (at most) 4 KB — the lease
        # floor is min(request, server floor), never the server floor alone.
        small = MemoryPool(name="small", broker=broker).grant("dedup", 4 * 1024)
        assert small.limit_bytes == 4 * 1024

    def test_resize_growth_never_revokes_the_requestor_itself(self):
        broker = MemoryBroker(128 * 1024, floor_bytes=16 * 1024)
        pool = MemoryPool(name="q", broker=broker)
        budget = pool.grant("join", 128 * 1024)
        spilled = []
        budget.on_revoke = lambda b: spilled.append(b.limit_bytes)
        # The only lease on a full broker asks for more: growth is simply
        # refused — no self-revocation, no spurious spill.
        budget.resize(256 * 1024)
        assert budget.limit_bytes == 128 * 1024
        assert spilled == []
        assert broker.stats.revocations == 0

    def test_replanning_plan_session_is_not_reported_completed(self):
        from repro.plan.physical import table_scan
        from repro.plan.rules import Compare, EventType, Rule, constant, event_value, replan

        catalog = fresh_catalog(rows=30)
        first = Fragment(
            fragment_id="f1",
            root=scan_spec("l", "f1"),
            result_name="res1",
        )
        first.rules = [
            Rule(
                "replan-f1",
                "f1",
                EventType.CLOSED,
                "f1",
                condition=Compare(event_value(), ">=", constant(0)),
                actions=[replan()],
            )
        ]
        second = Fragment(
            fragment_id="f2",
            root=table_scan("res1", operator_id="f2_scan"),
            result_name="final",
        )
        plan = QueryPlan(
            query_name="q", fragments=[first, second], dependencies={"f2": {"f1"}}
        )
        server = QueryServer(catalog)
        session = server.submit_plan(plan, "q")
        server.run()
        # The executor stopped for re-optimization: no answer was produced,
        # so the session must not count as completed.
        assert session.outcome is not None
        assert session.outcome.status.value == "needs_reoptimization"
        assert session.status == SessionStatus.FAILED
        assert "needs_reoptimization" in (session.error or "")
        assert server.stats().completed_sessions == 0


class TestSpeculativeParity:
    """``speculative_sources=False`` (the default) is bit-identical to the
    pre-speculative engine: same virtual times, slices, and accounting."""

    @staticmethod
    def _staggered_run(config):
        catalog = fresh_catalog(rows=80, max_concurrent=1)
        server = QueryServer(
            catalog, engine_config=config, memory_capacity_bytes=8 * 1024 * 1024
        )
        server.submit(join_spec("a", memory=256 * 1024), "a")
        server.submit(scan_spec("l", "b"), "b", arrival_ms=120.0)
        server.submit(join_spec("c", memory=256 * 1024), "c", arrival_ms=250.0)
        stats = server.run()
        return server, stats

    def test_flag_off_matches_default_exactly(self):
        default_server, default_stats = self._staggered_run(EngineConfig())
        explicit_server, explicit_stats = self._staggered_run(
            EngineConfig(speculative_sources=False, prefetch_budget_bytes=0)
        )
        assert default_server.prefetcher is None
        assert explicit_server.prefetcher is None
        for lhs, rhs in zip(default_stats.sessions, explicit_stats.sessions):
            assert lhs.session_id == rhs.session_id
            assert lhs.completed_at_ms == rhs.completed_at_ms
            assert lhs.wait_ms == rhs.wait_ms
            assert lhs.cpu_ms == rhs.cpu_ms
            assert lhs.slices == rhs.slices
        assert default_stats.scheduler_slices == explicit_stats.scheduler_slices
        assert default_stats.makespan_ms == explicit_stats.makespan_ms
        assert default_stats.source_queued_ms == explicit_stats.source_queued_ms
        assert default_stats.partial_extent_hits == 0
        assert explicit_stats.partial_extent_hits == 0

    def test_speculative_layer_preserves_result_multisets(self):
        _, base_stats = self._staggered_run(EngineConfig())
        base_server, _ = self._staggered_run(EngineConfig())
        spec_server, spec_stats = self._staggered_run(
            EngineConfig(
                speculative_sources=True, prefetch_budget_bytes=4 * 1024 * 1024
            )
        )
        assert spec_server.prefetcher is not None
        for name in ("a", "b", "c"):
            assert multiset(spec_server.sessions[name].result) == multiset(
                base_server.sessions[name].result
            )
        # The layer may only help, up to the cache-serve CPU epsilon: a
        # session following a prefetch stream sees rows at live-link pace
        # but pays CACHE_SERVE_CPU_MS per served row instead of fetching on
        # a connection of its own.
        slack = 80 * CACHE_SERVE_CPU_MS
        for lhs, rhs in zip(spec_stats.sessions, base_stats.sessions):
            assert lhs.completed_at_ms <= rhs.completed_at_ms + slack
