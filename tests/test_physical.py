"""Unit tests for repro.plan.physical."""

import pytest

from repro.errors import PlanError
from repro.plan.physical import (
    JoinImplementation,
    OperatorSpec,
    OperatorType,
    OverflowMethod,
    choose,
    collector,
    join,
    materialize,
    project_,
    select_,
    table_scan,
    union_,
    wrapper_scan,
)
from repro.query.conjunctive import SelectionPredicate


class TestOperatorSpec:
    def test_arity_enforced(self):
        scan = wrapper_scan("src")
        with pytest.raises(PlanError):
            OperatorSpec("bad", OperatorType.JOIN, children=[scan])
        with pytest.raises(PlanError):
            OperatorSpec("bad", OperatorType.WRAPPER_SCAN, children=[scan], params={"source": "s"})
        with pytest.raises(PlanError):
            OperatorSpec("bad", OperatorType.SELECT, children=[], params={"predicates": []})

    def test_empty_id_rejected(self):
        with pytest.raises(PlanError):
            OperatorSpec("", OperatorType.TABLE_SCAN, params={"relation": "r"})

    def test_walk_and_find(self):
        tree = join(
            wrapper_scan("a", operator_id="sa"),
            wrapper_scan("b", operator_id="sb"),
            ["a.x"],
            ["b.x"],
            operator_id="j1",
        )
        ids = tree.operator_ids()
        assert ids[0] == "j1"
        assert set(ids) == {"j1", "sa", "sb"}
        assert tree.find("sb").params["source"] == "b"
        with pytest.raises(PlanError):
            tree.find("nope")

    def test_leaf_sources(self):
        tree = join(
            wrapper_scan("a"), table_scan("cached"), ["a.x"], ["cached.x"]
        )
        assert tree.leaf_sources() == ["a"]

    def test_describe_contains_ids_and_estimates(self):
        tree = join(
            wrapper_scan("a"),
            wrapper_scan("b"),
            ["a.x"],
            ["b.x"],
            estimated_cardinality=123,
            operator_id="jX",
        )
        text = tree.describe()
        assert "jX" in text
        assert "est=123" in text
        assert "a.x=b.x" in text


class TestConstructors:
    def test_join_defaults(self):
        spec = join(wrapper_scan("a"), wrapper_scan("b"), ["a.x"], ["b.x"])
        assert spec.implementation == JoinImplementation.DOUBLE_PIPELINED.value
        assert spec.params["overflow_method"] == OverflowMethod.LEFT_FLUSH.value

    def test_join_key_length_mismatch(self):
        with pytest.raises(PlanError):
            join(wrapper_scan("a"), wrapper_scan("b"), ["a.x"], ["b.x", "b.y"])

    def test_select_and_project(self):
        scan = wrapper_scan("a")
        sel = select_(scan, [SelectionPredicate("a", "x", ">", 1)])
        proj = project_(sel, ["a.x"])
        assert sel.operator_type == OperatorType.SELECT
        assert proj.params["attributes"] == ["a.x"]

    def test_union_collector_choose(self):
        scans = [wrapper_scan("a"), wrapper_scan("b")]
        assert union_(scans).operator_type == OperatorType.UNION
        coll = collector(scans, policy_name="race")
        assert coll.params["policy"] == "race"
        assert choose(scans).operator_type == OperatorType.CHOOSE

    def test_materialize(self):
        spec = materialize(wrapper_scan("a"), "result1")
        assert spec.params["result_name"] == "result1"

    def test_generated_ids_unique(self):
        ids = {wrapper_scan("a").operator_id for _ in range(10)}
        assert len(ids) == 10
