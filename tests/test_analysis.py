"""The engine invariant analyzer: rules, pragmas, fixtures, and the real tree.

Three layers of coverage:

* the shipped source tree lints clean (this is the tier-1 gate the CI
  ``analysis`` job also enforces);
* every registered rule fires on exactly its seeded violation in
  ``tests/analysis_fixtures/`` and is silenced by the ``# repro:
  allow[rule-id]`` pragma on the suppressed twin;
* the ``python -m repro.analysis`` CLI reports findings and exit codes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, run_lint
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.linter import ModuleSource, lint_module
from repro.analysis.rules import rule_by_id

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SOURCE_TREE = Path(__file__).parents[1] / "src" / "repro"

#: rule id -> its seeded-violation fixture.  Every registered rule must have
#: one; the completeness test below enforces that.
FIXTURE_FOR_RULE = {
    "wall-clock": "wall_clock_violation.py",
    "memory-pairing": "memory_pairing_violation.py",
    "budget-mutation": "budget_mutation_violation.py",
    "hot-path-row": "hot_path_row_violation.py",
    "conftest-import": "conftest_import_violation.py",
    "bare-except": "bare_except_violation.py",
    "swallowed-except": "swallowed_except_violation.py",
}


def violation_line(fixture: Path) -> int:
    """Line number carrying the fixture's single ``VIOLATION`` marker."""
    lines = fixture.read_text(encoding="utf-8").splitlines()
    marked = [i for i, line in enumerate(lines, start=1) if "VIOLATION" in line]
    assert len(marked) == 1, f"{fixture.name} must carry exactly one VIOLATION marker"
    return marked[0]


class TestRealTree:
    def test_shipped_tree_lints_clean(self):
        report = run_lint([SOURCE_TREE])
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.clean, f"invariant violations in src/repro:\n{rendered}"
        assert report.files_checked > 50  # the whole package was actually walked

    def test_boundary_pragmas_are_exercised(self):
        # The hot-path modules box rows only at pragma-declared boundaries;
        # if this drops to zero the pragmas (or the rule) went dead.
        report = run_lint([SOURCE_TREE])
        assert report.suppressed >= 10


class TestRuleFixtures:
    def test_every_rule_has_a_fixture(self):
        assert {rule.rule_id for rule in ALL_RULES} == set(FIXTURE_FOR_RULE)

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_FOR_RULE))
    def test_rule_fires_exactly_on_seeded_violation(self, rule_id):
        fixture = FIXTURES / FIXTURE_FOR_RULE[rule_id]
        report = run_lint([fixture], rules=(rule_by_id(rule_id),))
        assert len(report.findings) == 1, [f.render() for f in report.findings]
        finding = report.findings[0]
        assert finding.rule_id == rule_id
        assert finding.line == violation_line(fixture)
        assert report.suppressed == 1  # the pragma'd twin was seen and silenced

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_FOR_RULE))
    def test_no_cross_talk_between_rules(self, rule_id):
        # Running *all* rules over a fixture reports only that fixture's rule:
        # each fixture seeds exactly one kind of violation.
        fixture = FIXTURES / FIXTURE_FOR_RULE[rule_id]
        report = run_lint([fixture])
        assert {f.rule_id for f in report.findings} == {rule_id}

    def test_finding_render_format(self):
        fixture = FIXTURES / FIXTURE_FOR_RULE["wall-clock"]
        report = run_lint([fixture])
        line = violation_line(fixture)
        assert report.findings[0].render().startswith(f"{fixture}:{line} wall-clock ")


class TestPragmas:
    def test_pragma_on_previous_line(self):
        module = ModuleSource(
            "inline.py",
            "import time\n"
            "# repro: allow[wall-clock] next line is sanctioned\n"
            "t = time.time()\n",
        )
        findings, suppressed = lint_module(module, [rule_by_id("wall-clock")])
        assert not findings and suppressed == 1

    def test_wildcard_pragma(self):
        module = ModuleSource(
            "inline.py", "import time\nt = time.time()  # repro: allow[*]\n"
        )
        findings, suppressed = lint_module(module, [rule_by_id("wall-clock")])
        assert not findings and suppressed == 1

    def test_pragma_for_other_rule_does_not_suppress(self):
        module = ModuleSource(
            "inline.py", "import time\nt = time.time()  # repro: allow[bare-except]\n"
        )
        findings, _ = lint_module(module, [rule_by_id("wall-clock")])
        assert len(findings) == 1

    def test_module_role_widens_rule_scope(self):
        body = "def f(Row, s, v):\n    return Row(s, v)\n"
        neutral = ModuleSource("somewhere.py", body)
        findings, _ = lint_module(neutral, [rule_by_id("hot-path-row")])
        assert not findings  # not a hot-path module, rule does not apply
        hot = ModuleSource("somewhere.py", "# repro: module-role[hot-path]\n" + body)
        findings, _ = lint_module(hot, [rule_by_id("hot-path-row")])
        assert len(findings) == 1


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert analysis_main([str(SOURCE_TREE), "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one_and_print(self, capsys):
        fixture = FIXTURES / FIXTURE_FOR_RULE["bare-except"]
        assert analysis_main([str(fixture)]) == 1
        out = capsys.readouterr().out
        assert f"{fixture}:" in out and "bare-except" in out

    def test_select_restricts_rules(self, capsys):
        fixture = FIXTURES / FIXTURE_FOR_RULE["bare-except"]
        assert analysis_main([str(fixture), "--select", "wall-clock", "--quiet"]) == 0
        assert analysis_main([str(fixture), "--select", "bare-except", "--quiet"]) == 1
        capsys.readouterr()

    def test_unknown_rule_is_usage_error(self, capsys):
        assert analysis_main([str(FIXTURES), "--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert analysis_main(["definitely/not/here.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert f"{rule.rule_id}:" in out
