"""The engine invariant analyzer: rules, pragmas, fixtures, and the real tree.

Three layers of coverage:

* the shipped source tree lints clean (this is the tier-1 gate the CI
  ``analysis`` job also enforces);
* every registered rule fires on exactly its seeded violation in
  ``tests/analysis_fixtures/`` and is silenced by the ``# repro:
  allow[rule-id]`` pragma on the suppressed twin — including the three
  flow-aware rules whose fixtures seed *interprocedural* violations
  (taint through a helper, a leak only on the exception edge, an effect
  two calls below a probe);
* the ``python -m repro.analysis`` CLI reports findings, formats, and
  exit codes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, run_lint
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.linter import ModuleSource, lint_module
from repro.analysis.rules import rule_by_id

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SOURCE_TREE = Path(__file__).parents[1] / "src" / "repro"

#: rule id -> its seeded-violation fixture.  Every registered rule must have
#: one; the completeness test below enforces that.
FIXTURE_FOR_RULE = {
    "clock-taint": "clock_taint_violation.py",
    "lease-lifecycle": "lease_lifecycle_violation.py",
    "step-effect": "step_effect_violation.py",
    "budget-mutation": "budget_mutation_violation.py",
    "hot-path-row": "hot_path_row_violation.py",
    "conftest-import": "conftest_import_violation.py",
    "bare-except": "bare_except_violation.py",
    "swallowed-except": "swallowed_except_violation.py",
    "wire-safe": "wire_safe_violation.py",
}


def violation_line(fixture: Path) -> int:
    """Line number carrying the fixture's single ``VIOLATION`` marker."""
    lines = fixture.read_text(encoding="utf-8").splitlines()
    marked = [i for i, line in enumerate(lines, start=1) if "VIOLATION" in line]
    assert len(marked) == 1, f"{fixture.name} must carry exactly one VIOLATION marker"
    return marked[0]


class TestRealTree:
    def test_shipped_tree_lints_clean(self):
        report = run_lint([SOURCE_TREE])
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.clean, f"invariant violations in src/repro:\n{rendered}"
        assert report.files_checked > 50  # the whole package was actually walked

    def test_boundary_pragmas_are_exercised(self):
        # The hot-path modules box rows only at pragma-declared boundaries;
        # if this drops to zero the pragmas (or the rules) went dead.
        report = run_lint([SOURCE_TREE])
        assert report.suppressed >= 10


class TestRuleFixtures:
    def test_every_rule_has_a_fixture(self):
        assert {rule.rule_id for rule in ALL_RULES} == set(FIXTURE_FOR_RULE)

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_FOR_RULE))
    def test_rule_fires_exactly_on_seeded_violation(self, rule_id):
        fixture = FIXTURES / FIXTURE_FOR_RULE[rule_id]
        report = run_lint([fixture], rules=(rule_by_id(rule_id),))
        assert len(report.findings) == 1, [f.render() for f in report.findings]
        finding = report.findings[0]
        assert finding.rule_id == rule_id
        assert finding.line == violation_line(fixture)
        assert report.suppressed == 1  # the pragma'd twin was seen and silenced

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_FOR_RULE))
    def test_no_cross_talk_between_rules(self, rule_id):
        # Running *all* rules over a fixture reports only that fixture's rule:
        # each fixture seeds exactly one kind of violation.
        fixture = FIXTURES / FIXTURE_FOR_RULE[rule_id]
        report = run_lint([fixture])
        assert {f.rule_id for f in report.findings} == {rule_id}

    def test_finding_render_format(self):
        fixture = FIXTURES / FIXTURE_FOR_RULE["bare-except"]
        report = run_lint([fixture])
        line = violation_line(fixture)
        assert report.findings[0].render().startswith(f"{fixture}:{line} bare-except ")


class TestInterprocedural:
    """The fixtures seed flow-aware cases; assert the *reasoning* surfaced."""

    def test_clock_taint_reports_sink_with_source_provenance(self):
        # The source (time.time() in a helper) and the sink (attribute store
        # in a caller) are in different functions; the finding lands on the
        # sink and names where the value came from.
        fixture = FIXTURES / FIXTURE_FOR_RULE["clock-taint"]
        report = run_lint([fixture], rules=(rule_by_id("clock-taint"),))
        (finding,) = report.findings
        assert "attribute store to .started_at_ms" in finding.message
        assert "time.time at" in finding.message  # provenance, not just "tainted"

    def test_lease_leak_is_the_exception_path(self):
        # The normal path releases; only the except edge out of load() leaks.
        fixture = FIXTURES / FIXTURE_FOR_RULE["lease-lifecycle"]
        report = run_lint([fixture], rules=(rule_by_id("lease-lifecycle"),))
        (finding,) = report.findings
        assert "except-path" in finding.message
        assert "exception at line 14" in finding.message

    def test_step_effect_reports_call_chain(self):
        # The clock mutation sits two calls below peek_arrival; the finding
        # reconstructs the chain from the probe to the effect.
        fixture = FIXTURES / FIXTURE_FOR_RULE["step-effect"]
        report = run_lint([fixture], rules=(rule_by_id("step-effect"),))
        (finding,) = report.findings
        assert "peek_arrival -> _peek_helper -> _advance_and_read" in finding.message
        assert "consume_cpu" in finding.message


class TestPrefetchDecisionProbe:
    """``prefetch_decision`` is a step-effect probe root like ``peek_arrival``."""

    FIXTURE = FIXTURES / "prefetch_decision_violation.py"

    def test_decision_hook_effect_is_reported_with_chain(self):
        # The source open sits two calls below prefetch_decision; the
        # bottom-up summaries reach it and the pragma'd twin is silenced.
        report = run_lint([self.FIXTURE], rules=(rule_by_id("step-effect"),))
        (finding,) = report.findings
        assert finding.line == violation_line(self.FIXTURE)
        assert "prefetch_decision -> _best_candidate -> _warm_and_score" in finding.message
        assert report.suppressed == 1

    def test_fixture_seeds_only_step_effect(self):
        report = run_lint([self.FIXTURE])
        assert {f.rule_id for f in report.findings} == {"step-effect"}

    def test_shipped_prefetcher_decision_is_effect_free(self):
        # The real hook (and everything it reaches: cache peeks, free-slot
        # counts, catalog lookups) must stay clean under the rule.
        prefetch = SOURCE_TREE / "server" / "prefetch.py"
        report = run_lint([SOURCE_TREE], rules=(rule_by_id("step-effect"),))
        assert not [f for f in report.findings if f.path == str(prefetch)]


class TestLeaseLifecycleInline:
    """Path-sensitivity corners exercised on inline modules."""

    def test_try_finally_release_is_clean(self):
        module = ModuleSource(
            "inline.py",
            "class Build:\n"
            "    def build(self, pool, source):\n"
            "        handle = pool.grant('op', 64)\n"
            "        try:\n"
            "            self.rows = source.load()\n"
            "        finally:\n"
            "            handle.close()\n",
        )
        findings, _ = lint_module(module, [rule_by_id("lease-lifecycle")])
        assert not findings

    def test_escaped_handle_is_not_a_leak(self):
        # Storing the handle on self hands ownership to close(); the local
        # path check must not demand a same-scope release.
        module = ModuleSource(
            "inline.py",
            "class Build:\n"
            "    def build(self, pool):\n"
            "        self.handle = 1\n"
            "        handle = pool.grant('op', 64)\n"
            "        self.handle = handle\n"
            "    def close(self):\n"
            "        self.handle.close()\n",
        )
        findings, _ = lint_module(module, [rule_by_id("lease-lifecycle")])
        assert not findings

    def test_normal_path_leak_is_reported(self):
        # The class *does* release somewhere (presence check passes); the
        # local handle still falls off the end of build() unreleased.
        module = ModuleSource(
            "inline.py",
            "class Build:\n"
            "    def build(self, pool):\n"
            "        handle = pool.grant('op', 64)\n"
            "        self.size = 64\n"
            "    def teardown(self, pool):\n"
            "        pool.revoke('op')\n",
        )
        findings, _ = lint_module(module, [rule_by_id("lease-lifecycle")])
        assert len(findings) == 1 and findings[0].line == 3

    def test_class_without_any_release_is_reported(self):
        module = ModuleSource(
            "inline.py",
            "class Build:\n"
            "    def build(self, pool):\n"
            "        self.handle = pool.grant('op', 64)\n",
        )
        findings, _ = lint_module(module, [rule_by_id("lease-lifecycle")])
        assert len(findings) == 1
        assert "never revokes" in findings[0].message


class TestLaneLeaseTeardown:
    """Check 2b: per-lane budget handles across exchange lane teardown."""

    FIXTURE = FIXTURES / "lane_lease_violation.py"

    def test_skipped_sibling_return_is_reported_once(self):
        # Two sequential revokes, no finally: lane0's revoke raising leaks
        # lane1's grant.  The pragma'd twin is silenced; the finally-protected
        # shape and the append-escaping grant loop in the same file are clean.
        report = run_lint([self.FIXTURE], rules=(rule_by_id("lease-lifecycle"),))
        (finding,) = report.findings
        assert finding.line == violation_line(self.FIXTURE)
        assert "per-lane teardown" in finding.message
        assert report.suppressed == 1

    def test_fixture_seeds_only_lease_lifecycle(self):
        report = run_lint([self.FIXTURE])
        assert {f.rule_id for f in report.findings} == {"lease-lifecycle"}

    def test_loop_teardown_is_flagged(self):
        # One revoke site, but a loop makes later iterations pending: a raise
        # mid-loop leaks every lane not yet revoked.
        module = ModuleSource(
            "inline.py",
            "class T:\n"
            "    def close(self, pool, lane_names):\n"
            "        for name in lane_names:\n"
            "            pool.revoke(name)\n",
        )
        findings, _ = lint_module(module, [rule_by_id("lease-lifecycle")])
        assert len(findings) == 1 and findings[0].line == 4

    def test_per_lane_grant_loop_with_append_escape_is_clean(self):
        # Collecting handles into a self-owned container transfers ownership;
        # the setup loop must not read as N leaks.
        module = ModuleSource(
            "inline.py",
            "class T:\n"
            "    def setup(self, pool, lanes):\n"
            "        self.budgets = []\n"
            "        for index in range(lanes):\n"
            "            budget = pool.grant(f'join.lane{index}', 64)\n"
            "            self.budgets.append(budget)\n"
            "    def close(self, pool):\n"
            "        try:\n"
            "            pool.revoke('join.lane0')\n"
            "        finally:\n"
            "            pool.revoke('join.lane1')\n",
        )
        findings, _ = lint_module(module, [rule_by_id("lease-lifecycle")])
        assert not findings


class TestPragmas:
    def test_pragma_on_previous_line(self):
        module = ModuleSource(
            "inline.py",
            "class C:\n"
            "    def f(self, pool):\n"
            "        # repro: allow[lease-lifecycle] next line is sanctioned\n"
            "        handle = pool.grant('op', 64)\n"
            "    def g(self, pool):\n"
            "        pool.revoke('op')\n",
        )
        findings, suppressed = lint_module(module, [rule_by_id("lease-lifecycle")])
        assert not findings and suppressed == 1

    def test_wildcard_pragma(self):
        module = ModuleSource(
            "inline.py",
            "class C:\n"
            "    def f(self, pool):\n"
            "        handle = pool.grant('op', 64)  # repro: allow[*]\n"
            "    def g(self, pool):\n"
            "        pool.revoke('op')\n",
        )
        findings, suppressed = lint_module(module, [rule_by_id("lease-lifecycle")])
        assert not findings and suppressed == 1

    def test_pragma_for_other_rule_does_not_suppress(self):
        module = ModuleSource(
            "inline.py",
            "class C:\n"
            "    def f(self, pool):\n"
            "        handle = pool.grant('op', 64)  # repro: allow[bare-except]\n"
            "    def g(self, pool):\n"
            "        pool.revoke('op')\n",
        )
        findings, _ = lint_module(module, [rule_by_id("lease-lifecycle")])
        assert len(findings) == 1

    def test_module_role_widens_rule_scope(self):
        body = "def f(Row, s, v):\n    return Row(s, v)\n"
        neutral = ModuleSource("somewhere.py", body)
        findings, _ = lint_module(neutral, [rule_by_id("hot-path-row")])
        assert not findings  # not a hot-path module, rule does not apply
        hot = ModuleSource("somewhere.py", "# repro: module-role[hot-path]\n" + body)
        findings, _ = lint_module(hot, [rule_by_id("hot-path-row")])
        assert len(findings) == 1

    def test_hot_path_modules_opt_in_via_role(self):
        # The storage hot paths carry the module-role marker; none of the
        # old path-based suffix list remains.
        for name in ("columns.py", "batch.py", "hash_table.py", "disk.py"):
            text = (SOURCE_TREE / "storage" / name).read_text(encoding="utf-8")
            assert "# repro: module-role[hot-path]" in text, name


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert analysis_main([str(SOURCE_TREE), "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one_and_print(self, capsys):
        fixture = FIXTURES / FIXTURE_FOR_RULE["bare-except"]
        assert analysis_main([str(fixture)]) == 1
        out = capsys.readouterr().out
        assert f"{fixture}:" in out and "bare-except" in out

    def test_select_restricts_rules(self, capsys):
        fixture = FIXTURES / FIXTURE_FOR_RULE["bare-except"]
        assert analysis_main([str(fixture), "--select", "clock-taint", "--quiet"]) == 0
        assert analysis_main([str(fixture), "--select", "bare-except", "--quiet"]) == 1
        capsys.readouterr()

    def test_ignore_relaxes_rules(self, capsys):
        fixture = FIXTURES / FIXTURE_FOR_RULE["clock-taint"]
        assert analysis_main([str(fixture), "--quiet"]) == 1
        assert analysis_main([str(fixture), "--ignore", "clock-taint", "--quiet"]) == 0
        capsys.readouterr()

    def test_ignore_composes_with_select(self, capsys):
        fixture = FIXTURES / FIXTURE_FOR_RULE["clock-taint"]
        code = analysis_main(
            [str(fixture), "--select", "clock-taint", "--ignore", "clock-taint"]
        )
        assert code == 2
        assert "removed every rule" in capsys.readouterr().err

    def test_json_format(self, capsys):
        fixture = FIXTURES / FIXTURE_FOR_RULE["clock-taint"]
        assert analysis_main([str(fixture), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["findings"] == 1
        assert document["summary"]["clean"] is False
        (entry,) = document["findings"]
        assert entry["rule"] == "clock-taint"
        assert entry["line"] == violation_line(fixture)

    def test_github_format(self, capsys):
        fixture = FIXTURES / FIXTURE_FOR_RULE["step-effect"]
        assert analysis_main([str(fixture), "--format", "github", "--quiet"]) == 1
        out = capsys.readouterr().out
        line = violation_line(fixture)
        assert out.startswith(f"::error file={fixture},line={line},title=step-effect::")

    def test_output_writes_json_report(self, tmp_path, capsys):
        fixture = FIXTURES / FIXTURE_FOR_RULE["lease-lifecycle"]
        target = tmp_path / "report.json"
        assert analysis_main([str(fixture), "--output", str(target), "--quiet"]) == 1
        capsys.readouterr()
        document = json.loads(target.read_text(encoding="utf-8"))
        assert document["summary"]["findings"] == 1
        assert document["findings"][0]["rule"] == "lease-lifecycle"

    def test_unknown_rule_is_usage_error(self, capsys):
        assert analysis_main([str(FIXTURES), "--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert analysis_main(["definitely/not/here.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert f"{rule.rule_id}:" in out
