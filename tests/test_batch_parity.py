"""Batch/tuple parity: every operator yields the same rows in every drive.

Property-style tests asserting that each operator produces an identical
multiset of rows across the three drive modes — columnar batches
(``next_batch`` with struct-of-arrays :class:`Batch` objects, the default),
row-backed batches (``columnar_batches=False``, PR 1's drive), and
tuple-at-a-time (repeated ``next``) — across several batch sizes and both the
tiny joinable catalog and the TPC-D catalog, including the memory-overflow
paths of both hash joins, the dependent and nested-loops joins (duplicate-key
and empty-probe paths), and the rule-driven collector-switch path.

The two batch drives must also agree on the virtual clock *exactly* (they
differ only in data representation); the tuple drive is held to a tolerance,
since batching coarsens the CPU/wait interleave by a few percent.
"""

from __future__ import annotations

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.core.policies import apply_policy, race_policy
from repro.engine.context import EngineConfig, ExecutionContext
from repro.engine.executor import ExecutionStatus, QueryExecutor
from repro.engine.operators.collector import DynamicCollector
from repro.engine.operators.joins.dependent import DependentJoin
from repro.engine.operators.joins.double_pipelined import DoublePipelinedJoin
from repro.engine.operators.joins.hybrid_hash import HybridHashJoin
from repro.engine.operators.joins.nested_loops import NestedLoopsJoin
from repro.engine.operators.materialize import Materialize
from repro.engine.operators.project import Project
from repro.engine.operators.scan import TableScan, WrapperScan
from repro.engine.operators.select import Select
from repro.engine.operators.union import Union
from repro.network.profiles import lan, wide_area
from repro.network.source import DataSource, make_mirror
from repro.plan.fragments import Fragment, QueryPlan
from repro.plan.physical import OverflowMethod, collector, join, wrapper_scan
from repro.query.conjunctive import SelectionPredicate

from helpers import make_relation, multiset

BATCH_SIZES = [1, 3, 7, 64, 512]

#: Relative tolerance for tuple-drive vs batch-drive completion times.
TUPLE_TIME_TOLERANCE = 0.10


def drain_tuple(operator):
    operator.open()
    rows = list(operator.iterate())
    operator.close()
    return rows


def drain_batch(operator, batch_size):
    operator.open()
    rows = []
    while True:
        batch = operator.next_batch(batch_size)
        if not batch:
            break
        assert len(batch) <= batch_size
        rows.extend(batch)
    operator.close()
    return rows


def assert_parity(build_tree, catalog, batch_size):
    """Drive three identical trees (fresh contexts per mode) and compare.

    Asserts identical row multisets for the tuple, row-batch, and columnar
    drives, identical clocks for the two batch drives, and clocks within
    :data:`TUPLE_TIME_TOLERANCE` of the tuple drive.
    """
    tuple_context = ExecutionContext(catalog)
    reference = drain_tuple(build_tree(tuple_context))

    rows_context = ExecutionContext(catalog, config=EngineConfig(columnar_batches=False))
    row_batched = drain_batch(build_tree(rows_context), batch_size)

    columnar_context = ExecutionContext(catalog)
    assert columnar_context.columnar
    columnar = drain_batch(build_tree(columnar_context), batch_size)

    assert multiset(row_batched) == multiset(reference)
    assert multiset(columnar) == multiset(reference)
    assert columnar_context.clock.now == pytest.approx(
        rows_context.clock.now, rel=1e-9
    ), "columnar drive changed the virtual-time accounting"
    if tuple_context.clock.now > 0:
        assert columnar_context.clock.now == pytest.approx(
            tuple_context.clock.now, rel=TUPLE_TIME_TOLERANCE
        )


# -- operator trees over the tiny joinable catalog ----------------------------------------


def tree_wrapper_scan(context):
    return WrapperScan("scan_ord", context, "ord")


def tree_table_scan(context):
    stored = make_relation(
        "stored", ["k:int", "v:str"], [(i, f"v{i}") for i in range(100)]
    )
    context.local_store.materialize(stored)
    return TableScan("tscan", context, "stored")


def tree_select(context):
    scan = WrapperScan("scan_item", context, "item")
    return Select(
        "sel", context, scan, [SelectionPredicate("item", "i_qty", ">=", 2)]
    )


def tree_select_multi_predicate(context):
    # Two predicates with very different selectivities: the adaptive batch
    # evaluator may reorder them mid-stream, which must never change results.
    scan = WrapperScan("scan_item", context, "item")
    return Select(
        "sel_multi",
        context,
        scan,
        [
            SelectionPredicate("item", "i_qty", ">=", 1),
            SelectionPredicate("item", "i_order", "<", 10),
        ],
    )


def tree_select_unsatisfiable(context):
    scan = WrapperScan("scan_item", context, "item")
    return Select(
        "sel", context, scan, [SelectionPredicate("item", "no_such_attr", "=", 1)]
    )


def tree_project(context):
    scan = WrapperScan("scan_ord", context, "ord")
    return Project("proj", context, scan, ["ord.o_cust"])


def tree_union(context):
    return Union(
        "uni",
        context,
        [
            WrapperScan("scan_a", context, "ord"),
            WrapperScan("scan_b", context, "ord2"),
        ],
    )


def tree_hybrid(context):
    return HybridHashJoin(
        "hh",
        context,
        WrapperScan("scan_ord", context, "ord"),
        WrapperScan("scan_item", context, "item"),
        ["ord.o_id"],
        ["item.i_order"],
    )


def tree_nested_loops(context):
    return NestedLoopsJoin(
        "nl",
        context,
        WrapperScan("scan_ord", context, "ord"),
        WrapperScan("scan_item", context, "item"),
        ["ord.o_id"],
        ["item.i_order"],
    )


def tree_nested_loops_dup_keys(context):
    # Outer side with duplicate keys and keys missing from the inner: the
    # items' i_order values repeat (i % 180 over 300 rows) and values 150-179
    # have no matching order — both the multi-match and no-match paths.
    return NestedLoopsJoin(
        "nl2",
        context,
        WrapperScan("scan_item", context, "item"),
        WrapperScan("scan_ord", context, "ord"),
        ["item.i_order"],
        ["ord.o_id"],
    )


def tree_dependent(context):
    # Unique bind keys: one probe per left tuple, all keys match.
    return DependentJoin(
        "dj",
        context,
        WrapperScan("scan_ord", context, "ord"),
        "item",
        ["ord.o_id"],
        ["item.i_order"],
    )


def tree_dependent_dup_keys(context):
    # Duplicate bind keys (memoized probes) and empty probes (i_order 150-179
    # have no matching o_id).
    return DependentJoin(
        "dj2",
        context,
        WrapperScan("scan_item", context, "item"),
        "ord",
        ["item.i_order"],
        ["ord.o_id"],
    )


def tree_dependent_no_memo(context):
    # Same shape with the probe memo disabled: every duplicate key re-probes.
    return DependentJoin(
        "dj3",
        context,
        WrapperScan("scan_item", context, "item"),
        "ord",
        ["item.i_order"],
        ["ord.o_id"],
        probe_cache=False,
    )


def tree_materialize(context):
    scan = WrapperScan("scan_ord", context, "ord")
    return Materialize("mat", context, scan, result_name="mat_out")


def tree_dpj(context):
    return DoublePipelinedJoin(
        "dpj",
        context,
        WrapperScan("scan_ord", context, "ord"),
        WrapperScan("scan_item", context, "item"),
        ["ord.o_id"],
        ["item.i_order"],
    )


JOINABLE_TREES = {
    "wrapper_scan": tree_wrapper_scan,
    "table_scan": tree_table_scan,
    "select": tree_select,
    "select_multi_predicate": tree_select_multi_predicate,
    "select_unsatisfiable": tree_select_unsatisfiable,
    "project": tree_project,
    "union": tree_union,
    "hybrid_hash": tree_hybrid,
    "nested_loops": tree_nested_loops,
    "nested_loops_dup_keys": tree_nested_loops_dup_keys,
    "dependent": tree_dependent,
    "dependent_dup_keys": tree_dependent_dup_keys,
    "dependent_no_memo": tree_dependent_no_memo,
    "materialize": tree_materialize,
    "double_pipelined": tree_dpj,
}


@pytest.fixture
def parity_catalog():
    """Joinable catalog with enough rows to fill several batches."""
    orders = make_relation(
        "ord", ["o_id:int", "o_cust:str"], [(i, f"cust{i % 17}") for i in range(150)]
    )
    orders2 = make_relation(
        "ord", ["o_id:int", "o_cust:str"], [(i + 500, f"cust{i % 5}") for i in range(40)]
    )
    items = make_relation(
        "item",
        ["i_order:int", "i_sku:str", "i_qty:int"],
        [(i % 180, f"sku{i}", i % 7) for i in range(300)],
    )
    catalog = DataSourceCatalog()
    catalog.register_source(DataSource("ord", orders, lan()))
    catalog.register_source(DataSource("ord2", orders2, lan()))
    catalog.register_source(DataSource("item", items, lan()))
    return catalog


@pytest.mark.parametrize("tree_name", sorted(JOINABLE_TREES))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_operator_parity_on_joinable_catalog(parity_catalog, tree_name, batch_size):
    assert_parity(JOINABLE_TREES[tree_name], parity_catalog, batch_size)


# -- overflow paths (tiny memory budgets force bucket spills) -------------------------------


def assert_budget_invariant(join_operator) -> None:
    """budget.used must equal the sum of the operator's tables' resident bytes."""
    tables = (
        join_operator._tables
        if hasattr(join_operator, "_tables") and join_operator._tables
        else [join_operator._inner_table]
    )
    resident = sum(table.resident_bytes for table in tables if table is not None)
    assert join_operator.budget.used_bytes == resident, (
        f"accounting drift: budget says {join_operator.budget.used_bytes}B, "
        f"tables hold {resident}B"
    )


def watch_overflow_resolutions(monkeypatch, check):
    """Assert ``check`` after every DPJ overflow resolution (mid-batch flushes)."""
    original = DoublePipelinedJoin._resolve_overflow

    def checked(self):
        original(self)
        check(self)

    monkeypatch.setattr(DoublePipelinedJoin, "_resolve_overflow", checked)


@pytest.mark.parametrize("batch_size", [1, 7, 64])
@pytest.mark.parametrize(
    "method", [OverflowMethod.LEFT_FLUSH, OverflowMethod.SYMMETRIC_FLUSH]
)
def test_dpj_overflow_parity(tpcd_catalog, tiny_tpcd, method, batch_size, monkeypatch):
    def build(context):
        return DoublePipelinedJoin(
            "dpj",
            context,
            WrapperScan("scan_ps", context, "partsupp"),
            WrapperScan("scan_p", context, "part"),
            ["partsupp.ps_partkey"],
            ["part.p_partkey"],
            memory_limit_bytes=len(tiny_tpcd["partsupp"]) * 20,
            bucket_count=8,
            overflow_method=method,
        )

    watch_overflow_resolutions(monkeypatch, assert_budget_invariant)
    reference = drain_tuple(build(ExecutionContext(tpcd_catalog)))

    context = ExecutionContext(tpcd_catalog)
    joined = build(context)
    rows = drain_batch(joined, batch_size)
    assert joined.overflow_count > 0, "memory budget was meant to force spills"
    assert multiset(rows) == multiset(reference)
    assert_budget_invariant(joined)


@pytest.mark.parametrize("batch_size", [1, 7, 64])
def test_hybrid_overflow_parity(tpcd_catalog, tiny_tpcd, batch_size):
    def build(context):
        return HybridHashJoin(
            "hh",
            context,
            WrapperScan("scan_ps", context, "partsupp"),
            WrapperScan("scan_p", context, "part"),
            ["partsupp.ps_partkey"],
            ["part.p_partkey"],
            memory_limit_bytes=len(tiny_tpcd["part"]) * 20,
            bucket_count=8,
        )

    reference = drain_tuple(build(ExecutionContext(tpcd_catalog)))

    context = ExecutionContext(tpcd_catalog)
    joined = build(context)
    rows = drain_batch(joined, batch_size)
    assert context.stats.operator("hh").overflow_events > 0
    assert multiset(rows) == multiset(reference)
    assert_budget_invariant(joined)


# -- spill parity: columnar vs row-batch drives under memory pressure ----------------------
#
# The hash tables, memory accounting, and spill files are columnar in every
# drive; the two batch drives differ only in how tuples reach them, so their
# result multisets, overflow events, spilled-tuple counts, and virtual clocks
# must all agree *exactly* (and match the tuple drive's result multiset).
# Column *encoding* (dictionary strings + RLE arrivals) is orthogonal to the
# drive — it also lives in the storage layer — so the same parity must hold
# with encoding on and off; both are parametrized below.


def drain_batch_with_context(build_tree, catalog, batch_size, columnar, encoded=True):
    config = EngineConfig(columnar_batches=columnar, encoded_columns=encoded)
    context = ExecutionContext(catalog, config=config)
    operator = build_tree(context)
    rows = drain_batch(operator, batch_size)
    return rows, context, operator


@pytest.mark.parametrize("encoded", [True, False])
@pytest.mark.parametrize("batch_size", [7, 64])
@pytest.mark.parametrize(
    "method", [OverflowMethod.LEFT_FLUSH, OverflowMethod.SYMMETRIC_FLUSH]
)
def test_dpj_spill_drive_parity(
    tpcd_catalog, tiny_tpcd, method, batch_size, encoded, monkeypatch
):
    def build(context):
        return DoublePipelinedJoin(
            "dpj",
            context,
            WrapperScan("scan_ps", context, "partsupp"),
            WrapperScan("scan_p", context, "part"),
            ["partsupp.ps_partkey"],
            ["part.p_partkey"],
            memory_limit_bytes=len(tiny_tpcd["partsupp"]) * 20,
            bucket_count=8,
            overflow_method=method,
        )

    watch_overflow_resolutions(monkeypatch, assert_budget_invariant)
    tuple_config = EngineConfig(encoded_columns=encoded)
    reference = drain_tuple(build(ExecutionContext(tpcd_catalog, config=tuple_config)))

    row_rows, row_ctx, row_join = drain_batch_with_context(
        build, tpcd_catalog, batch_size, columnar=False, encoded=encoded
    )
    col_rows, col_ctx, col_join = drain_batch_with_context(
        build, tpcd_catalog, batch_size, columnar=True, encoded=encoded
    )
    assert multiset(row_rows) == multiset(reference)
    assert multiset(col_rows) == multiset(reference)
    assert row_join.overflow_count == col_join.overflow_count > 0
    assert row_ctx.disk.stats.tuples_written == col_ctx.disk.stats.tuples_written
    assert row_ctx.disk.stats.bytes_written == col_ctx.disk.stats.bytes_written
    assert row_ctx.disk.stats.tuples_read == col_ctx.disk.stats.tuples_read
    assert col_ctx.clock.now == pytest.approx(row_ctx.clock.now, rel=1e-9), (
        "columnar spill changed the virtual-time accounting"
    )
    assert_budget_invariant(row_join)
    assert_budget_invariant(col_join)


def test_encoding_reduces_spilled_bytes_on_string_keys(tpcd_catalog, tiny_tpcd):
    """Encoded spill of a string-heavy build writes measurably fewer bytes."""
    def build(context):
        return DoublePipelinedJoin(
            "dpj",
            context,
            WrapperScan("scan_ps", context, "partsupp"),
            WrapperScan("scan_p", context, "part"),
            ["partsupp.ps_partkey"],
            ["part.p_partkey"],
            memory_limit_bytes=len(tiny_tpcd["partsupp"]) * 20,
            bucket_count=8,
        )

    _, plain_ctx, _ = drain_batch_with_context(
        build, tpcd_catalog, 64, columnar=True, encoded=False
    )
    _, enc_ctx, _ = drain_batch_with_context(
        build, tpcd_catalog, 64, columnar=True, encoded=True
    )
    assert plain_ctx.disk.stats.tuples_written > 0
    # Same allotment: the encoded run keeps more rows resident (fewer
    # spilled tuples) and each spilled tuple moves fewer bytes (part
    # carries three string attributes); the ≥1.5x ratio bar on a fully
    # string-keyed workload lives in benchmarks/bench_encoding_pipeline.py.
    assert enc_ctx.disk.stats.tuples_written < plain_ctx.disk.stats.tuples_written
    assert enc_ctx.disk.stats.bytes_written < plain_ctx.disk.stats.bytes_written
    plain_per_tuple = (
        plain_ctx.disk.stats.bytes_written / plain_ctx.disk.stats.tuples_written
    )
    enc_per_tuple = (
        enc_ctx.disk.stats.bytes_written / enc_ctx.disk.stats.tuples_written
    )
    assert enc_per_tuple < plain_per_tuple


@pytest.mark.parametrize("encoded", [True, False])
@pytest.mark.parametrize("batch_size", [7, 64])
def test_hybrid_spill_drive_parity(tpcd_catalog, tiny_tpcd, batch_size, encoded):
    def build(context):
        return HybridHashJoin(
            "hh",
            context,
            WrapperScan("scan_ps", context, "partsupp"),
            WrapperScan("scan_p", context, "part"),
            ["partsupp.ps_partkey"],
            ["part.p_partkey"],
            memory_limit_bytes=len(tiny_tpcd["part"]) * 20,
            bucket_count=8,
        )

    tuple_config = EngineConfig(encoded_columns=encoded)
    reference = drain_tuple(build(ExecutionContext(tpcd_catalog, config=tuple_config)))

    row_rows, row_ctx, row_join = drain_batch_with_context(
        build, tpcd_catalog, batch_size, columnar=False, encoded=encoded
    )
    col_rows, col_ctx, col_join = drain_batch_with_context(
        build, tpcd_catalog, batch_size, columnar=True, encoded=encoded
    )
    assert multiset(row_rows) == multiset(reference)
    assert multiset(col_rows) == multiset(reference)
    assert (
        row_ctx.stats.operator("hh").overflow_events
        == col_ctx.stats.operator("hh").overflow_events
        > 0
    )
    assert row_ctx.disk.stats.tuples_written == col_ctx.disk.stats.tuples_written
    assert row_ctx.disk.stats.bytes_written == col_ctx.disk.stats.bytes_written
    assert row_ctx.disk.stats.tuples_read == col_ctx.disk.stats.tuples_read
    assert col_ctx.clock.now == pytest.approx(row_ctx.clock.now, rel=1e-9), (
        "columnar spill changed the virtual-time accounting"
    )
    assert_budget_invariant(row_join)
    assert_budget_invariant(col_join)


def test_hybrid_mixed_callers_mid_overflow_pass(tpcd_catalog, tiny_tpcd):
    """Switching from batch to tuple pulls mid-overflow-pass must not duplicate.

    A batch caller can start the columnar overflow pass; a tuple caller on
    the same operator must drain that iterator rather than restart the row
    pass (which would re-read the spill files and re-emit pairs).
    """
    def build(context):
        return HybridHashJoin(
            "hh",
            context,
            WrapperScan("scan_ps", context, "partsupp"),
            WrapperScan("scan_p", context, "part"),
            ["partsupp.ps_partkey"],
            ["part.p_partkey"],
            memory_limit_bytes=len(tiny_tpcd["part"]) * 20,
            bucket_count=8,
        )

    reference = drain_tuple(build(ExecutionContext(tpcd_catalog)))

    context = ExecutionContext(tpcd_catalog)
    joined = build(context)
    joined.open()
    rows = []
    switched = False
    while True:
        if not switched:
            batch = joined.next_batch(64)
            if not batch:
                break
            rows.extend(batch)
            # As soon as the columnar overflow pass has begun, switch to
            # tuple-at-a-time pulls for the remainder.
            if joined._overflow_batches is not None:
                switched = True
        else:
            row = joined.next()
            if row is None:
                break
            rows.append(row)
    joined.close()
    assert switched, "memory budget was meant to force an overflow pass"
    assert multiset(rows) == multiset(reference)


# -- TPC-D catalog parity for the hot tree shapes ------------------------------------------


@pytest.mark.parametrize("batch_size", [1, 64, 512])
@pytest.mark.parametrize("implementation", ["hybrid", "dpj"])
def test_tpcd_join_parity(tpcd_catalog, implementation, batch_size):
    def build(context):
        left = WrapperScan("scan_ps", context, "partsupp")
        right = WrapperScan("scan_p", context, "part")
        cls = HybridHashJoin if implementation == "hybrid" else DoublePipelinedJoin
        return cls(
            "j", context, left, right, ["partsupp.ps_partkey"], ["part.p_partkey"]
        )

    assert_parity(build, tpcd_catalog, batch_size)


# -- collector parity, including the rule-driven switch path -------------------------------


@pytest.fixture
def mirror_catalog():
    books = make_relation(
        "bib", ["isbn:int", "title:str"], [(i, f"book{i}") for i in range(60)]
    )
    catalog = DataSourceCatalog()
    primary = DataSource("bib-main", books, lan())
    catalog.register_source(primary)
    catalog.register_source(make_mirror(primary, "bib-mirror", wide_area()))
    catalog.register_source(make_mirror(primary, "bib-partial", lan(), coverage=0.6, seed=2))
    return catalog


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("dedup", [None, ["bib.isbn"]])
def test_collector_parity(mirror_catalog, dedup, batch_size):
    def build(context):
        children = [
            WrapperScan(f"scan_{name}", context, name)
            for name in ["bib-main", "bib-mirror", "bib-partial"]
        ]
        return DynamicCollector("coll", context, children, dedup_keys=dedup)

    assert_parity(build, mirror_catalog, batch_size)


def _race_plan():
    """A collector under a race policy: threshold rules deactivate the loser."""
    children = [
        wrapper_scan("bib-main", operator_id="scan_main"),
        wrapper_scan("bib-mirror", operator_id="scan_mirror"),
        wrapper_scan("bib-partial", operator_id="scan_partial"),
    ]
    spec = collector(children, operator_id="coll1")
    spec.params["dedup_keys"] = ["bib.isbn"]
    policy = race_policy(spec, threshold=10, racers=2)
    rules = apply_policy(spec, policy)
    fragment = Fragment(fragment_id="f1", root=spec, result_name="answer")
    fragment.rules = rules
    return QueryPlan(query_name="race", fragments=[fragment], answer_name="answer")


def _run_plan(catalog, batch_size):
    context = ExecutionContext(catalog, query_name="race")
    executor = QueryExecutor(context, batch_size=batch_size)
    outcome = executor.execute(_race_plan())
    assert outcome.status == ExecutionStatus.COMPLETED
    return outcome, context


@pytest.mark.parametrize("batch_size", [2, 16, 256])
def test_executor_collector_switch_parity(mirror_catalog, batch_size):
    """The race policy must fire at the same tuple under both drive modes."""
    reference, ref_context = _run_plan(mirror_catalog, batch_size=None)
    batched, batch_context = _run_plan(mirror_catalog, batch_size=batch_size)
    assert multiset(batched.answer) == multiset(reference.answer)
    assert batched.stats.rules_fired == reference.stats.rules_fired
    ref_collector = ref_context.operator("coll1")
    batch_collector = batch_context.operator("coll1")
    assert batch_collector.tuples_per_child == ref_collector.tuples_per_child


@pytest.mark.parametrize("batch_size", [2, 64])
def test_executor_join_plan_parity(tpcd_catalog, batch_size):
    """Whole-plan parity on a TPC-D join fragment under both drive modes."""
    def run(mode):
        context = ExecutionContext(tpcd_catalog, query_name="q")
        plan = QueryPlan(
            query_name="q",
            fragments=[
                Fragment(
                    fragment_id="f1",
                    root=join(
                        wrapper_scan("partsupp", operator_id="s_ps"),
                        wrapper_scan("part", operator_id="s_p"),
                        ["partsupp.ps_partkey"],
                        ["part.p_partkey"],
                        operator_id="j1",
                    ),
                    result_name="answer",
                )
            ],
            answer_name="answer",
        )
        return QueryExecutor(context, batch_size=mode).execute(plan)

    reference = run(None)
    batched = run(batch_size)
    assert reference.status == ExecutionStatus.COMPLETED
    assert batched.status == ExecutionStatus.COMPLETED
    assert multiset(batched.answer) == multiset(reference.answer)
    assert batched.stats.output_timeline.total == reference.stats.output_timeline.total
