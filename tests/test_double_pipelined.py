"""Unit tests for the double pipelined join and its overflow strategies."""

import pytest

from repro.engine.context import ExecutionContext
from repro.engine.operators.joins.double_pipelined import DoublePipelinedJoin
from repro.engine.operators.joins.hybrid_hash import HybridHashJoin
from repro.engine.operators.scan import WrapperScan
from repro.errors import MemoryOverflowError
from repro.network.profiles import lan, slow_start
from repro.plan.physical import OverflowMethod
from repro.plan.rules import EventType
from repro.storage.memory import MB

from helpers import multiset, reference_join


def make_join(context, method=OverflowMethod.LEFT_FLUSH, memory=None, buckets=16):
    left = WrapperScan(f"scan_ord_{method.value}", context, "ord")
    right = WrapperScan(f"scan_item_{method.value}", context, "item")
    return DoublePipelinedJoin(
        f"dpj_{method.value}",
        context,
        left,
        right,
        ["ord.o_id"],
        ["item.i_order"],
        memory_limit_bytes=memory,
        bucket_count=buckets,
        overflow_method=method,
    )


def expected(catalog):
    return reference_join(
        catalog.source("ord").relation, catalog.source("item").relation, "o_id", "i_order"
    )


class TestCorrectness:
    def test_matches_reference_with_ample_memory(self, joinable_catalog, context):
        join = make_join(context, memory=10 * MB)
        join.open()
        assert multiset(list(join.iterate())) == multiset(expected(joinable_catalog))

    @pytest.mark.parametrize("method", [OverflowMethod.LEFT_FLUSH, OverflowMethod.SYMMETRIC_FLUSH])
    def test_matches_reference_under_memory_pressure(self, joinable_catalog, method):
        context = ExecutionContext(joinable_catalog)
        join = make_join(context, method=method, memory=150, buckets=4)
        join.open()
        rows = list(join.iterate())
        assert multiset(rows) == multiset(expected(joinable_catalog))
        assert join.overflow_count > 0
        assert context.disk.stats.tuples_written > 0

    @pytest.mark.parametrize("method", [OverflowMethod.LEFT_FLUSH, OverflowMethod.SYMMETRIC_FLUSH])
    def test_tpcd_join_under_pressure_matches_reference(self, tpcd_catalog, tiny_tpcd, method):
        context = ExecutionContext(tpcd_catalog)
        left = WrapperScan("scan_ps", context, "partsupp")
        right = WrapperScan("scan_p", context, "part")
        join = DoublePipelinedJoin(
            "dpj", context, left, right,
            ["partsupp.ps_partkey"], ["part.p_partkey"],
            memory_limit_bytes=len(tiny_tpcd["partsupp"]) * 20,  # far less than needed
            bucket_count=8,
            overflow_method=method,
        )
        join.open()
        rows = list(join.iterate())
        reference = reference_join(tiny_tpcd["partsupp"], tiny_tpcd["part"], "ps_partkey", "p_partkey")
        assert multiset(rows) == multiset(reference)
        assert join.overflow_count > 0

    def test_fail_method_raises(self, joinable_catalog):
        context = ExecutionContext(joinable_catalog)
        join = make_join(context, method=OverflowMethod.FAIL, memory=150)
        join.open()
        with pytest.raises(MemoryOverflowError):
            list(join.iterate())


class TestAdaptiveBehaviour:
    def test_first_output_does_not_wait_for_either_input(self, tpcd_catalog):
        """DPJ produces output long before either input is exhausted."""
        context = ExecutionContext(tpcd_catalog)
        left = WrapperScan("l", context, "partsupp")
        right = WrapperScan("r", context, "part")
        join = DoublePipelinedJoin(
            "dpj", context, left, right, ["partsupp.ps_partkey"], ["part.p_partkey"]
        )
        join.open()
        assert join.next() is not None
        assert not left.wrapper.exhausted or not right.wrapper.exhausted

    def test_time_to_first_tuple_beats_hybrid_hash_when_inner_is_slow(self, tpcd_catalog):
        tpcd_catalog.source("part").set_profile(slow_start(delay_ms=2_000.0))
        dpj_context = ExecutionContext(tpcd_catalog)
        dpj = DoublePipelinedJoin(
            "dpj",
            dpj_context,
            WrapperScan("l1", dpj_context, "partsupp"),
            WrapperScan("r1", dpj_context, "part"),
            ["partsupp.ps_partkey"],
            ["part.p_partkey"],
        )
        dpj.open()
        dpj.next()
        dpj_first = dpj_context.clock.now

        hh_context = ExecutionContext(tpcd_catalog)
        hybrid = HybridHashJoin(
            "hh",
            hh_context,
            WrapperScan("l2", hh_context, "partsupp"),
            WrapperScan("r2", hh_context, "part"),
            ["partsupp.ps_partkey"],
            ["part.p_partkey"],
        )
        hybrid.open()
        hybrid.next()
        hybrid_first = hh_context.clock.now
        tpcd_catalog.source("part").set_profile(lan())
        assert dpj_first < hybrid_first

    def test_consumes_from_earlier_arriving_child_first(self, joinable_catalog):
        joinable_catalog.source("ord").set_profile(slow_start(delay_ms=500.0))
        context = ExecutionContext(joinable_catalog)
        join = make_join(context, memory=None)
        join.open()
        list(join.iterate())
        joinable_catalog.source("ord").set_profile(lan())
        # The right (fast) child's tuples are all inserted before the slow left child's.
        assert join._tables[1].total_inserted > 0

    def test_out_of_memory_event_emitted(self, joinable_catalog):
        context = ExecutionContext(joinable_catalog)
        join = make_join(context, memory=150, buckets=4)
        join.open()
        list(join.iterate())
        events = context.events.drain()
        assert any(e.event_type == EventType.OUT_OF_MEMORY for e in events)

    def test_set_overflow_method_at_runtime(self, joinable_catalog):
        context = ExecutionContext(joinable_catalog)
        join = make_join(context, method=OverflowMethod.LEFT_FLUSH)
        join.set_overflow_method("symmetric_flush")
        assert join.overflow_method == OverflowMethod.SYMMETRIC_FLUSH

    def test_left_flush_spills_more_left_than_right(self, tpcd_catalog, tiny_tpcd):
        context = ExecutionContext(tpcd_catalog)
        left = WrapperScan("l", context, "partsupp")
        right = WrapperScan("r", context, "part")
        join = DoublePipelinedJoin(
            "dpj", context, left, right,
            ["partsupp.ps_partkey"], ["part.p_partkey"],
            memory_limit_bytes=len(tiny_tpcd["partsupp"]) * 20,
            bucket_count=8,
            overflow_method=OverflowMethod.LEFT_FLUSH,
        )
        join.open()
        list(join.iterate())
        left_flushed = len(join._tables[0].flushed_buckets)
        right_flushed = len(join._tables[1].flushed_buckets)
        assert left_flushed >= right_flushed

    def test_symmetric_flush_flushes_pairs(self, tpcd_catalog, tiny_tpcd):
        context = ExecutionContext(tpcd_catalog)
        left = WrapperScan("l", context, "partsupp")
        right = WrapperScan("r", context, "part")
        join = DoublePipelinedJoin(
            "dpj", context, left, right,
            ["partsupp.ps_partkey"], ["part.p_partkey"],
            memory_limit_bytes=len(tiny_tpcd["partsupp"]) * 20,
            bucket_count=8,
            overflow_method=OverflowMethod.SYMMETRIC_FLUSH,
        )
        join.open()
        list(join.iterate())
        assert set(join._tables[0].flushed_buckets) == set(join._tables[1].flushed_buckets)

    def test_releases_memory_on_close(self, joinable_catalog):
        context = ExecutionContext(joinable_catalog)
        join = make_join(context, memory=MB)
        join.open()
        list(join.iterate())
        join.close()
        assert context.memory_pool.granted_bytes == 0
