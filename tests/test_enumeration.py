"""Unit tests for the DP join enumerator and saved optimizer state."""

import pytest

from repro.catalog.catalog import DataSourceCatalog
from repro.errors import OptimizationError
from repro.network.profiles import lan
from repro.network.source import DataSource
from repro.optimizer.cost_model import CostModel
from repro.optimizer.enumeration import JoinEnumerator
from repro.query.conjunctive import ConjunctiveQuery, JoinPredicate

from helpers import make_relation


def chain_query(tables_and_sizes):
    """A linear chain query A-B-C-... with join predicates on shared key `k`."""
    names = [name for name, _ in tables_and_sizes]
    predicates = [
        JoinPredicate(names[i], "k", names[i + 1], "k") for i in range(len(names) - 1)
    ]
    return ConjunctiveQuery(name="chain", relations=names, join_predicates=predicates)


@pytest.fixture
def setup():
    """Catalog with four chained relations of very different sizes."""
    sizes = [("a", 1000), ("b", 10), ("c", 500), ("d", 20)]
    catalog = DataSourceCatalog()
    for name, size in sizes:
        rel = make_relation(name, ["k:int"], [(i,) for i in range(size)])
        catalog.register_source(DataSource(name, rel, lan()))
    query = chain_query(sizes)
    enumerator = JoinEnumerator(CostModel(catalog))
    sources = {name: name for name, _ in sizes}
    return catalog, query, enumerator, sources


class TestEnumeration:
    def test_full_plan_covers_all_relations(self, setup):
        _, query, enumerator, sources = setup
        state = enumerator.enumerate(query, sources)
        best = state.best_plan()
        assert best.subset == frozenset(query.relations)
        assert best.cost > 0
        assert not best.is_leaf

    def test_connected_subsets_only(self, setup):
        _, query, enumerator, sources = setup
        state = enumerator.enumerate(query, sources)
        # a-c are not adjacent in the chain: no entry without b.
        assert frozenset({"a", "c"}) not in state.table
        assert frozenset({"a", "b"}) in state.table

    def test_plan_tree_entries_consistent(self, setup):
        _, query, enumerator, sources = setup
        state = enumerator.enumerate(query, sources)
        best = state.best_plan()
        assert best.left | best.right == best.subset
        assert not (best.left & best.right)
        assert best.predicates

    def test_disconnected_query_rejected(self, setup):
        catalog, _, enumerator, _ = setup
        query = ConjunctiveQuery(name="disc", relations=["a", "b"])
        with pytest.raises(OptimizationError):
            enumerator.enumerate(query, {"a": "a", "b": "b"})

    def test_leaf_cardinalities_from_catalog(self, setup):
        _, query, enumerator, sources = setup
        state = enumerator.enumerate(query, sources)
        assert state.entry(frozenset({"a"})).cardinality.value == 1000
        assert state.entry(frozenset({"b"})).cardinality.value == 10

    def test_usage_pointers_reach_all_supersets(self, setup):
        _, query, enumerator, sources = setup
        state = enumerator.enumerate(query, sources)
        reachable = state.pointers.supersets_of(frozenset({"a", "b"}))
        expected = {
            subset for subset in state.table if frozenset({"a", "b"}) < subset
        }
        assert expected <= reachable

    def test_nodes_visited_counted(self, setup):
        _, query, enumerator, sources = setup
        state = enumerator.enumerate(query, sources)
        assert state.nodes_visited >= len(state.table)


class TestReoptimization:
    def covered(self):
        return frozenset({"a", "b"})

    def test_saved_state_updates_cardinality_and_plan(self, setup):
        _, query, enumerator, sources = setup
        state = enumerator.enumerate(query, sources)
        enumerator.reoptimize_with_saved_state(state, self.covered(), "ab_result", 7)
        entry = state.entry(self.covered())
        assert entry.materialized_as == "ab_result"
        assert entry.cardinality.value == 7
        best = state.best_plan()
        # The final plan must treat {a, b} as an unsplittable unit.
        assert self.covered() in (best.left, best.right) or all(
            not (self.covered() & side) or self.covered() <= side
            for side in (best.left, best.right)
        )

    def test_saved_state_visits_fewer_nodes_than_scratch(self, setup):
        _, query, enumerator, sources = setup
        baseline = enumerator.enumerate(query, sources)
        saved = enumerator.enumerate(query, sources)
        before = saved.nodes_visited
        enumerator.reoptimize_with_saved_state(saved, self.covered(), "ab", 7)
        saved_work = saved.nodes_visited - before
        scratch = enumerator.replan_from_scratch(
            baseline, self.covered(), "ab", 7, sources
        )
        assert saved_work < scratch.nodes_visited

    def test_no_pointers_visits_more_than_with_pointers(self, setup):
        _, query, enumerator, sources = setup
        with_pointers = enumerator.enumerate(query, sources)
        base_with = with_pointers.nodes_visited
        enumerator.reoptimize_with_saved_state(
            with_pointers, self.covered(), "ab", 7, use_usage_pointers=True
        )
        work_with = with_pointers.nodes_visited - base_with

        without_pointers = enumerator.enumerate(query, sources)
        base_without = without_pointers.nodes_visited
        enumerator.reoptimize_with_saved_state(
            without_pointers, self.covered(), "ab", 7, use_usage_pointers=False
        )
        work_without = without_pointers.nodes_visited - base_without
        assert work_without > work_with

    def test_scratch_plan_equivalent_result_subset(self, setup):
        _, query, enumerator, sources = setup
        state = enumerator.enumerate(query, sources)
        fresh = enumerator.replan_from_scratch(state, self.covered(), "ab", 7, sources)
        best = fresh.best_plan()
        assert best.subset == frozenset(query.relations)
        assert fresh.entry(self.covered()).materialized_as == "ab"

    def test_successive_materializations(self, setup):
        _, query, enumerator, sources = setup
        state = enumerator.enumerate(query, sources)
        enumerator.reoptimize_with_saved_state(state, frozenset({"a", "b"}), "ab", 7)
        enumerator.reoptimize_with_saved_state(state, frozenset({"a", "b", "c"}), "abc", 3)
        best = state.best_plan()
        assert best.subset == frozenset(query.relations)
        assert state.entry(frozenset({"a", "b", "c"})).materialized_as == "abc"
