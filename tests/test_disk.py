"""Unit tests for repro.storage.disk."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import MARK_BIT_BYTES, PAGE_SIZE_BYTES, SimulatedDisk
from repro.storage.schema import Schema
from repro.storage.tuples import Row, counting_row_constructions

SCHEMA = Schema.of("a:str", "b:str", "c:str")

#: Bytes charged per spilled row: the columnar row estimate plus the marked
#: bit carried as one more column.
SPILL_ROW_BYTES = SCHEMA.columnar_row_size + MARK_BIT_BYTES


@pytest.fixture
def disk():
    """Plain-columnar disk: the PR-3 accounting the byte-exact tests pin."""
    return SimulatedDisk(encoded=False)


@pytest.fixture
def encoded_disk():
    return SimulatedDisk()


@pytest.fixture
def row():
    return Row(SCHEMA, ("x", "y", "z"))


class TestOverflowFile:
    def test_write_and_read_preserves_order_and_marks(self, disk, row):
        handle = disk.create_file("spill")
        handle.write(row, marked=False)
        handle.write(row, marked=True)
        contents = list(handle.read())
        assert [marked for _, marked in contents] == [False, True]

    def test_write_after_close_rejected(self, disk, row):
        handle = disk.create_file()
        handle.close()
        with pytest.raises(StorageError):
            handle.write(row)

    def test_peek_does_not_charge_io(self, disk, row):
        handle = disk.create_file()
        handle.write(row)
        reads_before = disk.stats.tuples_read
        handle.peek()
        assert disk.stats.tuples_read == reads_before

    def test_len(self, disk, row):
        handle = disk.create_file()
        handle.write_all([row, row])
        assert len(handle) == 2


class TestSimulatedDisk:
    def test_unique_file_names(self, disk):
        names = {disk.create_file("x").name for _ in range(5)}
        assert len(names) == 5

    def test_file_lookup(self, disk):
        handle = disk.create_file("abc")
        assert disk.file(handle.name) is handle
        with pytest.raises(StorageError):
            disk.file("missing")

    def test_tuple_and_byte_accounting(self, disk, row):
        handle = disk.create_file()
        handle.write(row)
        list(handle.read())
        assert disk.stats.tuples_written == 1
        assert disk.stats.tuples_read == 1
        assert disk.stats.bytes_written == SPILL_ROW_BYTES
        assert disk.stats.bytes_read == SPILL_ROW_BYTES
        assert disk.stats.total_tuple_ios == 2

    def test_pages_accumulate_across_tuples(self, disk, row):
        handle = disk.create_file()
        tuples_per_page = PAGE_SIZE_BYTES // SPILL_ROW_BYTES + 1
        for _ in range(tuples_per_page):
            handle.write(row)
        assert disk.stats.pages_written >= 1

    def test_io_time_since_snapshot(self, disk, row):
        handle = disk.create_file()
        tuples_per_page = PAGE_SIZE_BYTES // SPILL_ROW_BYTES + 1
        for _ in range(tuples_per_page):
            handle.write(row)
        snapshot = disk.stats.snapshot()
        assert disk.io_time_ms(snapshot) == 0.0
        for _ in range(tuples_per_page):
            handle.write(row)
        assert disk.io_time_ms(snapshot) > 0.0
        assert disk.io_time_ms() >= disk.io_time_ms(snapshot)


class TestColumnarSpill:
    """The batch-granular (chunk) spill format: marked bit as a column."""

    def test_write_columns_seals_one_chunk(self, disk):
        handle = disk.create_file("chunk", schema=SCHEMA)
        handle.write_columns([["x", "y"], ["a", "b"], ["p", "q"]], [1.0, 2.0], True)
        assert len(handle) == 2
        assert disk.stats.chunks_written == 1
        assert disk.stats.tuples_written == 2
        assert disk.stats.bytes_written == 2 * SPILL_ROW_BYTES
        chunks = list(handle.read_chunks())
        assert len(chunks) == 1
        assert chunks[0].marked == [True, True]
        assert chunks[0].arrivals == [1.0, 2.0]
        assert disk.stats.chunks_read == 1
        assert disk.stats.bytes_read == 2 * SPILL_ROW_BYTES

    def test_write_gather_selects_positions(self, disk):
        handle = disk.create_file("gather", schema=SCHEMA)
        columns = [["x0", "x1", "x2"], ["y0", "y1", "y2"], ["z0", "z1", "z2"]]
        handle.write_gather(columns, [1.0, 2.0, 3.0], [0, 2])
        (chunk,) = handle.read_chunks()
        assert chunk.columns[0] == ["x0", "x2"]
        assert chunk.arrivals == [1.0, 3.0]
        assert chunk.marked == [False, False]

    def test_row_and_chunk_writes_charge_identical_bytes(self, disk):
        """The row-spill baseline and the columnar spill agree on bytes."""
        row_file = disk.create_file("rows", schema=SCHEMA)
        for values in [("x", "y", "z"), ("u", "v", "w")]:
            row_file.write(Row(SCHEMA, values), marked=True)
        per_row = disk.stats.bytes_written
        chunk_file = disk.create_file("chunks", schema=SCHEMA)
        chunk_file.write_columns([["x", "u"], ["y", "v"], ["z", "w"]], [0.0, 0.0], True)
        assert disk.stats.bytes_written == 2 * per_row
        assert [r.values for r, _ in row_file.peek()] == [
            r.values for r, _ in chunk_file.peek()
        ]

    def test_chunk_paths_box_no_rows(self, disk):
        """Spill write/read hot paths must not construct Row objects."""
        handle = disk.create_file("boxfree", schema=SCHEMA)
        columns = [["x0", "x1"], ["y0", "y1"], ["z0", "z1"]]
        with counting_row_constructions() as counter:
            handle.write_columns([c[:] for c in columns], [1.0, 2.0], False)
            handle.write_gather(columns, [1.0, 2.0], [0, 1], marked=True)
            handle.write_position(columns, 1, 2.0, marked=True)
            for chunk in handle.read_chunks():
                assert len(chunk) > 0
            assert counter.count == 0
        # The row-at-a-time view boxes (that is its job).
        with counting_row_constructions() as counter:
            assert len(list(handle.read())) == 5
            assert counter.count == 5

    def test_read_preserves_marked_bits_across_mixed_writes(self, disk, row):
        handle = disk.create_file("mixed", schema=SCHEMA)
        handle.write(row, marked=False)
        handle.write_columns([["x"], ["y"], ["z"]], [0.0], True)
        handle.write(row, marked=True)
        assert [marked for _, marked in handle.read()] == [False, True, True]


class TestEncodedSpill:
    """Dictionary-coded string columns and RLE arrivals in spill chunks."""

    def make_dict_columns(self, values_per_column):
        from repro.storage.columns import DictColumn

        columns = []
        for values in values_per_column:
            column = DictColumn()
            column.extend(values)
            columns.append(column)
        return columns

    def test_encoded_is_default(self):
        assert SimulatedDisk().encoded
        assert not SimulatedDisk(encoded=False).encoded

    def test_per_row_write_charges_encoded_footprint(self, encoded_disk, row):
        handle = encoded_disk.create_file(schema=SCHEMA)
        handle.write(row)
        # 3 codes (8B each) + 3 new one-char dictionary entries (1+8B each)
        # + one arrival run (8B) + mark bit.
        first = 3 * 8 + 3 * 9 + 8 + 1
        assert encoded_disk.stats.bytes_written == first
        # Same values, same arrival: codes only, no new entries, no new run.
        handle.write(row)
        assert encoded_disk.stats.bytes_written == first + 3 * 8 + 1

    def test_chunk_write_charges_dictionary_once_per_file(self, encoded_disk):
        handle = encoded_disk.create_file(schema=SCHEMA)
        columns = self.make_dict_columns([["x", "x"], ["y", "y"], ["z", "z"]])
        handle.write_columns(columns, [1.0, 2.0], False)
        first = encoded_disk.stats.bytes_written
        # 6 codes + 3 entries + 2 arrival runs + 2 marks.
        assert first == 6 * 8 + 3 * 9 + 2 * 8 + 2
        # A second chunk over the same dictionaries: entries already carried.
        again = [c.gather([0, 1]) for c in columns]
        handle.write_columns(again, [3.0, 4.0], False)
        assert encoded_disk.stats.bytes_written == first + 6 * 8 + 2 * 8 + 2

    def test_row_and_chunk_writes_charge_identical_bytes(self, encoded_disk):
        row_file = encoded_disk.create_file("rows", schema=SCHEMA)
        for values in [("x", "y", "z"), ("u", "v", "w")]:
            row_file.write(Row(SCHEMA, values), marked=True)
        per_row = encoded_disk.stats.bytes_written
        chunk_file = encoded_disk.create_file("chunks", schema=SCHEMA)
        columns = self.make_dict_columns([["x", "u"], ["y", "v"], ["z", "w"]])
        chunk_file.write_columns(columns, [0.0, 0.0], True)
        # The chunk's arrival column collapses to one run where the per-row
        # path wrote two equal stamps merged into one run as well.
        assert encoded_disk.stats.bytes_written == 2 * per_row
        assert [r.values for r, _ in row_file.peek()] == [
            r.values for r, _ in chunk_file.peek()
        ]

    def test_arrival_runs_span_chunk_boundaries(self, encoded_disk):
        handle = encoded_disk.create_file(schema=Schema.of("k:int"))
        handle.write_columns([[1, 2]], [5.0, 5.0], False)
        first = encoded_disk.stats.bytes_written
        # Next chunk starts at the same stamp: no new arrival run charged.
        handle.write_columns([[3]], [5.0], False)
        assert encoded_disk.stats.bytes_written == first + 8 + 1

    def test_read_charges_what_write_charged(self, encoded_disk, row):
        handle = encoded_disk.create_file(schema=SCHEMA)
        handle.write(row)
        columns = self.make_dict_columns([["x"], ["y"], ["z"]])
        handle.write_columns(columns, [9.0], False)
        for chunk in handle.read_chunks():
            assert chunk.byte_size > 0
        assert encoded_disk.stats.bytes_read == encoded_disk.stats.bytes_written

    def test_encoded_spill_is_smaller_than_plain(self, encoded_disk, disk, row):
        plain = disk.create_file(schema=SCHEMA)
        encoded = encoded_disk.create_file(schema=SCHEMA)
        for _ in range(50):
            plain.write(row)
            encoded.write(row)
        assert encoded_disk.stats.bytes_written * 3 < disk.stats.bytes_written

    def test_readback_decodes_to_canonical_strings(self, encoded_disk):
        handle = encoded_disk.create_file(schema=SCHEMA)
        handle.write(Row(SCHEMA, ("x", "y", "z")))
        handle.write(Row(SCHEMA, ("x", "y", "z")))
        with counting_row_constructions() as counter:
            (chunk,) = list(handle.read_chunks())
            assert counter.count == 0
        # Both occurrences decode to the same canonical string object.
        assert chunk.columns[0][0] is chunk.columns[0][1]

    def test_rle_arrivals_stored_when_compressible(self, encoded_disk):
        from repro.storage.columns import RunLengthArrivals

        handle = encoded_disk.create_file(schema=Schema.of("k:int"))
        handle.write_columns([[1, 2, 3, 4]], [7.0, 7.0, 7.0, 7.0], False)
        (chunk,) = list(handle.read_chunks())
        assert isinstance(chunk.arrivals, RunLengthArrivals)
        assert list(chunk.arrivals) == [7.0, 7.0, 7.0, 7.0]

    def test_misfit_value_degrades_tail_column(self, encoded_disk):
        handle = encoded_disk.create_file(schema=SCHEMA)
        handle.write(Row(SCHEMA, ("x", "y", "z")))
        handle.write(Row(SCHEMA, ("x", None, "z")))
        values = [r.values for r, _ in handle.peek()]
        assert values == [("x", "y", "z"), ("x", None, "z")]
