"""Unit tests for repro.storage.disk."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import PAGE_SIZE_BYTES, SimulatedDisk
from repro.storage.schema import Schema
from repro.storage.tuples import Row


@pytest.fixture
def disk():
    return SimulatedDisk()


@pytest.fixture
def row():
    schema = Schema.of("a:str", "b:str", "c:str")
    return Row(schema, ("x", "y", "z"))


class TestOverflowFile:
    def test_write_and_read_preserves_order_and_marks(self, disk, row):
        handle = disk.create_file("spill")
        handle.write(row, marked=False)
        handle.write(row, marked=True)
        contents = list(handle.read())
        assert [marked for _, marked in contents] == [False, True]

    def test_write_after_close_rejected(self, disk, row):
        handle = disk.create_file()
        handle.close()
        with pytest.raises(StorageError):
            handle.write(row)

    def test_peek_does_not_charge_io(self, disk, row):
        handle = disk.create_file()
        handle.write(row)
        reads_before = disk.stats.tuples_read
        handle.peek()
        assert disk.stats.tuples_read == reads_before

    def test_len(self, disk, row):
        handle = disk.create_file()
        handle.write_all([row, row])
        assert len(handle) == 2


class TestSimulatedDisk:
    def test_unique_file_names(self, disk):
        names = {disk.create_file("x").name for _ in range(5)}
        assert len(names) == 5

    def test_file_lookup(self, disk):
        handle = disk.create_file("abc")
        assert disk.file(handle.name) is handle
        with pytest.raises(StorageError):
            disk.file("missing")

    def test_tuple_and_byte_accounting(self, disk, row):
        handle = disk.create_file()
        handle.write(row)
        list(handle.read())
        assert disk.stats.tuples_written == 1
        assert disk.stats.tuples_read == 1
        assert disk.stats.bytes_written == row.size_bytes
        assert disk.stats.bytes_read == row.size_bytes
        assert disk.stats.total_tuple_ios == 2

    def test_pages_accumulate_across_tuples(self, disk, row):
        handle = disk.create_file()
        tuples_per_page = PAGE_SIZE_BYTES // row.size_bytes + 1
        for _ in range(tuples_per_page):
            handle.write(row)
        assert disk.stats.pages_written >= 1

    def test_io_time_since_snapshot(self, disk, row):
        handle = disk.create_file()
        tuples_per_page = PAGE_SIZE_BYTES // row.size_bytes + 1
        for _ in range(tuples_per_page):
            handle.write(row)
        snapshot = disk.stats.snapshot()
        assert disk.io_time_ms(snapshot) == 0.0
        for _ in range(tuples_per_page):
            handle.write(row)
        assert disk.io_time_ms(snapshot) > 0.0
        assert disk.io_time_ms() >= disk.io_time_ms(snapshot)
