"""Unit tests for repro.storage.memory."""

import pytest

from repro.errors import MemoryBudgetError
from repro.storage.memory import MB, MemoryBudget, MemoryPool


class TestMemoryBudget:
    def test_reserve_and_release(self):
        budget = MemoryBudget(100)
        budget.reserve(60)
        assert budget.used_bytes == 60
        assert budget.available_bytes == 40
        budget.release(30)
        assert budget.used_bytes == 30

    def test_try_reserve_over_limit_returns_false(self):
        budget = MemoryBudget(100)
        assert budget.try_reserve(80)
        assert not budget.try_reserve(30)
        assert budget.stats.overflow_events == 1

    def test_reserve_over_limit_raises(self):
        budget = MemoryBudget(10)
        with pytest.raises(MemoryBudgetError):
            budget.reserve(20)

    def test_on_overflow_callback(self):
        calls = []
        budget = MemoryBudget(10, on_overflow=calls.append)
        budget.try_reserve(20)
        assert calls == [budget]

    def test_unlimited_budget(self):
        budget = MemoryBudget(None)
        assert budget.unlimited
        assert budget.available_bytes is None
        assert budget.try_reserve(10**9)

    def test_peak_tracking(self):
        budget = MemoryBudget(100)
        budget.reserve(70)
        budget.release(70)
        budget.reserve(10)
        assert budget.stats.peak == 70

    def test_resize(self):
        budget = MemoryBudget(10)
        budget.resize(100)
        assert budget.try_reserve(50)
        with pytest.raises(MemoryBudgetError):
            budget.resize(0)

    def test_invalid_limit(self):
        with pytest.raises(MemoryBudgetError):
            MemoryBudget(0)

    def test_release_never_goes_negative(self):
        budget = MemoryBudget(10)
        budget.release(100)
        assert budget.used_bytes == 0


class TestMemoryPool:
    def test_grant_within_pool(self):
        pool = MemoryPool(10 * MB)
        budget = pool.grant("join1", 4 * MB)
        assert budget.limit_bytes == 4 * MB
        assert pool.remaining_bytes == 6 * MB

    def test_grant_over_pool_rejected(self):
        pool = MemoryPool(MB)
        with pytest.raises(MemoryBudgetError):
            pool.grant("join1", 2 * MB)

    def test_unbounded_pool(self):
        pool = MemoryPool(None)
        assert pool.remaining_bytes is None
        pool.grant("join1", 100 * MB)

    def test_unbounded_grant_from_bounded_pool(self):
        pool = MemoryPool(MB)
        budget = pool.grant("join1", None)
        assert budget.unlimited
        assert pool.granted_bytes == 0

    def test_revoke_returns_memory(self):
        pool = MemoryPool(MB)
        pool.grant("join1", MB)
        pool.revoke("join1")
        assert pool.remaining_bytes == MB
        pool.grant("join2", MB)

    def test_budget_lookup(self):
        pool = MemoryPool(MB)
        granted = pool.grant("join1", 1024)
        assert pool.budget("join1") is granted
        with pytest.raises(MemoryBudgetError):
            pool.budget("missing")

    def test_invalid_pool_size(self):
        with pytest.raises(MemoryBudgetError):
            MemoryPool(-1)
