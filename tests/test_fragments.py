"""Unit tests for repro.plan.fragments."""

import pytest

from repro.errors import PlanError
from repro.plan.fragments import Fragment, FragmentStatus, QueryPlan
from repro.plan.physical import join, wrapper_scan
from repro.plan.rules import EventType, Rule, replan


def make_fragment(fragment_id: str, result: str, sources=("a", "b")) -> Fragment:
    root = join(
        wrapper_scan(sources[0], operator_id=f"{fragment_id}_l"),
        wrapper_scan(sources[1], operator_id=f"{fragment_id}_r"),
        [f"{sources[0]}.x"],
        [f"{sources[1]}.x"],
        operator_id=f"{fragment_id}_join",
    )
    return Fragment(fragment_id=fragment_id, root=root, result_name=result, covers=frozenset(sources))


class TestFragment:
    def test_requires_result_name(self):
        with pytest.raises(PlanError):
            make_fragment("f1", "")

    def test_sources_and_operator_ids(self):
        fragment = make_fragment("f1", "r1")
        assert set(fragment.sources()) == {"a", "b"}
        assert "f1_join" in fragment.operator_ids()

    def test_describe(self):
        fragment = make_fragment("f1", "r1")
        fragment.estimated_cardinality = 7
        assert "Fragment f1 -> r1 (est 7)" in fragment.describe()

    def test_initial_status(self):
        assert make_fragment("f1", "r1").status == FragmentStatus.PENDING


class TestQueryPlan:
    def test_last_fragment_is_final_and_answer(self):
        f1, f2 = make_fragment("f1", "r1"), make_fragment("f2", "r2", sources=("c", "d"))
        plan = QueryPlan(query_name="q", fragments=[f1, f2])
        assert plan.answer_name == "r2"
        assert not f1.is_final
        assert f2.is_final

    def test_duplicate_fragment_ids_rejected(self):
        with pytest.raises(PlanError):
            QueryPlan(query_name="q", fragments=[make_fragment("f1", "r1"), make_fragment("f1", "r2")])

    def test_dependencies_validated(self):
        f1 = make_fragment("f1", "r1")
        with pytest.raises(PlanError):
            QueryPlan(query_name="q", fragments=[f1], dependencies={"f1": {"ghost"}})
        with pytest.raises(PlanError):
            QueryPlan(query_name="q", fragments=[f1], dependencies={"ghost": set()})

    def test_cycle_detected(self):
        f1, f2 = make_fragment("f1", "r1"), make_fragment("f2", "r2", sources=("c", "d"))
        with pytest.raises(PlanError):
            QueryPlan(
                query_name="q",
                fragments=[f1, f2],
                dependencies={"f1": {"f2"}, "f2": {"f1"}},
            )

    def test_execution_order_respects_dependencies(self):
        f1 = make_fragment("f1", "r1")
        f2 = make_fragment("f2", "r2", sources=("c", "d"))
        f3 = make_fragment("f3", "r3", sources=("e", "f"))
        plan = QueryPlan(
            query_name="q",
            fragments=[f3, f2, f1],
            dependencies={"f3": {"f1", "f2"}},
        )
        order = [f.fragment_id for f in plan.execution_order()]
        assert order.index("f3") > order.index("f1")
        assert order.index("f3") > order.index("f2")

    def test_fragment_and_operator_lookup(self):
        f1 = make_fragment("f1", "r1")
        plan = QueryPlan(query_name="q", fragments=[f1])
        assert plan.fragment("f1") is f1
        assert plan.operator("f1_join").operator_id == "f1_join"
        with pytest.raises(PlanError):
            plan.fragment("zzz")
        with pytest.raises(PlanError):
            plan.operator("zzz")

    def test_sources_aggregated(self):
        plan = QueryPlan(
            query_name="q",
            fragments=[make_fragment("f1", "r1"), make_fragment("f2", "r2", sources=("c", "d"))],
        )
        assert plan.sources() == ["a", "b", "c", "d"]

    def test_all_rules_combines_global_and_local(self):
        f1 = make_fragment("f1", "r1")
        f1.rules = [Rule("local", "f1", EventType.CLOSED, "f1", actions=[replan()])]
        plan = QueryPlan(
            query_name="q",
            fragments=[f1],
            global_rules=[Rule("global", "q", EventType.TIMEOUT, "a", actions=[replan()])],
        )
        assert {rule.name for rule in plan.all_rules()} == {"local", "global"}

    def test_duplicate_rule_names_rejected_at_plan_level(self):
        f1 = make_fragment("f1", "r1")
        f1.rules = [Rule("r", "f1", EventType.CLOSED, "f1", actions=[replan()])]
        with pytest.raises(PlanError):
            QueryPlan(
                query_name="q",
                fragments=[f1],
                global_rules=[Rule("r", "q", EventType.TIMEOUT, "a", actions=[replan()])],
            )

    def test_choice_groups_validated(self):
        f1 = make_fragment("f1", "r1")
        with pytest.raises(PlanError):
            QueryPlan(query_name="q", fragments=[f1], choice_groups={"g": ["f1", "ghost"]})

    def test_describe_mentions_fragments(self):
        plan = QueryPlan(query_name="q", fragments=[make_fragment("f1", "r1")])
        assert "Fragment f1" in plan.describe()
