"""Tests for the shared benchmark harness and reporting helpers."""

import pytest

from repro.bench.harness import build_deployment, hide_statistics, run_operator_tree
from repro.bench.reporting import ascii_chart, format_table, speedup, timeline_series
from repro.engine.stats import TupleTimeline
from repro.network.profiles import wide_area
from repro.plan.physical import JoinImplementation, join, wrapper_scan


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(0.3, ["part", "partsupp"], seed=9)


class TestDeployment:
    def test_tables_and_sources_registered(self, deployment):
        assert set(deployment.database.names) == {"part", "partsupp"}
        assert "part" in deployment.catalog.source_names
        assert deployment.source_for("part").cardinality == deployment.database["part"].cardinality

    def test_set_profile(self, deployment):
        deployment.set_profile("part", wide_area())
        assert deployment.source_for("part").profile.name == "wide-area"
        deployment.set_all_profiles(wide_area())
        assert deployment.source_for("partsupp").profile.name == "wide-area"

    def test_hide_statistics(self):
        dep = build_deployment(0.2, ["part"], seed=1)
        assert dep.catalog.has_reliable_cardinality("part")
        hide_statistics(dep.catalog)
        assert not dep.catalog.has_reliable_cardinality("part")


class TestRunOperatorTree:
    def test_runs_join_and_reports_timeline(self, deployment):
        spec = join(
            wrapper_scan("partsupp"),
            wrapper_scan("part"),
            ["partsupp.ps_partkey"],
            ["part.p_partkey"],
            implementation=JoinImplementation.DOUBLE_PIPELINED,
        )
        result = run_operator_tree(spec, deployment.catalog, result_name="t")
        assert result.cardinality == deployment.database["partsupp"].cardinality
        assert result.time_to_first_tuple_ms is not None
        assert result.completion_time_ms >= result.time_to_first_tuple_ms
        assert result.timeline.total == result.cardinality
        assert result.relation.cardinality == result.cardinality


class TestReporting:
    def test_timeline_series_monotone(self):
        timeline = TupleTimeline()
        for i in range(1, 101):
            timeline.record(float(i), i)
        series = timeline_series(timeline, points=10)
        assert series[-1].tuples == 100
        times = [p.time_ms for p in series]
        assert times == sorted(times)

    def test_timeline_series_empty(self):
        assert timeline_series(TupleTimeline()) == []

    def test_format_table_aligns_columns(self):
        text = format_table(["name", "time"], [["dpj", 1.234], ["hybrid", 10.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "dpj" in lines[2]
        assert "10.5" in lines[3]

    def test_speedup(self):
        assert speedup(200.0, 100.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_ascii_chart_renders_all_series(self):
        chart = ascii_chart(
            {"a": [(0.0, 0.0), (10.0, 5.0)], "b": [(10.0, 10.0)]},
            width=20,
            height=6,
        )
        lines = chart.splitlines()
        assert any("*" in line for line in lines)
        assert any("o" in line for line in lines)
        assert "a" in lines[-1] and "b" in lines[-1]
        assert "max 10" in chart

    def test_ascii_chart_empty(self):
        assert ascii_chart({}) == "(no data)"
        assert ascii_chart({"a": []}) == "(no data)"


class TestTupleTimeline:
    def test_count_at_and_time_for_count(self):
        timeline = TupleTimeline()
        timeline.record(10.0, 1)
        timeline.record(20.0, 2)
        timeline.record(30.0, 3)
        assert timeline.count_at(5.0) == 0
        assert timeline.count_at(20.0) == 2
        assert timeline.time_for_count(3) == 30.0
        assert timeline.time_for_count(4) is None
        assert timeline.time_to_first == 10.0
        assert timeline.completion_time == 30.0

    def test_sample_even_spacing(self):
        timeline = TupleTimeline()
        for i in range(1, 11):
            timeline.record(i * 10.0, i)
        samples = timeline.sample(points=5)
        assert len(samples) == 5
        assert samples[-1][1] == 10
