"""Unit tests for repro.engine.stats (runtime statistics containers)."""

import pytest

from repro.engine.stats import (
    FragmentStats,
    OperatorRuntimeStats,
    QueryRuntimeStats,
    TupleTimeline,
)


class TestOperatorRuntimeStats:
    def test_record_output_tracks_first_and_last(self):
        stats = OperatorRuntimeStats("op1")
        stats.record_output(10.0)
        stats.record_output(25.0)
        assert stats.tuples_produced == 2
        assert stats.time_of_first_output == 10.0
        assert stats.time_of_last_output == 25.0

    def test_initial_state(self):
        stats = OperatorRuntimeStats("op1")
        assert stats.state == "pending"
        assert stats.time_of_first_output is None


class TestFragmentStats:
    def make(self, actual, estimate):
        return FragmentStats(
            fragment_id="f1",
            result_name="r1",
            result_cardinality=actual,
            estimated_cardinality=estimate,
            started_at_ms=0.0,
            completed_at_ms=100.0,
        )

    def test_estimate_error_factor_overestimate_and_underestimate(self):
        assert self.make(actual=200, estimate=100).estimate_error_factor == pytest.approx(2.0)
        assert self.make(actual=50, estimate=100).estimate_error_factor == pytest.approx(2.0)
        assert self.make(actual=100, estimate=100).estimate_error_factor == pytest.approx(1.0)

    def test_estimate_error_factor_without_estimate(self):
        assert self.make(actual=10, estimate=None).estimate_error_factor is None

    def test_zero_actual_cardinality_handled(self):
        assert self.make(actual=0, estimate=100).estimate_error_factor == pytest.approx(100.0)


class TestQueryRuntimeStats:
    def test_operator_record_created_on_demand(self):
        stats = QueryRuntimeStats("q")
        record = stats.operator("join1")
        assert record.operator_id == "join1"
        assert stats.operator("join1") is record

    def test_observed_cardinalities(self):
        stats = QueryRuntimeStats("q")
        stats.fragment_stats.append(
            FragmentStats("f1", "r1", 42, 10, 0.0, 5.0)
        )
        stats.fragment_stats.append(
            FragmentStats("f2", "r2", 7, None, 5.0, 9.0)
        )
        assert stats.observed_cardinalities() == {"r1": 42, "r2": 7}

    def test_time_to_first_tuple_from_output_timeline(self):
        stats = QueryRuntimeStats("q")
        assert stats.time_to_first_tuple is None
        stats.output_timeline.record(12.0, 1)
        assert stats.time_to_first_tuple == 12.0


class TestTupleTimelineEdgeCases:
    def test_empty_timeline(self):
        timeline = TupleTimeline()
        assert timeline.total == 0
        assert timeline.time_to_first is None
        assert timeline.completion_time is None
        assert timeline.count_at(100.0) == 0
        assert timeline.sample() == []

    def test_time_to_first_skips_zero_counts(self):
        timeline = TupleTimeline()
        timeline.record(1.0, 0)
        timeline.record(5.0, 1)
        assert timeline.time_to_first == 5.0

    def test_single_point_sample(self):
        timeline = TupleTimeline()
        timeline.record(10.0, 3)
        assert timeline.sample(points=1) == [(10.0, 3)]
